"""Hot-loop perf guard: the committed BENCH_timing.json vs. this tree.

Three layers (docs/PERFORMANCE.md):

- record sanity runs everywhere: the committed before/after entries must
  be complete, bit-identity invariants (cycles, dynamic instructions)
  intact, and the documented speedup non-regressed;
- an end-to-end smoke run checks the benchmark case still simulates to
  the pinned cycle count (the perf path may never change results);
- the ±`GATE_TOLERANCE` normalized-score gate re-measures this machine
  and compares against the committed ``after`` entry.  It only runs when
  ``REPRO_PERF_GATE=1`` (the CI perf-guard job sets it): the measurement
  costs tens of seconds and a loaded developer machine would make it
  flaky in a default tier-1 run.
"""

import json
import os

import pytest

from repro.harness import hotloop_bench as hb

GATE = os.environ.get("REPRO_PERF_GATE", "") == "1"

#: bit-identity invariants of the benchmark case (lbm/baseline/demand),
#: also pinned by tests/golden_digests.json
LBM_CYCLES = 1024180
LBM_DYN_INSTS = 136704

#: the committed record must document at least this speedup — the
#: hot-loop overhaul's floor (measured 1.71x; the 2x target and why it
#: was not reached bit-identically are discussed in docs/PERFORMANCE.md)
MIN_DOCUMENTED_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def record():
    return hb.load_record()


class TestCommittedRecord:
    def test_entries_present_and_complete(self, record):
        assert record.get("schema") == 1
        for entry in ("before", "after"):
            rec = record.get(entry)
            assert rec, f"BENCH_timing.json is missing the {entry!r} entry"
            for field in ("raw_seconds", "spin_seconds", "normalized",
                          "repeats", "cycles", "dynamic_instructions"):
                assert field in rec, f"{entry}.{field} missing"
            assert rec["case"] == hb.CASE

    def test_bit_identity_invariants(self, record):
        """Both entries simulate the same machine-independent run."""
        for entry in ("before", "after"):
            rec = record[entry]
            assert rec["cycles"] == LBM_CYCLES
            assert rec["dynamic_instructions"] == LBM_DYN_INSTS

    def test_normalized_is_consistent(self, record):
        for entry in ("before", "after"):
            rec = record[entry]
            assert rec["normalized"] == pytest.approx(
                rec["raw_seconds"] / rec["spin_seconds"], rel=0.01
            )

    def test_documented_speedup(self, record):
        speedup = record["before"]["normalized"] / record["after"]["normalized"]
        assert speedup >= MIN_DOCUMENTED_SPEEDUP, (
            f"committed record documents only {speedup:.2f}x; the overhaul's "
            f"floor is {MIN_DOCUMENTED_SPEEDUP}x — a slower 'after' entry "
            f"must not be committed"
        )


class TestEndToEnd:
    def test_benchmark_case_is_bit_identical(self):
        """One un-timed end-to-end run of the benchmark case: the optimized
        pipeline must still produce the pinned cycle count."""
        rec = hb.run_case_e2e()
        assert rec["cycles"] == LBM_CYCLES
        assert rec["dynamic_instructions"] == LBM_DYN_INSTS


@pytest.mark.skipif(not GATE, reason="set REPRO_PERF_GATE=1 (CI perf-guard)")
class TestPerfGate:
    def test_normalized_within_gate(self, record, tmp_path):
        """Re-measure this machine; the calibration-normalized score must be
        within ±GATE_TOLERANCE of the committed ``after`` entry."""
        committed = record["after"]["normalized"]
        measured = hb.measure(repeats=3)
        out = os.environ.get("REPRO_PERF_GATE_OUT")
        if out:
            with open(out, "w") as fh:
                json.dump({"committed": record, "measured": measured}, fh,
                          indent=1, sort_keys=True)
                fh.write("\n")
        lo = committed * (1 - hb.GATE_TOLERANCE)
        hi = committed * (1 + hb.GATE_TOLERANCE)
        assert lo <= measured["normalized"] <= hi, (
            f"normalized score {measured['normalized']:.2f} outside "
            f"[{lo:.2f}, {hi:.2f}] (committed after="
            f"{committed:.2f} ±{hb.GATE_TOLERANCE:.0%}); a real regression "
            f"must be fixed, a real improvement re-recorded with "
            f"`python -m repro.harness hotloop --update`"
        )
        assert measured["cycles"] == LBM_CYCLES
