"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Preemption latency (paper Section 2.4): a non-preemptible pipeline must
   wait out in-flight fault round trips before a context switch; the
   preemptible schemes squash and switch immediately.
2. Software WAR renaming vs the operand log: renaming lbm's reused address
   registers in the compiler recovers replay-queue performance at the cost
   of register pressure — the software-side alternative to Approach 3's
   hardware log.
3. Arithmetic-exception coverage: extending the schemes to divide-by-zero
   (paper Sections 3.1/3.2) costs extra only on SFU-divide-heavy code.
"""

from conftest import show

from repro.core import make_scheme, preemption_latency_experiment
from repro.core.schemes import WarpDisableCommit
from repro.harness import DEFAULT_TIME_SCALE
from repro.harness.results import ExperimentTable
from repro.opt import count_memory_war_hazards, rename_war_registers
from repro.system import GPUConfig, GpuSimulator, NVLINK
from repro.workloads import get_workload
from repro.workloads.parboil import Lbm


def test_bench_preemption_latency(benchmark):
    config = GPUConfig().time_scaled(DEFAULT_TIME_SCALE)
    wl = get_workload("stream-sum")

    def run():
        return preemption_latency_experiment(
            wl, make_scheme("replay-queue"), NVLINK.scaled(DEFAULT_TIME_SCALE),
            config, request_fraction=0.05,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        name="ablation-preemption",
        description="context-switch latency at a preemption request (cycles)",
        columns=["preemptible", "stall-on-fault"],
    )
    table.add_row(
        "stream-sum", [result["preemptible"], result["stall-on-fault"]]
    )
    show(table)
    assert result["stall-on-fault"] >= result["preemptible"]


def test_bench_war_renaming(benchmark):
    wl = Lbm(grid_dim=32, iters=3)
    renamed_kernel, renamed = rename_war_registers(wl.kernel, extra_regs=24)

    def cycles(kernel, workload):
        sim = GpuSimulator(
            kernel, workload.trace(), workload.make_address_space(),
            scheme=make_scheme("replay-queue"), paging="premapped",
        )
        return sim.run().cycles

    def run():
        wl2 = Lbm(grid_dim=32, iters=3)
        wl2._kernel = renamed_kernel
        return cycles(wl.kernel, wl), cycles(renamed_kernel, wl2)

    plain, improved = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        name="ablation-war-renaming",
        description="lbm replay-queue cycles: reused vs renamed addr regs",
        columns=["plain", "renamed", "hazards-removed"],
    )
    table.add_row("lbm", [plain, improved, renamed])
    show(table)
    assert renamed > 0
    assert improved < plain  # software renaming recovers the WAR stalls


def test_bench_arithmetic_coverage(benchmark):
    wl = get_workload("mri-q")  # SFU-heavy (sin/cos; divide-free)

    def cycles(scheme):
        sim = GpuSimulator(
            wl.kernel, wl.trace(), wl.make_address_space(),
            scheme=scheme, paging="premapped",
        )
        return sim.run().cycles

    def run():
        return (
            cycles(WarpDisableCommit()),
            cycles(WarpDisableCommit(cover_arithmetic=True)),
        )

    plain, covered = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        name="ablation-arith-coverage",
        description="wd-commit cycles with divide-by-zero coverage",
        columns=["memory-only", "plus-arith"],
    )
    table.add_row("mri-q", [plain, covered])
    show(table)
    # mri-q has no divides: coverage must be free on divide-free code
    assert covered == plain
