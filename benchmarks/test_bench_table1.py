"""Table 1: simulation parameters of the baseline GPU."""

from conftest import show

from repro.harness import run_table1
from repro.system import GPUConfig


def test_bench_table1(benchmark):
    text = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print("== table1: simulation parameters ==")
    print(text)
    cfg = GPUConfig()
    assert cfg.num_sms == 16
    assert cfg.register_file_bytes == 256 * 1024
    assert cfg.walk_latency == 500
