"""Shared configuration for the per-figure benchmark harness.

Each benchmark regenerates one of the paper's tables/figures and prints the
rows the paper reports.  By default a representative benchmark subset is
used so the whole harness completes in minutes; set ``REPRO_FULL_BENCH=1``
to sweep the full suites (as EXPERIMENTS.md does).
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL_BENCH", "") == "1"


@pytest.fixture(scope="session")
def quick() -> bool:
    return not FULL


def show(table) -> None:
    print()
    print(table.render())
