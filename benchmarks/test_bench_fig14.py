"""Figure 14: GPU-local handling of first-touch faults to kernel output
pages (while input migrations keep the CPU/link busy), Parboil suite.

Paper: geomean +5% NVLink, +8% PCIe; PCIe gains more because its higher
per-fault cost contends the interconnect harder; lbm and histo largest."""

from conftest import FULL, show

from repro.harness import run_fig14

BENCHES = None if FULL else ["lbm", "histo", "sgemm", "mri-q"]


def test_bench_fig14(benchmark):
    table = benchmark.pedantic(
        lambda: run_fig14(workloads=BENCHES), rounds=1, iterations=1
    )
    show(table)
    gm = dict(zip(table.columns, table.geomeans()))
    # the PCIe > NVLink crossover is the paper's headline observation here
    assert gm["pcie"] > gm["nvlink"]
    assert gm["pcie"] > 0.9
