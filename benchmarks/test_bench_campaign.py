"""Campaign-throughput perf guard: BENCH_campaign.json vs. this tree.

Mirrors ``benchmarks/test_bench_hotloop.py`` (docs/PERFORMANCE.md):

- record sanity runs everywhere: the committed record must be complete,
  both backends must carry the same rows digest (the equivalence
  contract), and the documented vectorized-over-scalar speedup must not
  regress below the 3x floor;
- a backend-equivalence smoke run checks a small sweep of the benchmark
  workload is bit-identical across backends (the fast path may never
  change results);
- the ±`GATE_TOLERANCE` normalized-score gate re-measures this machine
  and compares both backends against the committed record, and requires
  the measured speedup to clear the floor.  It only runs when
  ``REPRO_PERF_GATE=1`` (the CI perf-guard job sets it).  The vectorized
  side's normalized score is small (hundredths of a calibration spin),
  so its band gets an absolute floor on top of the relative tolerance to
  keep timer granularity from tripping the gate.
"""

import json
import os

import pytest

from repro.harness import campaign_bench as cb

GATE = os.environ.get("REPRO_PERF_GATE", "") == "1"

#: absolute slack added to the vectorized band (timer granularity on a
#: run that takes a few hundredths of a calibration spin)
ABS_FLOOR = 0.05


@pytest.fixture(scope="module")
def record():
    return cb.load_record()


class TestCommittedRecord:
    def test_entries_present_and_complete(self, record):
        assert record.get("schema") == 1
        assert record["case"]["configs"] >= 16, (
            "the benchmark sweep must cover at least 16 configurations"
        )
        for entry in ("scalar", "vectorized"):
            rec = record.get(entry)
            assert rec, f"BENCH_campaign.json is missing {entry!r}"
            for field in ("raw_seconds", "spin_seconds", "normalized",
                          "configs_per_spin", "repeats", "digest"):
                assert field in rec, f"{entry}.{field} missing"

    def test_backends_share_digest(self, record):
        """The committed record must prove the equivalence contract: both
        backends produced identical rows."""
        assert record["scalar"]["digest"] == record["vectorized"]["digest"]

    def test_normalized_is_consistent(self, record):
        for entry in ("scalar", "vectorized"):
            rec = record[entry]
            assert rec["normalized"] == pytest.approx(
                rec["raw_seconds"] / rec["spin_seconds"], rel=0.01
            )

    def test_documented_speedup(self, record):
        speedup = (record["scalar"]["normalized"]
                   / record["vectorized"]["normalized"])
        assert speedup >= cb.MIN_SPEEDUP, (
            f"committed record documents only {speedup:.2f}x; the "
            f"vectorized backend's floor is {cb.MIN_SPEEDUP}x — a slower "
            f"record must not be committed"
        )
        assert record["speedup"] == pytest.approx(speedup, rel=0.01)


class TestBackendEquivalence:
    def test_small_sweep_is_bit_identical(self):
        """An un-timed equivalence run on the benchmark workload: both
        backends must produce byte-identical tables (rows, notes, digest
        included)."""
        from repro.batch import run_sweep

        kwargs = dict(
            schemes=("baseline", "replay-queue"),
            seeds=(0, 1),
            latency_scales=(100, 300),
            paging=cb.CASE["paging"],
        )
        scalar = run_sweep(cb.CASE["workload"], backend="scalar", **kwargs)
        vector = run_sweep(
            cb.CASE["workload"], backend="vectorized", **kwargs
        )
        assert scalar.to_dict() == vector.to_dict()


@pytest.mark.skipif(not GATE, reason="set REPRO_PERF_GATE=1 (CI perf-guard)")
class TestPerfGate:
    def test_normalized_within_gate(self, record):
        """Re-measure this machine; both backends' calibration-normalized
        scores must be within the gate band of the committed record and
        the measured speedup must clear the floor."""
        measured = cb.measure(repeats=3)
        out = os.environ.get("REPRO_PERF_GATE_OUT")
        if out:
            with open(out, "w") as fh:
                json.dump({"committed": record, "measured": measured}, fh,
                          indent=1, sort_keys=True)
                fh.write("\n")
        for entry in ("scalar", "vectorized"):
            committed = record[entry]["normalized"]
            band = committed * cb.GATE_TOLERANCE
            if entry == "vectorized":
                band = max(band, ABS_FLOOR)
            lo, hi = committed - band, committed + band
            got = measured[entry]["normalized"]
            assert lo <= got <= hi, (
                f"{entry} normalized score {got:.3f} outside "
                f"[{lo:.3f}, {hi:.3f}] (committed {committed:.3f} "
                f"±{cb.GATE_TOLERANCE:.0%}); a real regression must be "
                f"fixed, a real improvement re-recorded with "
                f"`python -m repro.harness campaign --update`"
            )
        assert measured["speedup"] >= cb.MIN_SPEEDUP
        assert (measured["scalar"]["digest"]
                == measured["vectorized"]["digest"])
