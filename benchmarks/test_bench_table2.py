"""Table 2: operand-log area and power overheads (CACTI-calibrated model).

Paper: 8KB = 1.04% SM area / 0.47% GPU area / 1.82% SM power / 1.28% GPU
power, up to 32KB = 2.36 / 1.08 / 3.38 / 2.37."""

import pytest
from conftest import show

from repro.harness import run_table2

PAPER = {
    "8KB": (1.04, 0.47, 1.82, 1.28),
    "16KB": (1.47, 0.67, 2.34, 1.64),
    "20KB": (1.67, 0.76, 2.61, 1.83),
    "32KB": (2.36, 1.08, 3.38, 2.37),
}


def test_bench_table2(benchmark):
    table = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    show(table)
    for label, expect in PAPER.items():
        got = table.rows[label]
        for g, e in zip(got, expect):
            assert g == pytest.approx(e, abs=0.06)
