"""Serving-layer perf guard: BENCH_serve.json vs. this tree.

Mirrors ``benchmarks/test_bench_campaign.py`` (docs/PERFORMANCE.md),
with one twist: the containment and fairness sections of the committed
record are *deterministic*, so they are re-verified everywhere by
exact digest — same seed, bit-identical virtual-time run — while only
the wall-clock throughput section hides behind the
``REPRO_PERF_GATE=1`` ±`GATE_TOLERANCE` calibration-normalized gate.

- record sanity runs everywhere: the committed record must be complete,
  containment must hold (storm tenant quarantined with structured
  rejections, every steady tenant's p99 within the bound), fairness
  must hold (weighted-fair grants keep every steady tenant's p99
  within the bound under the storm, with zero storm-induced cache
  evictions), and the normalized throughput arithmetic must be
  self-consistent;
- the reproduction tests re-run the committed seeds through the
  virtual-time driver and require digest equality with the record;
- the perf gate re-measures normalized throughput on this machine and
  compares against the committed record.
"""

import json
import os

import pytest

from repro.harness import serve_bench as sb

GATE = os.environ.get("REPRO_PERF_GATE", "") == "1"


@pytest.fixture(scope="module")
def record():
    return sb.load_record()


class TestCommittedRecord:
    def test_entries_present_and_complete(self, record):
        assert record.get("schema") == 2
        t = record.get("throughput")
        assert t, "BENCH_serve.json is missing the throughput section"
        for field in ("raw_seconds", "spin_seconds", "normalized",
                      "kernels_per_spin", "kernels_per_sec_wall",
                      "executed_kernels", "repeats"):
            assert field in t, f"throughput.{field} missing"
        c = record.get("containment")
        assert c, "BENCH_serve.json is missing the containment section"
        for field in ("seed", "p99_bound", "contained", "steady",
                      "storm_quarantines", "storm_rejections",
                      "cache_hit_rate", "baseline_digest",
                      "chaotic_digest"):
            assert field in c, f"containment.{field} missing"
        f = record.get("fairness")
        assert f, "BENCH_serve.json is missing the fairness section"
        for field in ("seed", "p99_bound", "fair_contained", "steady",
                      "storm_completions", "cache_hit_rate",
                      "baseline_digest", "contended_digest",
                      "fifo_digest"):
            assert field in f, f"fairness.{field} missing"

    def test_containment_holds_in_committed_record(self, record):
        """The committed record must document successful containment: a
        quarantined storm tenant shedding structured rejections while
        every steady tenant's p99 stays within the bound."""
        c = record["containment"]
        assert c["contained"] is True
        assert c["storm_quarantines"] >= 1
        assert c["storm_breaker"] == "open"
        assert c["storm_rejections"].get("quarantined", 0) > 0
        assert c["steady"], "no steady tenants recorded"
        for name, s in c["steady"].items():
            assert s["within_bound"], f"{name} outside the p99 bound"
            assert s["ratio"] <= c["p99_bound"]

    def test_fairness_holds_in_committed_record(self, record):
        """The committed record must document weighted-fair isolation:
        every steady tenant's p99 within the bound under the storm,
        zero storm-induced evictions in steady cache partitions, and a
        storm tenant that still completes work (fair, not starved)."""
        f = record["fairness"]
        assert f["fair_contained"] is True
        assert f["storm_completions"] > 0
        assert f["steady"], "no steady tenants recorded"
        for name, s in f["steady"].items():
            assert s["within_bound"], f"{name} outside the p99 bound"
            assert s["ratio"] <= f["p99_bound"]
            assert s["storm_induced_evictions"] == 0, (
                f"{name} lost cache entries to the storm tenant"
            )
            # the FIFO counterfactual is recorded for contrast (what
            # the convoy does without DRR) but never gated
            assert "fifo_ratio" in s

    def test_cache_hit_rate_recorded(self, record):
        rate = record["containment"]["cache_hit_rate"]
        assert 0.0 < rate < 1.0

    def test_normalized_is_consistent(self, record):
        t = record["throughput"]
        assert t["normalized"] == pytest.approx(
            t["raw_seconds"] / t["spin_seconds"], rel=0.01
        )
        assert t["kernels_per_spin"] == pytest.approx(
            t["executed_kernels"] / t["normalized"], rel=0.01
        )


class TestContainmentReproduction:
    def test_committed_seed_reproduces_bit_identically(self, record):
        """Re-run the committed containment experiment: same seed must
        give byte-identical virtual-time reports (digests included)."""
        c = record["containment"]
        measured = sb.measure_containment({"seed": c["seed"]})
        assert measured["baseline_digest"] == c["baseline_digest"]
        assert measured["chaotic_digest"] == c["chaotic_digest"]
        assert measured["steady"] == c["steady"]
        assert measured["storm_rejections"] == c["storm_rejections"]
        assert measured["cache_hit_rate"] == c["cache_hit_rate"]


class TestFairnessReproduction:
    def test_committed_seed_reproduces_bit_identically(self, record):
        """Re-run the committed fairness experiment: same seed must
        give byte-identical closed-loop virtual-time reports for all
        three runs (baseline, weighted-fair storm, FIFO storm)."""
        f = record["fairness"]
        measured = sb.measure_fairness({"seed": f["seed"]})
        assert measured["baseline_digest"] == f["baseline_digest"]
        assert measured["contended_digest"] == f["contended_digest"]
        assert measured["fifo_digest"] == f["fifo_digest"]
        assert measured["steady"] == f["steady"]
        assert measured["storm_completions"] == f["storm_completions"]
        assert measured["cache_hit_rate"] == f["cache_hit_rate"]


@pytest.mark.skipif(not GATE, reason="set REPRO_PERF_GATE=1 (CI perf-guard)")
class TestPerfGate:
    def test_throughput_within_gate(self, record):
        """Re-measure this machine; the calibration-normalized
        throughput must be within the gate band of the committed
        record."""
        measured = sb.measure_throughput(repeats=3)
        out = os.environ.get("REPRO_PERF_GATE_OUT")
        if out:
            with open(out, "w") as fh:
                json.dump({"committed": record, "measured": measured},
                          fh, indent=1, sort_keys=True)
                fh.write("\n")
        committed = record["throughput"]["normalized"]
        band = committed * sb.GATE_TOLERANCE
        lo, hi = committed - band, committed + band
        got = measured["normalized"]
        assert lo <= got <= hi, (
            f"serve normalized throughput {got:.3f} outside "
            f"[{lo:.3f}, {hi:.3f}] (committed {committed:.3f} "
            f"±{sb.GATE_TOLERANCE:.0%}); a real regression must be "
            f"fixed, a real improvement re-recorded with "
            f"`python -m repro.harness serve-bench --update`"
        )
        assert measured["executed_kernels"] == (
            record["throughput"]["executed_kernels"]
        )
