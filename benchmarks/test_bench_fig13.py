"""Figure 13: GPU-local handling of device-malloc (heap) first-touch
faults vs CPU handling, on the Halloc-style allocator benchmarks.

Paper: geomean speedup +56% on NVLink, +75% on PCIe — local handling wins
on throughput despite the 10x higher per-fault handler latency."""

from conftest import show

from repro.harness import run_fig13
from repro.harness.results import geomean


def test_bench_fig13(benchmark, quick):
    table = benchmark.pedantic(
        lambda: run_fig13(quick=quick), rounds=1, iterations=1
    )
    show(table)
    gm = dict(zip(table.columns, table.geomeans()))
    # throughput win despite higher per-fault latency
    assert gm["nvlink"] > 1.15
    assert gm["pcie"] > 1.15
    # PCIe's costlier faults contend more -> at least as much benefit
    assert gm["pcie"] >= gm["nvlink"] * 0.98
