"""Figure 12: thread-block switching on faults during demand paging
(use case 1), NVLink and PCIe, normal and ideal context switching.

Paper: sgemm +13%, histo +11%, stencil +7% on NVLink; mri-gridding
degrades to 0.85; geomean about flat; ideal switching close to normal."""

from conftest import FULL, show

from repro.harness import run_fig12

BENCHES = None if FULL else ["sgemm", "stencil", "histo", "mri-gridding"]


def test_bench_fig12(benchmark):
    table = benchmark.pedantic(
        lambda: run_fig12(workloads=BENCHES), rounds=1, iterations=1
    )
    show(table)
    nv = table.columns.index("nvlink")
    # the paper's NVLink winners must win here too
    for bench in ("histo", "stencil"):
        if bench in table.rows:
            assert table.rows[bench][nv] > 1.0
    # normal switching tracks ideal switching (the scheduler avoids
    # wasteful switches)
    nv_ideal = table.columns.index("nvlink-ideal")
    for bench, row in table.rows.items():
        assert row[nv] > 0.6 * row[nv_ideal]
