"""Distributed-campaign perf guard: BENCH_dist.json vs. this tree.

Mirrors ``benchmarks/test_bench_campaign.py`` (docs/PERFORMANCE.md):

- record sanity runs everywhere: the committed record must be complete,
  cover at least 32 cells, document the byte-identity run on the real
  chaos matrix, and its 2-worker-over-1-worker speedup must not regress
  below the 1.6x floor;
- a determinism smoke run checks a small chaos matrix is byte-identical
  between the serial runner and a 2-worker loopback fleet (distribution
  may never change results);
- the ±`GATE_TOLERANCE` gate re-measures this machine and compares the
  wall-clock of all three modes and the speedup against the committed
  record.  The timed matrix is sleep-calibrated (see
  :mod:`repro.harness.dist_bench`), so the seconds are dominated by the
  fixed per-cell blocking time and stay comparable across machines.  It
  only runs when ``REPRO_PERF_GATE=1`` (the CI perf-guard job sets it).
"""

import json
import os

import pytest

from repro.harness import dist_bench as db

GATE = os.environ.get("REPRO_PERF_GATE", "") == "1"


@pytest.fixture(scope="module")
def record():
    return db.load_record()


class TestCommittedRecord:
    def test_entries_present_and_complete(self, record):
        assert record.get("schema") == 1
        assert record["case"]["cells"] >= 32, (
            "the scaling matrix must cover at least 32 cells"
        )
        assert record["case"]["kind"] == "sleep-calibrated"
        for entry in ("serial", "dist1", "dist2"):
            rec = record.get(entry)
            assert rec, f"BENCH_dist.json is missing {entry!r}"
            assert rec.get("seconds", 0) > 0
        assert record["dist1"]["workers"] == 1
        assert record["dist2"]["workers"] == 2
        assert record.get("repeats", 0) >= 1

    def test_identity_documented(self, record):
        """The committed record must prove the determinism contract on
        the real chaos matrix, not just the synthetic one."""
        identity = record.get("identity")
        assert identity, "BENCH_dist.json is missing the identity run"
        assert identity["identical"] is True
        assert identity["cells"] >= 32

    def test_documented_speedup(self, record):
        speedup = (record["dist1"]["seconds"]
                   / record["dist2"]["seconds"])
        assert speedup >= db.MIN_SPEEDUP, (
            f"committed record documents only {speedup:.2f}x; the "
            f"2-worker floor is {db.MIN_SPEEDUP}x — a slower record "
            f"must not be committed"
        )
        assert record["speedup"] == pytest.approx(speedup, rel=0.01)


class TestDeterminismSmoke:
    def test_small_matrix_is_bit_identical(self, tmp_path):
        """An un-timed identity run on a small chaos matrix: the serial
        runner and a 2-worker fleet must produce byte-identical
        tables.json and counters.json."""
        assert db.smoke(str(tmp_path), echo=lambda m: None) == 0


@pytest.mark.skipif(not GATE, reason="set REPRO_PERF_GATE=1 (CI perf-guard)")
class TestPerfGate:
    def test_wall_clock_within_gate(self, record):
        """Re-measure this machine; each mode's wall-clock must be
        within the gate band of the committed record and the measured
        speedup must clear the floor."""
        measured = db.measure(repeats=2, echo=lambda m: None)
        out = os.environ.get("REPRO_PERF_GATE_OUT")
        if out:
            with open(out, "w") as fh:
                json.dump({"committed": record, "measured": measured},
                          fh, indent=1, sort_keys=True)
                fh.write("\n")
        for entry in ("serial", "dist1", "dist2"):
            committed = record[entry]["seconds"]
            band = committed * db.GATE_TOLERANCE
            lo, hi = committed - band, committed + band
            got = measured[entry]["seconds"]
            assert lo <= got <= hi, (
                f"{entry} wall-clock {got:.2f}s outside "
                f"[{lo:.2f}, {hi:.2f}] (committed {committed:.2f}s "
                f"±{db.GATE_TOLERANCE:.0%}); a real regression must be "
                f"fixed, a real improvement re-recorded with "
                f"`python -m repro.harness dist-bench --update`"
            )
        assert measured["speedup"] >= db.MIN_SPEEDUP
        assert measured["identity"]["identical"] is True
