"""Figure 11: operand-log scheme vs log size (normalized to baseline).

Paper: 8KB 96.6%, 16KB 99.2% geomean; lbm recovers from 60% (replay queue)
to 97% with a 16KB log."""

from conftest import show

from repro.harness import run_fig11


def test_bench_fig11(benchmark, quick):
    table = benchmark.pedantic(
        lambda: run_fig11(quick=quick), rounds=1, iterations=1
    )
    show(table)
    gm = table.geomeans()
    # performance grows (weakly) with log size and approaches baseline
    assert gm[0] <= gm[-1] + 0.02
    assert gm[-1] > 0.95
    if "lbm" in table.rows:
        row = table.rows["lbm"]
        assert row[-1] >= row[0]  # lbm most log-size sensitive
