"""Section 5.5 ablation: scheme performance gap vs the number of SMs.

The paper notes the gap between the schemes widens when the workload does
not scale with the GPU (lower effective occupancy)."""

from conftest import show

from repro.harness import run_scalability


def test_bench_scalability(benchmark):
    table = benchmark.pedantic(
        lambda: run_scalability(workload="lbm", sm_counts=(8, 16)),
        rounds=1,
        iterations=1,
    )
    show(table)
    wd = table.columns.index("wd-commit")
    for row in table.rows.values():
        assert 0 < row[wd] <= 1.05
