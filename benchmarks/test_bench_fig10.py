"""Figure 10: performance cost of the warp-disable and replay-queue
pipelines (normalized to baseline, no faults).

Paper: wd-commit 84%, wd-lastcheck 90%, replay-queue 94% geomean;
lbm is the outlier (replay-queue ~60%)."""

from conftest import show

from repro.harness import run_fig10


def test_bench_fig10(benchmark, quick):
    table = benchmark.pedantic(
        lambda: run_fig10(quick=quick), rounds=1, iterations=1
    )
    show(table)
    gm = dict(zip(table.columns, table.geomeans()))
    # the paper's ordering must hold
    assert gm["wd-commit"] < gm["wd-lastcheck"] <= gm["replay-queue"] <= 1.02
    # rough magnitudes
    assert 0.6 < gm["wd-commit"] < 0.95
    if "lbm" in table.rows:
        idx = table.columns.index("replay-queue")
        assert table.rows["lbm"][idx] < 0.8  # the paper's 0.60 outlier
