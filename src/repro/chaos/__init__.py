"""Chaos engine: deterministic fault injection + simulation self-checks.

The resilience layer of the simulator (see docs/ROBUSTNESS.md).  Three
pieces compose into a chaos campaign:

- a seeded, deterministic :class:`~repro.chaos.engine.ChaosEngine` whose
  named perturbation hooks are wired into the fault controller, the MMU
  and the SM pipeline (inflated CPU-handler / link latencies, burst fault
  storms, delayed resolutions, spurious TLB misses and shootdowns,
  transient squash-and-replay of global-memory instructions);
- a :class:`~repro.chaos.watchdog.Watchdog` that turns a wedged run loop
  into a structured :class:`~repro.chaos.watchdog.SimulationHang`
  diagnostic instead of an infinite loop;
- an :class:`~repro.chaos.sanitizer.InvariantSanitizer` asserting the
  micro-architectural bookkeeping (scoreboards, replay queue, operand
  log, frame allocation, event-heap time order) stays consistent,
  raising :class:`~repro.chaos.sanitizer.InvariantViolation` otherwise.

Injection perturbs *timing only*: faults are the paper's own recovery
mechanism, so a chaotic run must produce the identical final
architectural memory state as the uninjected run.  Like telemetry, every
component stores ``None`` instead of a disabled engine (see
:func:`chaos_active`), so disabled runs are bit-identical and pay no
measurable overhead.
"""

from .engine import ALL_HOOKS, ChaosConfig, ChaosEngine, chaos_active
from .sanitizer import InvariantSanitizer, InvariantViolation
from .watchdog import HangDiagnostic, SimulationHang, Watchdog

#: alias so ``from repro.chaos import active`` mirrors ``repro.telemetry``
active = chaos_active

__all__ = [
    "ALL_HOOKS",
    "ChaosConfig",
    "ChaosEngine",
    "HangDiagnostic",
    "InvariantSanitizer",
    "InvariantViolation",
    "SimulationHang",
    "Watchdog",
    "active",
    "chaos_active",
]
