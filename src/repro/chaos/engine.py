"""Seeded, deterministic fault-injection engine.

One :class:`ChaosEngine` per simulated run owns a single
``random.Random(seed)`` stream.  The instrumented components (fault
controller, MMU, SM pipeline) call the engine's *hooks* at well-defined
points of the simulation; because the simulator itself is deterministic,
the sequence of hook calls — and therefore the sequence of injections —
is a pure function of the seed.  Two runs of the same workload, scheme
and seed are bit-identical, which is what lets a chaos campaign be
replayed and bisected (docs/ROBUSTNESS.md).

Hook taxonomy (``ALL_HOOKS``):

``fault.cpu_latency``
    inflate one CPU-handler (or GPU local-handler) service occupancy by a
    jittered factor — a pathologically slow driver.
``fault.link_latency``
    inflate one link occupancy (fault message or 64KB transfer).
``fault.resolve_delay``
    delay one fault-group resolution completion by a fixed-magnitude
    jitter — a lost/retried completion signal.
``fault.storm``
    a burst of phantom faults ahead of a real one: occupies the link and
    the CPU handler as if ``k`` extra faults had just been enqueued.
``tlb.spurious_miss``
    force one translation to miss both TLB levels and take a full walk.
``tlb.shootdown``
    invalidate every TLB entry (L1s + shared L2) before a translation.
``sm.squash_replay``
    transiently squash an in-flight global-memory instruction before its
    translation phase and replay it after a penalty — the scheme's own
    squash/replay machinery exercised without a real fault.
``cache.mshr_exhaustion``
    stall one primary cache miss as if every MSHR in the pool were
    transiently busy — back-pressure from a pathological miss burst.
``dram.refresh_storm``
    block the shared DRAM bandwidth pipe for a burst of cycles — a
    refresh storm stealing the pipe from demand traffic.
``icnt.pkt_drop``
    drop one fault message on the interconnect: every lost copy is
    retransmitted and re-occupies the link before the message lands.
``icnt.pkt_reorder``
    reorder one fault message behind packets that overtook it: the
    message waits that many link slots before it may start.
``runtime.alloc_fail``
    fail one managed allocation at the runtime facade — a transiently
    exhausted driver heap (:class:`repro.runtime.AllocationFailure`).
``runtime.stream_teardown``
    tear a stream down mid-kernel at device-synchronize time: queued
    launches stay queued and the synchronize raises a structured,
    retryable :class:`repro.runtime.StreamTeardownError`.

The two ``runtime.*`` hooks fire at the host-side facade, not inside the
simulator, so a device-level engine never perturbs a simulation's own
injection stream — give :class:`repro.runtime.GpuDevice` its own engine.

Every injection increments a ``chaos.<hook>`` counter and emits one
``chaos.inject`` telemetry event (rare-ring, so campaigns are traceable
in Perfetto), tagged with the hook name and site arguments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from repro.telemetry.events import EV_CHAOS

#: every perturbation hook the engine may fire, in taxonomy order
ALL_HOOKS = (
    "fault.cpu_latency",
    "fault.link_latency",
    "fault.resolve_delay",
    "fault.storm",
    "tlb.spurious_miss",
    "tlb.shootdown",
    "sm.squash_replay",
    "cache.mshr_exhaustion",
    "dram.refresh_storm",
    "icnt.pkt_drop",
    "icnt.pkt_reorder",
    "runtime.alloc_fail",
    "runtime.stream_teardown",
)


@dataclass(frozen=True)
class ChaosConfig:
    """Per-hook firing rates and magnitudes of one injection campaign.

    Rates are per-opportunity probabilities (each hook call site is one
    opportunity); magnitudes bound the perturbation drawn when a hook
    fires.  The defaults describe a *moderate* campaign: every hook
    exercised on a small workload without drowning the run.
    """

    #: RNG seed — the campaign's identity (same seed => same injections)
    seed: int = 0
    cpu_latency_rate: float = 0.10
    cpu_latency_max_factor: float = 4.0  # service time inflated 1x..4x
    link_latency_rate: float = 0.10
    link_latency_max_factor: float = 4.0
    resolve_delay_rate: float = 0.10
    resolve_delay_max_cycles: float = 2000.0
    storm_rate: float = 0.05
    storm_max_faults: int = 8  # phantom faults per burst
    tlb_miss_rate: float = 0.002
    shootdown_rate: float = 0.0005
    squash_rate: float = 0.01
    squash_penalty_cycles: float = 64.0
    mshr_exhaustion_rate: float = 0.002
    mshr_stall_max_cycles: float = 400.0
    refresh_storm_rate: float = 0.001
    refresh_storm_max_cycles: float = 600.0
    pkt_drop_rate: float = 0.01
    pkt_drop_max_retx: int = 2  # lost copies per dropped message
    pkt_reorder_rate: float = 0.01
    pkt_reorder_max_slots: int = 3  # packets that overtook the message
    alloc_fail_rate: float = 0.02
    stream_teardown_rate: float = 0.01

    def scaled(self, intensity: float) -> "ChaosConfig":
        """Scale every *rate* by ``intensity`` (clamped to probability 1);
        magnitudes are untouched.  ``intensity=0`` disables every hook."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        updates = {
            f.name: min(1.0, getattr(self, f.name) * intensity)
            for f in fields(self)
            if f.name.endswith("_rate")
        }
        return replace(self, **updates)

    @property
    def enabled(self) -> bool:
        """True if any hook can ever fire."""
        return any(
            getattr(self, f.name) > 0
            for f in fields(self)
            if f.name.endswith("_rate")
        )


class ChaosEngine:
    """Deterministic injection source shared by one run's components.

    Hooks consume the seeded RNG stream in simulator call order; each
    returns either the unperturbed value (no injection) or the perturbed
    one, and records the injection in ``injections`` / telemetry.
    """

    def __init__(
        self,
        config: Optional[ChaosConfig] = None,
        seed: Optional[int] = None,
        telemetry=None,
    ) -> None:
        """``seed`` overrides ``config.seed`` (convenience for campaigns
        that reuse one config across retries with fresh seeds)."""
        base = config if config is not None else ChaosConfig()
        if seed is not None:
            base = replace(base, seed=seed)
        self.config = base
        self.enabled = base.enabled
        self._rng = random.Random(base.seed)
        self.injections: Dict[str, int] = {hook: 0 for hook in ALL_HOOKS}
        self.tel = None
        # Schedule control (repro.mc): when attached, the explorable
        # hooks consult it instead of the RNG — injection becomes a
        # decision point the explorer enumerates (docs/MODELCHECK.md).
        self.schedule = None
        self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry) -> None:
        """Wire the observability layer: one ``chaos.<hook>`` gauge per
        hook and ``chaos.inject`` event emission on every injection
        (rare-ring; see docs/ROBUSTNESS.md and docs/OBSERVABILITY.md)."""
        from repro.telemetry import active

        self.tel = active(telemetry)
        if self.tel is None:
            return
        reg = self.tel.counters
        for hook in ALL_HOOKS:
            reg.gauge(
                f"chaos.{hook}",
                (lambda h=hook: self.injections[h]),
            )
        reg.gauge("chaos.total", lambda: self.total_injections)

    def attach_schedule(self, schedule) -> None:
        """Hand injection-site selection to a :class:`repro.mc.
        ScheduleControl`: the explorable hooks (``resolve_delay``,
        ``fault_storm``, ``pkt_reorder``) stop drawing the RNG and ask
        the control instead — choice 0 is always "no injection" and the
        magnitude is the config's deterministic maximum, so one choice
        trace describes the whole injection pattern.  A hook whose rate
        is 0 stays off (its site never becomes a decision point)."""
        self.schedule = schedule

    # ------------------------------------------------------------------

    @property
    def total_injections(self) -> int:
        """Injections fired so far, across every hook."""
        return sum(self.injections.values())

    def summary(self) -> Dict[str, int]:
        """Per-hook injection counts (hooks that fired at least once)."""
        return {h: n for h, n in self.injections.items() if n}

    def _fire(self, hook: str, time: float, **args) -> None:
        self.injections[hook] += 1
        if self.tel is not None:
            payload = {"hook": hook}
            payload.update(args)
            self.tel.tracer.emit(EV_CHAOS, time, "chaos", payload)

    # ------------------------------------------------------------------
    # hooks (called from the instrumented components)
    # ------------------------------------------------------------------

    def cpu_latency(self, base: float, time: float) -> float:
        """Perturb one CPU/local-handler service occupancy of ``base``
        cycles; returns the (possibly inflated) occupancy."""
        cfg = self.config
        if self._rng.random() >= cfg.cpu_latency_rate:
            return base
        factor = 1.0 + self._rng.random() * (cfg.cpu_latency_max_factor - 1.0)
        self._fire("fault.cpu_latency", time, factor=round(factor, 3))
        return base * factor

    def link_latency(self, base: float, time: float) -> float:
        """Perturb one link occupancy (message or transfer) of ``base``
        cycles; returns the (possibly inflated) occupancy."""
        cfg = self.config
        if self._rng.random() >= cfg.link_latency_rate:
            return base
        factor = 1.0 + self._rng.random() * (cfg.link_latency_max_factor - 1.0)
        self._fire("fault.link_latency", time, factor=round(factor, 3))
        return base * factor

    def resolve_delay(self, time: float) -> float:
        """Extra cycles to add to one fault-group resolution completion
        (0.0 = no injection)."""
        cfg = self.config
        if self.schedule is not None:
            if cfg.resolve_delay_rate <= 0:
                return 0.0
            pick = self.schedule.choose(
                "chaos.resolve_delay", ("global",), 2, time
            )
            if pick == 0:
                return 0.0
            delay = cfg.resolve_delay_max_cycles
            self._fire("fault.resolve_delay", time, delay=round(delay, 1))
            return delay
        if self._rng.random() >= cfg.resolve_delay_rate:
            return 0.0
        delay = self._rng.random() * cfg.resolve_delay_max_cycles
        self._fire("fault.resolve_delay", time, delay=round(delay, 1))
        return delay

    def fault_storm(self, time: float) -> int:
        """Phantom faults to enqueue ahead of a real one (0 = no storm)."""
        cfg = self.config
        if self.schedule is not None:
            if cfg.storm_rate <= 0:
                return 0
            pick = self.schedule.choose(
                "chaos.fault_storm", ("global",), 2, time
            )
            if pick == 0:
                return 0
            burst = max(1, cfg.storm_max_faults)
            self._fire("fault.storm", time, burst=burst)
            return burst
        if self._rng.random() >= cfg.storm_rate:
            return 0
        burst = self._rng.randint(1, max(1, cfg.storm_max_faults))
        self._fire("fault.storm", time, burst=burst)
        return burst

    def spurious_miss(self, time: float, vpn: int) -> bool:
        """Force this translation to miss both TLB levels."""
        if self._rng.random() >= self.config.tlb_miss_rate:
            return False
        self._fire("tlb.spurious_miss", time, vpn=vpn)
        return True

    def tlb_shootdown(self, time: float) -> bool:
        """Invalidate every TLB entry before this translation."""
        if self._rng.random() >= self.config.shootdown_rate:
            return False
        self._fire("tlb.shootdown", time)
        return True

    def squash_replay(self, time: float, sm_id: int) -> float:
        """Penalty cycles before replaying a transiently squashed
        global-memory instruction (0.0 = no injection)."""
        cfg = self.config
        if self._rng.random() >= cfg.squash_rate:
            return 0.0
        penalty = cfg.squash_penalty_cycles * (1.0 + self._rng.random())
        self._fire("sm.squash_replay", time, sm=sm_id,
                   penalty=round(penalty, 1))
        return penalty

    def mshr_exhaustion(self, time: float, cache: str) -> float:
        """Stall cycles before this primary miss may allocate an MSHR,
        modelling a transiently exhausted pool (0.0 = no injection)."""
        cfg = self.config
        if self._rng.random() >= cfg.mshr_exhaustion_rate:
            return 0.0
        stall = self._rng.random() * cfg.mshr_stall_max_cycles
        self._fire("cache.mshr_exhaustion", time, cache=cache,
                   stall=round(stall, 1))
        return stall

    def refresh_storm(self, time: float) -> float:
        """Cycles the shared DRAM pipe is blocked by a refresh burst
        before this transfer may start (0.0 = no injection)."""
        cfg = self.config
        if self._rng.random() >= cfg.refresh_storm_rate:
            return 0.0
        block = self._rng.random() * cfg.refresh_storm_max_cycles
        self._fire("dram.refresh_storm", time, block=round(block, 1))
        return block

    def pkt_drop(self, time: float) -> int:
        """Lost copies of one fault message on the interconnect: each
        retransmission re-occupies the link (0 = delivered first try)."""
        cfg = self.config
        if self._rng.random() >= cfg.pkt_drop_rate:
            return 0
        retx = self._rng.randint(1, max(1, cfg.pkt_drop_max_retx))
        self._fire("icnt.pkt_drop", time, retx=retx)
        return retx

    def pkt_reorder(self, time: float) -> int:
        """Link slots one fault message waits behind packets that
        overtook it (0 = in-order delivery).  Schedule-gated: with a
        control attached this is the explorer's fourth choice site."""
        cfg = self.config
        if self.schedule is not None:
            if cfg.pkt_reorder_rate <= 0:
                return 0
            slots = self.schedule.choose(
                "chaos.pkt_reorder",
                ("global",),
                max(1, cfg.pkt_reorder_max_slots) + 1,
                time,
            )
            if slots:
                self._fire("icnt.pkt_reorder", time, slots=slots)
            return slots
        if self._rng.random() >= cfg.pkt_reorder_rate:
            return 0
        slots = self._rng.randint(1, max(1, cfg.pkt_reorder_max_slots))
        self._fire("icnt.pkt_reorder", time, slots=slots)
        return slots

    def alloc_failure(self, time: float, nbytes: int) -> bool:
        """Fail this managed allocation at the runtime facade (the caller
        raises a structured, retryable error)."""
        if self._rng.random() >= self.config.alloc_fail_rate:
            return False
        self._fire("runtime.alloc_fail", time, nbytes=nbytes)
        return True

    def stream_teardown(self, time: float, stream: int) -> bool:
        """Tear ``stream`` down mid-kernel at device-synchronize time
        (the caller re-queues the work and raises a retryable error)."""
        if self._rng.random() >= self.config.stream_teardown_rate:
            return False
        self._fire("runtime.stream_teardown", time, stream=stream)
        return True

    def __repr__(self) -> str:
        return (
            f"<ChaosEngine seed={self.config.seed} "
            f"injections={self.total_injections}>"
        )


def chaos_active(engine: Optional[ChaosEngine]) -> Optional[ChaosEngine]:
    """Normalize a constructor argument: an enabled engine passes
    through; ``None`` or an all-rates-zero engine becomes ``None``, so
    hot paths pay exactly one ``is not None`` check (the same contract
    as :func:`repro.telemetry.active`)."""
    return engine if engine is not None and engine.enabled else None
