"""Simulation watchdog: turn a wedged run loop into a diagnostic.

The GPU run loop already raises ``DeadlockError`` when it is *provably*
stuck (no SM awake and no events pending).  The nastier failure mode is
the live hang: the loop keeps spinning — SMs report awake but never
issue, or an event keeps rescheduling itself — while no instruction ever
commits.  The watchdog samples forward progress (blocks retired +
instructions committed) once per configured cycle budget; if a whole
budget elapses with no progress it raises :class:`SimulationHang`
carrying a structured :class:`HangDiagnostic` — pending fault groups,
per-SM warp states, event-heap status and the telemetry summary — so a
chaos campaign reports *where* the simulation wedged instead of looping
until the harness timeout kills it.

The budget must exceed the longest legitimate commit gap (a deep fault
storm serializing on the CPU handler can keep an SM quiet for hundreds
of thousands of cycles at time scale 1); :data:`DEFAULT_CYCLE_BUDGET` is
sized for the bundled workloads — see docs/ROBUSTNESS.md for the
thresholds discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: default no-progress window, in cycles (well above the worst legitimate
#: commit gap of the bundled workloads at time scale 1)
DEFAULT_CYCLE_BUDGET = 1_000_000.0


@dataclass
class HangDiagnostic:
    """Everything known about the simulation at the moment it hung."""

    cycle: float
    cycle_budget: float
    blocks_remaining: int
    committed: int
    pending_fault_groups: List[int] = field(default_factory=list)
    event_heap_depth: int = 0
    next_event_time: Optional[float] = None
    #: per-SM warp summaries: ``{"sm0": [{"warp": 0, "pc": 3, ...}, ...]}``
    warp_states: Dict[str, List[Dict]] = field(default_factory=dict)
    telemetry_summary: Optional[Dict] = None

    def stuck_kernels(self) -> List[int]:
        """Kernel ids with at least one live (not-done) warp at hang
        time, sorted — in a multi-kernel run this names the offending
        launch(es) instead of just the SM."""
        kernels = {
            w["kernel"]
            for warps in self.warp_states.values()
            for w in warps
            if "kernel" in w and not w.get("done")
        }
        return sorted(kernels)

    def render(self) -> str:
        """Human-readable dump (the exception message)."""
        out = [
            f"no forward progress for {self.cycle_budget:g} cycles "
            f"(hung at cycle {self.cycle:g})",
            f"  blocks remaining: {self.blocks_remaining}, "
            f"instructions committed: {self.committed}",
            f"  event heap: {self.event_heap_depth} pending, "
            f"next at {self.next_event_time}",
            f"  pending fault groups: {self.pending_fault_groups}",
        ]
        for tid, warps in self.warp_states.items():
            stuck = [w for w in warps if not w.get("done")]
            out.append(f"  {tid}: {len(stuck)} live warps")
            for w in stuck[:8]:
                kernel = (
                    f" kernel={w['kernel']}" if "kernel" in w else ""
                )
                out.append(
                    f"    warp {w['warp']}:{kernel}"
                    f" idx {w['idx']}/{w['trace_len']}"
                    f" inflight={w['inflight']} holds={w['fetch_holds']}"
                    f" barrier={w['at_barrier']} replays={w['replays']}"
                )
        if self.telemetry_summary:
            out.append(f"  telemetry: {self.telemetry_summary}")
        return "\n".join(out)


class SimulationHang(Exception):
    """The watchdog declared the run hung; carries the diagnostic."""

    def __init__(self, diagnostic: HangDiagnostic) -> None:
        self.diagnostic = diagnostic
        super().__init__(diagnostic.render())


class Watchdog:
    """No-forward-progress detector sampled by the GPU run loop.

    ``observe`` is called at most once per ``cycle_budget`` simulated
    cycles with the loop's progress signature; it returns ``True`` while
    the simulation moves and ``False`` once a whole budget passed with
    an unchanged signature (the caller then raises
    :class:`SimulationHang` with a diagnostic it assembles)."""

    def __init__(self, cycle_budget: float = DEFAULT_CYCLE_BUDGET) -> None:
        if cycle_budget <= 0:
            raise ValueError("cycle_budget must be positive")
        self.cycle_budget = cycle_budget
        self._last: Optional[Tuple] = None
        self.trips = 0

    def observe(self, progress: Tuple) -> bool:
        """Record one progress signature; ``False`` = no progress since
        the previous observation (a hang)."""
        if progress == self._last:
            self.trips += 1
            return False
        self._last = progress
        return True

    def reset(self) -> None:
        """Forget the last signature (a fresh run reuses the watchdog)."""
        self._last = None
