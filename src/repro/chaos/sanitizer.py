"""Invariant sanitizer: structural self-checks for the timing simulator.

The timing model keeps a lot of distributed bookkeeping — per-warp
scoreboards, the per-block operand log and replay queue, the pending
fault-group map, the event heap, the physical frame pool.  A model bug
(or an overly creative chaos injection) that corrupts any of these tends
to surface far away as a silent hang or a wrong cycle count.  The
sanitizer turns the corruption into an immediate, structured
:class:`InvariantViolation` at the point where the invariant is supposed
to hold:

- **block retirement** — when a thread block retires, all of its warps'
  scoreboards must be empty, no instruction may remain in flight, its
  operand-log bytes must be fully released, its replay queue drained and
  every fault group it raised resolved;
- **event heap** — no event may be scheduled before the last event that
  already fired (time must not regress), and one ``run_until`` call must
  not fire an unbounded number of events (a same-timestamp
  self-rescheduling event would otherwise spin forever *inside* the
  heap, where the run-loop watchdog cannot see it);
- **frame allocation** — no physical frame may back two virtual pages
  (double allocation across the CPU/per-SM allocator partitions).

The sanitizer is opt-in (``GpuSimulator(sanitize=True)``): production
timing runs store ``None`` and pay nothing, the same contract as
telemetry and chaos.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class InvariantViolation(Exception):
    """A structural invariant of the simulation was broken.

    ``what`` names the invariant; ``details`` carries the structured
    context (block id, leaked entries, offending times) so a failing
    chaos campaign can be diagnosed without re-running it.
    """

    def __init__(self, what: str, details: Optional[Dict] = None) -> None:
        self.what = what
        self.details = dict(details or {})
        lines = [what]
        for key, value in self.details.items():
            lines.append(f"  {key}: {value}")
        super().__init__("\n".join(lines))


class InvariantSanitizer:
    """Stateless-ish checker invoked from the instrumented layers.

    One instance per simulated run; ``checks_run`` counts invocations so
    tests can assert the sanitizer actually looked at something.
    """

    #: events one ``run_until`` call may fire before it is declared a
    #: same-timestamp livelock (far above any legitimate burst)
    max_events_per_advance = 1_000_000

    def __init__(self) -> None:
        self.checks_run = 0

    # ------------------------------------------------------------------
    # block retirement (called by SmPipeline._block_finished)
    # ------------------------------------------------------------------

    def check_block_retirement(self, sm, block, time: float) -> None:
        """Assert no scoreboard / operand-log / replay-queue / fault-group
        state leaked from a retiring thread block."""
        self.checks_run += 1
        leaks: List[str] = []
        for warp in block.warps:
            if warp.pw or warp.pr or warp.pwp or warp.prp:
                leaks.append(
                    f"warp {warp.slot}: scoreboard entries "
                    f"pw={dict(warp.pw)} pr={dict(warp.pr)} "
                    f"pwp={dict(warp.pwp)} prp={dict(warp.prp)}"
                )
            if warp.inflight:
                leaks.append(
                    f"warp {warp.slot}: {warp.inflight} in-flight "
                    "instructions at retirement"
                )
            if warp.replay_list:
                leaks.append(
                    f"warp {warp.slot}: {len(warp.replay_list)} unreplayed "
                    "instructions"
                )
        if block.log_used:
            leaks.append(f"operand log: {block.log_used} bytes not released")
        live_replays = [
            rec
            for rec in block.faulted_inflight
            if not rec[2].fired and not rec[2].cancelled
        ]
        if live_replays:
            leaks.append(
                f"replay queue: {len(live_replays)} faulted instructions "
                "still pending"
            )
        if block.unresolved_at(time):
            pending = [
                g for g, t in block.pending_groups.items() if t > time
            ]
            leaks.append(f"fault groups unresolved at retirement: {pending}")
        if leaks:
            raise InvariantViolation(
                "state leak at block retirement",
                {
                    "sm": sm.sm_id,
                    "block": block.block_id,
                    "time": time,
                    "leaks": leaks,
                },
            )

    # ------------------------------------------------------------------
    # physical frames (called at end of run / on demand)
    # ------------------------------------------------------------------

    def check_frames(self, page_state) -> None:
        """Assert no physical frame backs two GPU-mapped virtual pages."""
        self.checks_run += 1
        backing: Dict[int, int] = {}
        for vpn, entry in page_state.gpu_table.items():
            first = backing.setdefault(entry.ppn, vpn)
            if first != vpn:
                raise InvariantViolation(
                    "frame double-allocation",
                    {"ppn": entry.ppn, "vpns": [first, vpn]},
                )

    # ------------------------------------------------------------------
    # event heap (called by EventQueue in sanitized mode)
    # ------------------------------------------------------------------

    def heap_regression(self, scheduled: float, last_fired: float) -> None:
        """An event was scheduled before the heap's last fired time."""
        raise InvariantViolation(
            "event-heap time regression",
            {"scheduled_at": scheduled, "last_fired": last_fired},
        )

    def heap_storm(self, time: float, ran: int) -> None:
        """One heap advance fired an implausible number of events."""
        raise InvariantViolation(
            "event storm: run_until fired too many events in one advance "
            "(same-timestamp self-rescheduling event?)",
            {"advance_to": time, "events_fired": ran,
             "limit": self.max_events_per_advance},
        )
