"""repro — reproduction of "Efficient Exception Handling Support for GPUs"
(Tanasic et al., MICRO 2017).

A cycle-level GPU simulator with the paper's three preemptible-exception
pipeline schemes (warp disable, replay queue, operand log) and its two use
cases (thread-block switching on fault, GPU-local fault handling), plus the
substrates they need: a mini GPU ISA and functional SIMT simulator, a
virtual-memory stack, and a timing model of the memory hierarchy.

Quickstart::

    from repro.workloads import get_workload
    from repro.core import make_scheme
    from repro.system import GpuSimulator

    wl = get_workload("saxpy")
    sim = GpuSimulator(wl.kernel, wl.trace(), wl.make_address_space(),
                       scheme=make_scheme("replay-queue"))
    print(sim.run().cycles)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
