"""Discrete-event backbone of the timing simulator.

The SM front end (issue logic) is evaluated cycle by cycle, but all
long-latency completions (operand reads, commits, memory fills, fault
resolutions, context switches) are events on one global heap.  The run loop
in :mod:`repro.system.gpu` advances the cycle counter by one while any SM is
making issue progress and otherwise jumps straight to the next event time —
the acceleration that makes full-benchmark simulation tractable in Python.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional


class Event:
    """A scheduled callback; cancel() makes it a no-op (used when squashing
    faulted instructions during a block switch)."""

    __slots__ = ("time", "fn", "cancelled", "fired")

    def __init__(self, time: float, fn: Callable[[float], None]) -> None:
        self.time = time
        self.fn = fn
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Time-ordered event heap with stable FIFO tie-breaking.

    Exposes the load metrics the telemetry layer samples (see
    docs/OBSERVABILITY.md): ``processed`` events run, ``scheduled`` events
    pushed, ``peak`` outstanding heap depth, and ``coalesced`` dispatches
    that skipped a heap push entirely (same-timestamp callbacks merged into
    one event, wake-ups absorbed by the SMs' ``next_ready_cycle`` scalar,
    and releases executed inline — docs/PERFORMANCE.md).  Together they
    show how event-bound (vs. issue-bound) a simulated region is.
    """

    def __init__(self) -> None:
        # Time-bucketed store: a FIFO list of events per unique timestamp,
        # plus a heap of the distinct timestamps.  Bucket append order is
        # chronological schedule order, so within-bucket FIFO equals the
        # (time, seq) ordering of a per-event heap — bit-identical dispatch
        # with one heap operation per unique time instead of per event
        # (docs/PERFORMANCE.md).
        self._buckets: dict = {}
        self._times: List[float] = []
        self._size = 0
        self.processed = 0
        self.scheduled = 0
        self.peak = 0
        self.coalesced = 0
        # Invariant sanitizer (repro.chaos): None in production runs, so
        # schedule/run_until stay on their unchecked fast paths.
        self._sanitizer = None
        self._last_fired = -math.inf

    def attach_sanitizer(self, sanitizer) -> None:
        """Enable heap self-checks (docs/ROBUSTNESS.md): scheduling before
        the last fired event time raises ``InvariantViolation`` (time
        regression), and one ``run_until`` advance firing an unbounded
        event count is declared a same-timestamp livelock."""
        self._sanitizer = sanitizer

    def schedule(self, time: float, fn: Callable[[float], None]) -> Event:
        """Schedule ``fn(time)``; returns the cancellable Event handle."""
        if self._sanitizer is not None and time < self._last_fired:
            self._sanitizer.heap_regression(time, self._last_fired)
        event = Event(time, fn)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self.scheduled += 1
        self._size += 1
        if self._size > self.peak:
            self.peak = self._size
        return event

    def call(self, time: float, fn: Callable[[float], None]) -> None:
        """Schedule ``fn(time)`` with no cancellation handle.

        Stores a bare ``(time, fn)`` tuple in the bucket instead of an
        :class:`Event` — same FIFO slot, same dispatch order, one object
        allocation less.  Use only for events that are never cancelled
        (commits, fetch/hold releases, memory phases on the non-faulted
        path); squashable work needs :meth:`schedule`'s Event handle."""
        if self._sanitizer is not None and time < self._last_fired:
            self._sanitizer.heap_regression(time, self._last_fired)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(time, fn)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((time, fn))
        self.scheduled += 1
        self._size += 1
        if self._size > self.peak:
            self.peak = self._size

    def __len__(self) -> int:
        return self._size

    @property
    def next_time(self) -> Optional[float]:
        return self._times[0] if self._times else None

    def run_until(self, time: float) -> int:
        """Run every event with timestamp <= ``time``; returns count run.

        A bucket stays registered while its events fire, so a callback
        scheduling at the *current* timestamp appends to the live bucket
        and fires in this same pass — exactly the per-event heap
        behaviour."""
        if self._sanitizer is not None:
            return self._run_until_sanitized(time)
        ran = 0
        times = self._times
        buckets = self._buckets
        while times and times[0] <= time:
            t = heapq.heappop(times)
            bucket = buckets[t]
            i = 0
            while i < len(bucket):
                event = bucket[i]
                i += 1
                if type(event) is tuple:  # handle-free entry (never cancelled)
                    event[1](event[0])
                    ran += 1
                elif not event.cancelled:
                    event.fired = True
                    event.fn(event.time)
                    ran += 1
            del buckets[t]
            self._size -= i
        self.processed += ran
        return ran

    def _run_until_sanitized(self, time: float) -> int:
        """Checked variant of :meth:`run_until`: tracks the last fired
        time (for the schedule-into-the-past check) and bounds the events
        one advance may fire (a same-timestamp self-rescheduling event
        would otherwise spin inside this loop, invisible to the run-loop
        watchdog)."""
        san = self._sanitizer
        limit = san.max_events_per_advance
        ran = 0  # events fired but not yet folded into ``processed``
        total = 0  # events fired during this advance
        times = self._times
        buckets = self._buckets
        while times and times[0] <= time:
            t = heapq.heappop(times)
            bucket = buckets[t]
            i = 0
            while i < len(bucket):
                event = bucket[i]
                i += 1
                is_tuple = type(event) is tuple
                if not is_tuple and event.cancelled:
                    continue
                if t < self._last_fired:
                    san.heap_regression(t, self._last_fired)
                self._last_fired = t
                if is_tuple:
                    event[1](event[0])
                else:
                    event.fired = True
                    event.fn(event.time)
                ran += 1
                total += 1
                if total > limit:
                    # Fold the accounting in *before* the sanitizer call
                    # (which normally raises) and zero ``ran`` so a tolerant
                    # sanitizer that returns does not double-count these
                    # events below.
                    self.processed += ran
                    ran = 0
                    san.heap_storm(time, total)
            del buckets[t]
            self._size -= i
        self.processed += ran
        return total

    def drain(self) -> None:
        """Run all remaining events in time order (end-of-simulation tail).

        Also advances ``_last_fired`` so scheduling checks performed after
        a drain (sanitized runs) still see the true simulation frontier."""
        times = self._times
        buckets = self._buckets
        while times:
            t = heapq.heappop(times)
            bucket = buckets[t]
            i = 0
            while i < len(bucket):
                event = bucket[i]
                i += 1
                if type(event) is tuple:
                    if t > self._last_fired:
                        self._last_fired = t
                    event[1](event[0])
                    self.processed += 1
                elif not event.cancelled:
                    if t > self._last_fired:
                        self._last_fired = t
                    event.fired = True
                    event.fn(event.time)
                    self.processed += 1
            del buckets[t]
            self._size -= i
