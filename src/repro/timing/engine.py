"""Discrete-event backbone of the timing simulator.

The SM front end (issue logic) is evaluated cycle by cycle, but all
long-latency completions (operand reads, commits, memory fills, fault
resolutions, context switches) are events on one global heap.  The run loop
in :mod:`repro.system.gpu` advances the cycle counter by one while any SM is
making issue progress and otherwise jumps straight to the next event time —
the acceleration that makes full-benchmark simulation tractable in Python.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional


class Event:
    """A scheduled callback; cancel() makes it a no-op (used when squashing
    faulted instructions during a block switch)."""

    __slots__ = ("time", "fn", "cancelled", "fired")

    def __init__(self, time: float, fn: Callable[[float], None]) -> None:
        self.time = time
        self.fn = fn
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Time-ordered event heap with stable FIFO tie-breaking.

    Exposes the load metrics the telemetry layer samples (see
    docs/OBSERVABILITY.md): ``processed`` events run, ``scheduled`` events
    pushed, and ``peak`` outstanding heap depth — together they show how
    event-bound (vs. issue-bound) a simulated region is.
    """

    def __init__(self) -> None:
        self._heap: List = []
        self._counter = itertools.count()
        self.processed = 0
        self.scheduled = 0
        self.peak = 0
        # Invariant sanitizer (repro.chaos): None in production runs, so
        # schedule/run_until stay on their unchecked fast paths.
        self._sanitizer = None
        self._last_fired = -math.inf

    def attach_sanitizer(self, sanitizer) -> None:
        """Enable heap self-checks (docs/ROBUSTNESS.md): scheduling before
        the last fired event time raises ``InvariantViolation`` (time
        regression), and one ``run_until`` advance firing an unbounded
        event count is declared a same-timestamp livelock."""
        self._sanitizer = sanitizer

    def schedule(self, time: float, fn: Callable[[float], None]) -> Event:
        """Schedule ``fn(time)``; returns the cancellable Event handle."""
        if self._sanitizer is not None and time < self._last_fired:
            self._sanitizer.heap_regression(time, self._last_fired)
        event = Event(time, fn)
        heapq.heappush(self._heap, (time, next(self._counter), event))
        self.scheduled += 1
        depth = len(self._heap)
        if depth > self.peak:
            self.peak = depth
        return event

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def run_until(self, time: float) -> int:
        """Run every event with timestamp <= ``time``; returns count run."""
        if self._sanitizer is not None:
            return self._run_until_sanitized(time)
        ran = 0
        heap = self._heap
        while heap and heap[0][0] <= time:
            _, _, event = heapq.heappop(heap)
            if not event.cancelled:
                event.fired = True
                event.fn(event.time)
                ran += 1
        self.processed += ran
        return ran

    def _run_until_sanitized(self, time: float) -> int:
        """Checked variant of :meth:`run_until`: tracks the last fired
        time (for the schedule-into-the-past check) and bounds the events
        one advance may fire (a same-timestamp self-rescheduling event
        would otherwise spin inside this loop, invisible to the run-loop
        watchdog)."""
        san = self._sanitizer
        limit = san.max_events_per_advance
        ran = 0
        heap = self._heap
        while heap and heap[0][0] <= time:
            t, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            if t < self._last_fired:
                san.heap_regression(t, self._last_fired)
            self._last_fired = t
            event.fired = True
            event.fn(event.time)
            ran += 1
            if ran > limit:
                self.processed += ran
                san.heap_storm(time, ran)
        self.processed += ran
        return ran

    def drain(self) -> None:
        """Run all remaining events in time order (end-of-simulation tail)."""
        heap = self._heap
        while heap:
            _, _, event = heapq.heappop(heap)
            if not event.cancelled:
                event.fired = True
                event.fn(event.time)
                self.processed += 1
