"""Cycle-level timing simulation: event engine and the SM pipeline model."""

from .engine import Event, EventQueue
from .sm import BlockRT, SmPipeline, SmStats, WarpRT

__all__ = ["Event", "EventQueue", "BlockRT", "SmPipeline", "SmStats", "WarpRT"]
