"""Cycle-level timing simulation: event engine and the SM pipeline model."""

from .decode import decode, predecode_trace
from .engine import Event, EventQueue
from .sm import BlockRT, SmPipeline, SmStats, WarpRT

__all__ = [
    "Event",
    "EventQueue",
    "BlockRT",
    "SmPipeline",
    "SmStats",
    "WarpRT",
    "decode",
    "predecode_trace",
]
