"""Cycle-level SM pipeline model.

Models the SM of paper Figure 1: a warp scheduler picking ready warps, dual
issue (2 instructions per cycle from 1 or 2 warps), per-warp in-program-order
issue gated by scoreboards (pending-write for RAW/WAW, pending-read for WAR),
an operand-read stage, back-end units (2 math, 1 SFU, 1 ld/st, 1 branch), a
global-memory pipeline through the coalescer/TLBs/caches, and out-of-order
commit.  Control-flow instructions disable warp fetch until they commit
(baseline behaviour, Section 2.1); source-operand scoreboards are released at
operand read (the early release that creates the paper's *RAW on replay*
problem).

The preemptible-exception schemes of Section 3 plug in through a
:class:`~repro.core.schemes.PipelineScheme` strategy object that adjusts
(a) how long a warp's fetch stays disabled after a global-memory instruction,
(b) when source scoreboards of global-memory instructions are released, and
(c) operand-log capacity accounting.

Hot-loop structure (docs/PERFORMANCE.md)
----------------------------------------
:meth:`SmPipeline.try_issue` is the simulator's hottest function; it runs on
a *ready scan list* (warps that are not done, not parked at a barrier, and
not out of trace), consults pre-decoded instruction tuples, caches each
warp's last scoreboard verdict (``WarpRT.sb_wait``), and arms a per-SM
``next_ready_cycle`` scalar instead of scheduling pure wake-up heap events —
all provably bit-identical to the reference scan, which is kept as
:meth:`SmPipeline._try_issue_reference` (select it with
``reference_issue=True`` or ``REPRO_REFERENCE_ISSUE=1``) and pinned against
the fast path by the golden digests (``tests/golden_digests.json``) and the
hypothesis equivalence suite.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left, insort
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.functional.trace import BlockTrace, TraceInst
from repro.mem.coalescer import coalesce_inst
from repro.telemetry import active as _tel_active, ev as _ev

from .decode import decode as _decode
from .engine import EventQueue

#: cycles from fetch decision to issue — folded into issue; operand read and
#: execution start are measured from the issue cycle.
BARRIER_RESTART_LATENCY = 6
#: pipeline refill penalty after squashing a faulted instruction is replayed
REPLAY_ISSUE_COST = 8

_INF = math.inf


@dataclass
class SmStats:
    issued: int = 0
    issued_mem: int = 0
    committed: int = 0
    faulted_instructions: int = 0
    cycles_asleep_entries: int = 0
    blocks_launched: int = 0
    blocks_completed: int = 0
    block_switch_outs: int = 0
    block_switch_ins: int = 0
    extra_blocks_fetched: int = 0
    local_handler_runs: int = 0


class WarpRT:
    """Run-time (timing) state of one warp."""

    __slots__ = (
        "slot",
        "trace",
        "idx",
        "fetch_ready",
        "fetch_holds",
        "pw",
        "pr",
        "pwp",
        "prp",
        "inflight",
        "at_barrier",
        "done",
        "block",
        "replay_list",
        "dtrace",
        "tlen",
        "pos",
        "sb_wait",
    )

    def __init__(self, slot: int, trace: List[TraceInst], block: "BlockRT") -> None:
        self.slot = slot
        self.trace = trace
        self.idx = 0
        self.fetch_ready = 0.0
        self.fetch_holds = 0
        self.pw: Dict[int, int] = {}  # reg -> pending writes (RAW/WAW)
        self.pr: Dict[int, int] = {}  # reg -> pending reads (WAR)
        self.pwp: Dict[int, int] = {}  # predicate pending writes
        self.prp: Dict[int, int] = {}  # predicate pending reads
        self.inflight = 0
        self.at_barrier = False
        self.done = False
        self.block = block
        self.replay_list: List[TraceInst] = []
        #: decode tuple per trace record (cache hits when the trace was
        #: predecoded at load time — repro.timing.decode)
        self.dtrace = [_decode(t.inst) for t in trace]
        self.tlen = len(trace)
        #: index in the SM's master warp list (maintained by the scan
        #: rebuild; the round-robin pointer is expressed in these positions)
        self.pos = 0
        #: cached scoreboard verdict: True = the warp's next instruction was
        #: scoreboard-blocked and nothing that could unblock it has happened
        #: since (cleared on commit / source release / squash / issue)
        self.sb_wait = False

    def next_inst(self) -> Optional[TraceInst]:
        if self.replay_list:
            return self.replay_list[0]
        if self.idx < self.tlen:
            return self.trace[self.idx]
        return None

    def advance(self) -> None:
        if self.replay_list:
            self.replay_list.pop(0)
        else:
            self.idx += 1

    def maybe_done(self) -> bool:
        if (
            not self.done
            and self.idx >= self.tlen
            and not self.replay_list
            and self.inflight == 0
        ):
            self.done = True
        return self.done


class BlockRT:
    """Run-time state of one resident (or switched-out) thread block."""

    ACTIVE = "active"
    SAVING = "saving"
    OFFCHIP = "offchip"
    RESTORING = "restoring"
    DONE = "done"

    __slots__ = (
        "btrace",
        "warps",
        "state",
        "barrier_arrived",
        "drain_time",
        "pending_groups",
        "faulted_inflight",
        "log_capacity",
        "log_used",
        "context_bytes",
        "kernel_id",
    )

    def __init__(self, btrace: BlockTrace, context_bytes: int, log_capacity: int) -> None:
        self.btrace = btrace
        self.kernel_id = btrace.kernel_id
        self.warps: List[WarpRT] = []
        self.state = self.ACTIVE
        self.barrier_arrived = 0
        self.drain_time = 0.0  # latest commit of non-faulted in-flight work
        self.pending_groups: Dict[int, float] = {}  # fault group -> resolve t
        # squashable in-flight faulted instructions: (warp, tinst, commit_ev,
        # dests, pdests, fetch_hold_release_ev)
        self.faulted_inflight: List[Tuple] = []
        self.log_capacity = log_capacity
        self.log_used = 0
        self.context_bytes = context_bytes

    @property
    def block_id(self) -> int:
        return self.btrace.block_id

    def is_done(self) -> bool:
        return all(w.done for w in self.warps)

    def unresolved_at(self, time: float) -> bool:
        return any(t > time for t in self.pending_groups.values())


class SmPipeline:
    """One streaming multiprocessor of the timing simulator."""

    def __init__(
        self,
        sm_id: int,
        config,
        events: EventQueue,
        memsys,
        fault_ctl,
        scheme,
        block_source,
        occupancy: int,
        context_bytes_per_block: int,
        telemetry=None,
        chaos=None,
        sanitizer=None,
        reference_issue: bool = False,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.events = events
        self.memsys = memsys
        self.fault_ctl = fault_ctl
        self.scheme = scheme
        self.block_source = block_source  # ThreadBlockScheduler-like object
        self.occupancy = occupancy
        self.context_bytes_per_block = context_bytes_per_block
        # Multi-kernel runs (docs/CONCURRENCY.md) install a kernel-id ->
        # context-bytes map so a stolen block's switch cost reflects *its*
        # kernel's register/smem footprint; None on single-kernel runs.
        self.kernel_context_bytes: Optional[Dict[int, int]] = None
        self.free_slots = occupancy
        self.blocks: List[BlockRT] = []  # resident blocks
        self.offchip: List[BlockRT] = []  # switched-out blocks (use case 1)
        self.warps: List[WarpRT] = []
        self.rr = 0
        self.sleeping = False
        #: the earliest future cycle at which this SM must be re-scanned
        #: even though no heap event targets it — the min over pending
        #: warp-ready transitions (barrier restarts armed via
        #: :meth:`schedule_wake`; per-issue ``fetch_ready`` advances never
        #: outlive an awake cycle, see docs/PERFORMANCE.md).  The run loop
        #: jumps to ``min(next event, next_ready_cycle)`` when every SM
        #: sleeps.
        self.next_ready_cycle = _INF
        self._wakes: List[float] = []  # pending schedule_wake times, sorted
        # Pending source-scoreboard releases, keyed by due time (each key
        # also has a ``_wakes`` entry).  SM-local and commutative with the
        # same-timestamp heap events, so they bypass the global event queue
        # entirely; :meth:`try_issue` retires due entries before scanning —
        # the same point in the cycle the heap used to fire them.
        self._rel: Dict[float, list] = {}
        #: faulted memory instructions parked in the LD/ST pipeline; at
        #: config.pending_fault_limit the SM cannot issue further global
        #: memory instructions (the clogging that preemption relieves)
        self.pending_faults = 0
        self.stats = SmStats()
        self.local_scheduler = None  # set by use case 1, see core.local_scheduler
        self.on_block_done = None  # callback(sm, block, time) set by the GPU
        self._unit_budget_template = (
            config.num_math_units,
            config.num_sfu_units,
            config.num_ldst_units,
            config.num_branch_units,
        )
        # The fast scan may skip a ``sb_wait`` warp before the unit-budget
        # check only if no unit has a zero budget: otherwise the reference
        # scan could attribute that warp to ``structural`` (budget exhausted
        # at zero issues) where the skip would say ``sb_block``.  With every
        # budget >= 1, exhaustion implies at least one issue this cycle, and
        # neither flag is observable (sleeping is False, stall counters only
        # tick on zero-issue cycles) — see docs/PERFORMANCE.md.
        self._sb_early = min(self._unit_budget_template) > 0
        log_bytes = getattr(scheme, "log_bytes", 0)
        self._log_partition = (
            max(512, log_bytes // max(occupancy, 1)) if log_bytes else 0
        )
        # Ready scan list (fast issue path): master-order subset of
        # ``self.warps`` that can possibly issue — lazily rebuilt when a
        # membership transition marks it dirty.
        self._scan: List[WarpRT] = []
        self._scan_pos: List[int] = []
        self._scan_dirty = True
        # Per-run constants hoisted out of the issue loop.
        self._issue_width = config.issue_width
        self._oprd_lat = config.operand_read_latency
        self._pending_limit = config.pending_fault_limit
        self._line_size = config.line_size
        self._anchor = getattr(scheme, "disable_anchor", None)
        self._cover_arith = getattr(scheme, "cover_arithmetic", False)
        self._log_need = (
            scheme.log_bytes_needed(False),
            scheme.log_bytes_needed(True),
        )
        # Schemes declare (core.schemes) whether source scoreboards release
        # right at operand read; custom schemes without the hint take the
        # method-call path, which inlines the release anyway when it is due.
        self._src_imm = getattr(scheme, "immediate_source_release", False)
        self._memsys_fast = hasattr(memsys, "translate_access_coalesced") and (
            hasattr(memsys, "replay_after_fault_coalesced")
        )
        # Chaos / sanitizer (repro.chaos): both None unless enabled, so the
        # issue and retirement hot paths pay only an ``is not None`` check.
        from repro.chaos import chaos_active as _chaos_active

        self.chaos = _chaos_active(chaos)
        self.sanitizer = sanitizer
        # Telemetry: ``self.tel`` is None unless an *enabled* Telemetry was
        # supplied, so the hot paths pay only an ``is not None`` check.
        self.tel = _tel_active(telemetry)
        self._tid = f"sm{sm_id}"
        if self.tel is not None:
            reg = self.tel.counters
            prefix = f"gpu.sm[{sm_id}]"
            self._c_stall = reg.counter(f"{prefix}.warp_stall.cycles")
            self._c_stall_fault = reg.counter(f"{prefix}.warp_stall.fault")
            self._c_stall_sb = reg.counter(f"{prefix}.warp_stall.scoreboard")
            self._c_stall_log = reg.counter(f"{prefix}.warp_stall.log")
            self._c_stall_struct = reg.counter(
                f"{prefix}.warp_stall.structural"
            )
            reg.bind_stats(f"{prefix}.stats", self.stats)
            reg.gauge(f"{prefix}.pending_faults", lambda: self.pending_faults)
            reg.gauge(f"{prefix}.ready_warps", self.ready_warp_count)
        if reference_issue or os.environ.get("REPRO_REFERENCE_ISSUE") == "1":
            # Executable spec: shadow the fast path with the reference scan
            # (bound as an instance attribute) for A/B equivalence testing.
            self.try_issue = self._try_issue_reference

    # ------------------------------------------------------------------
    # block lifecycle
    # ------------------------------------------------------------------

    def wake(self) -> None:
        self.sleeping = False

    def schedule_wake(self, time: float) -> None:
        """Arm the run loop to re-scan this SM at ``time`` without pushing a
        heap event: the wake time joins a (tiny) sorted pending list and
        lowers ``next_ready_cycle``; :meth:`try_issue` retires due entries.
        Replaces the pure-wake events the barrier-release path used to
        schedule (counted in ``EventQueue.coalesced``)."""
        self.events.coalesced += 1
        insort(self._wakes, time)
        if time < self.next_ready_cycle:
            self.next_ready_cycle = time

    def launch_block(self, btrace: BlockTrace, time: float) -> BlockRT:
        """Bring a fresh thread block on chip."""
        if self.free_slots <= 0:
            raise RuntimeError(f"SM{self.sm_id}: no free block slot")
        self.free_slots -= 1
        ctx_bytes = self.context_bytes_per_block
        if self.kernel_context_bytes is not None:
            ctx_bytes = self.kernel_context_bytes[btrace.kernel_id]
        block = BlockRT(
            btrace,
            context_bytes=ctx_bytes,
            log_capacity=self._log_partition,
        )
        for wtrace in btrace.warps:
            warp = WarpRT(len(self.warps), wtrace.instructions, block)
            warp.fetch_ready = time
            block.warps.append(warp)
        self.blocks.append(block)
        self._rebuild_warp_list()
        self.stats.blocks_launched += 1
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_BLOCK_LAUNCH, time, self._tid,
                {"block": block.block_id, "warps": len(block.warps),
                 "kernel": block.kernel_id},
            )
        self.wake()
        return block

    def _rebuild_warp_list(self) -> None:
        self.warps = [
            w
            for b in self.blocks
            if b.state == BlockRT.ACTIVE
            for w in b.warps
            if not w.done
        ]
        self.rr = 0
        self._scan_dirty = True
        for w in self.warps:
            w.sb_wait = False  # conservative: context moved, recheck all

    def _block_finished(self, block: BlockRT, time: float) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_block_retirement(self, block, time)
        block.state = BlockRT.DONE
        self.blocks.remove(block)
        self.free_slots += 1
        self.stats.blocks_completed += 1
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_BLOCK_DONE, time, self._tid,
                {"block": block.block_id, "kernel": block.kernel_id},
            )
        self._rebuild_warp_list()
        if self.on_block_done is not None:
            self.on_block_done(self, block, time)
        self.wake()

    def refill_slot(self, time: float) -> None:
        """Default slot refill: fetch the next pending block, if any."""
        while self.free_slots > 0:
            btrace = self.block_source.next_block(self.sm_id)
            if btrace is None:
                return
            self.launch_block(btrace, time)

    # ------------------------------------------------------------------
    # issue logic
    # ------------------------------------------------------------------

    def _rebuild_scan(self) -> None:
        """Recompute the ready scan list from the master warp list.

        Membership: not done, not parked at a barrier, and still has an
        instruction to issue (replay pending or trace remaining).  Warps
        whose fetch is held/not-ready stay listed — hold churn is
        per-issue, so evicting them would cost more rebuilds than the one
        flag test they cost in the loop.  Master positions are refreshed
        here so the round-robin pointer maps exactly onto the reference
        scan order."""
        scan = []
        pos_list = []
        for pos, w in enumerate(self.warps):
            w.pos = pos
            if w.done or w.at_barrier:
                continue
            if not w.replay_list and w.idx >= w.tlen:
                continue  # trace exhausted, draining in-flight work
            scan.append(w)
            pos_list.append(pos)
        self._scan = scan
        self._scan_pos = pos_list
        self._scan_dirty = False

    def ready_warp_count(self) -> int:
        """Current ready-list size (telemetry gauge
        ``gpu.sm[*].ready_warps``)."""
        if self._scan_dirty:
            self._rebuild_scan()
        return len(self._scan)

    def try_issue(self, cycle: float) -> int:
        """Attempt up to ``issue_width`` issues this cycle; returns count.

        Fast path of the hot-loop overhaul: scans only the ready list, in
        the exact order and with the exact stall attribution of
        :meth:`_try_issue_reference` (the original full round-robin scan,
        kept as the executable spec)."""
        if self.next_ready_cycle <= cycle:
            wakes = self._wakes
            rel = self._rel
            while wakes and wakes[0] <= cycle:
                t = wakes.pop(0)
                if rel:
                    lst = rel.pop(t, None)
                    if lst is not None:
                        for warp, srcs, psrcs in lst:
                            self._do_src_release(warp, srcs, psrcs, t)
            self.next_ready_cycle = wakes[0] if wakes else _INF
        warps = self.warps
        n = len(warps)
        if n == 0:
            self.sleeping = True
            return 0
        if self._scan_dirty:
            self._rebuild_scan()
        scan = self._scan
        ns = len(scan)
        issued = 0
        structural = False
        sb_block = fault_block = log_block = False  # stall attribution
        if ns:
            budget = list(self._unit_budget_template)
            width = self._issue_width
            sb_check = self._scoreboard_blocked
            sb_early = self._sb_early
            # First scan entry at master position >= rr (wrapping to 0):
            # identical visit order to the reference scan, which starts at
            # master index rr and skips non-ready warps as no-ops.
            start = bisect_left(self._scan_pos, self.rr)
            if start == ns:
                start = 0
            # Rotated copy: a plain for-loop over a list beats per-iteration
            # wrap-around index arithmetic in the interpreter.
            order = scan[start:] + scan[:start] if start else scan
            for warp in order:
                if (
                    warp.done
                    or warp.at_barrier
                    or warp.fetch_holds
                    or warp.fetch_ready > cycle
                ):
                    continue
                if warp.sb_wait and sb_early:
                    # Head instruction and this warp's scoreboards are
                    # untouched since the last verdict (issue, releases,
                    # commits and replay squashes all clear the flag), so
                    # the decode/budget/BAR work below would reach the same
                    # "blocked" answer — skip it.
                    sb_block = True
                    continue
                rl = warp.replay_list
                if rl:
                    tinst = rl[0]
                    dec = _decode(tinst.inst)
                else:
                    idx = warp.idx
                    if idx >= warp.tlen:
                        continue  # stale entry: draining
                    tinst = warp.trace[idx]
                    dec = warp.dtrace[idx]
                if budget[dec[0]] <= 0:
                    structural = True
                    continue
                if dec[5] and warp.inflight:  # BAR waits for older insts
                    continue
                if warp.sb_wait or sb_check(warp, dec):
                    warp.sb_wait = True
                    sb_block = True
                    continue
                if dec[2]:
                    if self.pending_faults >= self._pending_limit:
                        fault_block = True
                        continue  # memory pipeline clogged by parked faults
                    need = self._log_need[dec[3]]
                    if need and warp.block.log_used + need > warp.block.log_capacity:
                        log_block = True
                        continue  # log partition full; event will wake us
                budget[dec[0]] -= 1
                self._issue(warp, tinst, dec, cycle)
                issued += 1
                if issued >= width:
                    # Reference-scan equivalent of stopping at issue_width:
                    # rr advances to just past the last issued warp's
                    # master position.  (A completed full circle leaves rr
                    # unchanged, exactly like the reference.)
                    nxt = warp.pos + 1
                    self.rr = nxt if nxt < n else 0
                    break
        self.sleeping = issued == 0 and not structural
        if self.sleeping:
            self.stats.cycles_asleep_entries += 1
        if issued == 0 and self.tel is not None:
            self._c_stall.add()
            if fault_block:
                self._c_stall_fault.add()
            if sb_block:
                self._c_stall_sb.add()
            if log_block:
                self._c_stall_log.add()
            if structural:
                self._c_stall_struct.add()
        return issued

    def _try_issue_reference(self, cycle: float) -> int:
        """Reference issue scan (pre-overhaul behaviour): full round-robin
        over the master warp list.  Kept as the executable specification the
        fast path must match bit-for-bit; selected via
        ``reference_issue=True`` / ``REPRO_REFERENCE_ISSUE=1``."""
        if self.next_ready_cycle <= cycle:
            wakes = self._wakes
            rel = self._rel
            while wakes and wakes[0] <= cycle:
                t = wakes.pop(0)
                if rel:
                    lst = rel.pop(t, None)
                    if lst is not None:
                        for warp, srcs, psrcs in lst:
                            self._do_src_release(warp, srcs, psrcs, t)
            self.next_ready_cycle = wakes[0] if wakes else _INF
        warps = self.warps
        n = len(warps)
        if n == 0:
            self.sleeping = True
            return 0
        budget = list(self._unit_budget_template)
        issued = 0
        structural = False
        scanned = 0
        sb_block = fault_block = log_block = False  # stall attribution
        i = self.rr
        width = self.config.issue_width
        while scanned < n and issued < width:
            warp = warps[i]
            i = i + 1 if i + 1 < n else 0
            scanned += 1
            if warp.done or warp.at_barrier:
                continue
            if warp.fetch_holds or warp.fetch_ready > cycle:
                continue
            tinst = warp.next_inst()
            if tinst is None:
                continue  # trace exhausted, draining in-flight work
            dec = _decode(tinst.inst)
            if budget[dec[0]] <= 0:
                structural = True
                continue
            if dec[5] and warp.inflight:  # BAR waits for older instructions
                continue
            if self._scoreboard_blocked(warp, dec):
                sb_block = True
                continue
            if dec[2]:
                if self.pending_faults >= self.config.pending_fault_limit:
                    fault_block = True
                    continue  # memory pipeline clogged by parked faults
                need = self.scheme.log_bytes_needed(dec[3])
                if need and warp.block.log_used + need > warp.block.log_capacity:
                    log_block = True
                    continue  # operand log partition full; event will wake us
            budget[dec[0]] -= 1
            self._issue(warp, tinst, dec, cycle)
            issued += 1
        if issued:
            self.rr = i
        self.sleeping = issued == 0 and not structural
        if self.sleeping:
            self.stats.cycles_asleep_entries += 1
        if issued == 0 and self.tel is not None:
            self._c_stall.add()
            if fault_block:
                self._c_stall_fault.add()
            if sb_block:
                self._c_stall_sb.add()
            if log_block:
                self._c_stall_log.add()
            if structural:
                self._c_stall_struct.add()
        return issued

    def _scoreboard_blocked(self, warp: WarpRT, dec) -> bool:
        srcs, dests, psrcs, pdests = dec[6], dec[7], dec[8], dec[9]
        pw, pr = warp.pw, warp.pr
        for r in srcs:
            if pw.get(r):
                return True  # RAW
        for r in dests:
            if pw.get(r) or pr.get(r):
                return True  # WAW / WAR
        pwp, prp = warp.pwp, warp.prp
        for p in psrcs:
            if pwp.get(p):
                return True
        for p in pdests:
            if pwp.get(p) or prp.get(p):
                return True
        return False

    # ------------------------------------------------------------------

    def _mark(self, table: Dict[int, int], keys) -> None:
        for k in keys:
            table[k] = table.get(k, 0) + 1

    def _release(self, table: Dict[int, int], keys) -> None:
        for k in keys:
            left = table.get(k, 0) - 1
            if left > 0:
                table[k] = left
            else:
                table.pop(k, None)

    def _issue(self, warp: WarpRT, tinst: TraceInst, dec, cycle: float) -> None:
        """Issue one decoded instruction for ``warp`` at ``cycle``: claim
        scoreboards, then hand it to the memory / barrier / ALU path."""
        srcs, dests, psrcs, pdests = dec[6], dec[7], dec[8], dec[9]
        if self.tel is not None:
            name = (
                _ev.EV_REPLAY
                if warp.replay_list and warp.replay_list[0] is tinst
                else _ev.EV_ISSUE
            )
            self.tel.tracer.emit(
                name, cycle, self._tid,
                {"op": tinst.inst.op.name, "warp": warp.slot,
                 "block": warp.block.block_id},
            )
        rl = warp.replay_list
        if rl:
            rl.pop(0)
            if not rl and warp.idx >= warp.tlen:
                self._scan_dirty = True  # drained: drop from ready list
        else:
            warp.idx += 1
            if warp.idx >= warp.tlen:
                self._scan_dirty = True
        warp.sb_wait = False  # the next instruction is a different one
        warp.fetch_ready = cycle + 1
        warp.inflight += 1
        # inlined _mark x4 — this is the hottest scoreboard write path
        table = warp.pr
        for k in srcs:
            table[k] = table.get(k, 0) + 1
        table = warp.pw
        for k in dests:
            table[k] = table.get(k, 0) + 1
        table = warp.prp
        for k in psrcs:
            table[k] = table.get(k, 0) + 1
        table = warp.pwp
        for k in pdests:
            table[k] = table.get(k, 0) + 1
        self.stats.issued += 1
        oprd = cycle + self._oprd_lat

        if dec[2] and tinst.addresses:  # global memory (can fault)
            self.stats.issued_mem += 1
            self._issue_gmem(warp, tinst, dec, cycle, oprd)
            return

        if dec[5]:  # BAR
            self._issue_barrier(warp, tinst, cycle, oprd)
            return

        commit_time = oprd + dec[1]
        # Extension to arithmetic exceptions (paper Sections 3.1/3.2): a
        # potentially excepting SFU divide is guaranteed exception-free only
        # once it completes execution, so a warp-disable scheme barriers it
        # and the replay-queue scheme holds its source scoreboards that long.
        covers_arith = dec[11] and self._cover_arith
        src_release = oprd
        if covers_arith and self._anchor is None:
            src_release = self.scheme.source_release_time(oprd, commit_time)
        self._queue_src_release(warp, srcs, psrcs, src_release, cycle)
        if dec[4] or (covers_arith and self._anchor is not None):
            # control flow: fetch disabled until commit (baseline); covered
            # arithmetic under a warp-disable scheme behaves the same way.
            # The hold release and the commit fall on the same timestamp
            # (release first), so both dispatch from one merged event.
            warp.fetch_holds += 1
            if self.tel is not None:
                self.tel.tracer.emit(
                    _ev.EV_FETCH_DISABLE, cycle, self._tid,
                    {"warp": warp.slot, "why": "control"},
                )
            self.events.coalesced += 1
            self.events.call(
                commit_time,
                partial(self._commit_release_hold, warp, dests, pdests),
            )
        else:
            self.events.call(
                commit_time, partial(self._commit, warp, dests, pdests)
            )
        if commit_time > warp.block.drain_time:
            warp.block.drain_time = commit_time

    def _schedule_src_release(
        self, warp, srcs, psrcs, time: float, now: float = None
    ):
        """Release source scoreboards at ``time``; when the release is due
        at or before ``now`` it executes inline (no heap push) — same batch,
        same ordering, one fewer event (docs/PERFORMANCE.md).

        Returns a cancellable Event handle — use this variant only where
        the caller may need to squash the release (faulted in-flight
        instructions); everything else goes through the heap-free
        :meth:`_queue_src_release`."""
        if not srcs and not psrcs:
            return None
        if now is not None and time <= now:
            self.events.coalesced += 1
            self._do_src_release(warp, srcs, psrcs, now)
            return None
        return self.events.schedule(
            time, partial(self._do_src_release, warp, srcs, psrcs)
        )

    def _queue_src_release(self, warp, srcs, psrcs, time: float, now: float) -> None:
        """Heap-free :meth:`_schedule_src_release` for releases that are
        never cancelled: due entries run inline; future ones park in the
        per-SM ``_rel`` map and fire from :meth:`try_issue`'s wake sweep —
        the same pre-scan point of their due cycle the heap dispatched them
        at, and release order within a timestamp is immaterial (counter
        decrements on per-warp tables commute)."""
        if not srcs and not psrcs:
            return
        self.events.coalesced += 1
        if time <= now:
            self._do_src_release(warp, srcs, psrcs, now)
            return
        lst = self._rel.get(time)
        if lst is None:
            self._rel[time] = [(warp, srcs, psrcs)]
            insort(self._wakes, time)
            if time < self.next_ready_cycle:
                self.next_ready_cycle = time
        else:
            lst.append((warp, srcs, psrcs))

    def _do_src_release(self, warp, srcs, psrcs, time: float = 0.0) -> None:
        # inlined _release x2 (hot path)
        table = warp.pr
        for k in srcs:
            left = table.get(k, 0) - 1
            if left > 0:
                table[k] = left
            else:
                table.pop(k, None)
        table = warp.prp
        for k in psrcs:
            left = table.get(k, 0) - 1
            if left > 0:
                table[k] = left
            else:
                table.pop(k, None)
        warp.sb_wait = False  # a WAR-blocked successor may now pass
        self.sleeping = False  # inlined wake() (hot path)

    def _release_fetch_hold(self, warp: WarpRT, time: float = 0.0) -> None:
        """Drop one fetch hold on ``warp`` (commit / last-check / handler
        return) and wake the SM's issue loop."""
        warp.fetch_holds -= 1
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_FETCH_ENABLE, time, self._tid, {"warp": warp.slot}
            )
        self.sleeping = False  # inlined wake()

    def _commit(self, warp: WarpRT, dests, pdests, time: float) -> None:
        """Commit one in-flight instruction of ``warp``: release destination
        scoreboards and retire the block if this emptied it."""
        # inlined _release x2 (hot path)
        table = warp.pw
        for k in dests:
            left = table.get(k, 0) - 1
            if left > 0:
                table[k] = left
            else:
                table.pop(k, None)
        table = warp.pwp
        for k in pdests:
            left = table.get(k, 0) - 1
            if left > 0:
                table[k] = left
            else:
                table.pop(k, None)
        warp.inflight -= 1
        warp.sb_wait = False  # a RAW/WAW-blocked successor may now pass
        self.stats.committed += 1
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_COMMIT, time, self._tid, {"warp": warp.slot}
            )
        self.sleeping = False  # inlined wake() (hot path)
        # inlined warp.maybe_done() — the common case (more work in flight)
        # pays three attribute tests instead of a method call
        if warp.done or (
            not warp.inflight and warp.idx >= warp.tlen and not warp.replay_list
        ):
            warp.done = True
            self._scan_dirty = True  # done: drop from ready list
            block = warp.block
            self._check_barrier(block, time)
            if block.state in (BlockRT.ACTIVE, BlockRT.SAVING) and block.is_done():
                self._block_finished(block, time)

    def _commit_release_hold(self, warp: WarpRT, dests, pdests, time: float) -> None:
        """Merged same-timestamp dispatch: fetch-hold release followed by
        commit (the order the reference scheduled them in)."""
        self._release_fetch_hold(warp, time)
        self._commit(warp, dests, pdests, time)

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------

    def _issue_barrier(self, warp: WarpRT, tinst, cycle: float, oprd: float) -> None:
        """Park ``warp`` at a BAR; restart everyone once the block arrives."""
        warp.at_barrier = True
        self._scan_dirty = True  # parked: drop from ready list
        block = warp.block
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_BARRIER, cycle, self._tid,
                {"warp": warp.slot, "block": block.block_id},
            )
        block.barrier_arrived += 1
        commit_time = oprd + tinst.inst.info.latency
        self.events.call(commit_time, partial(self._commit, warp, (), ()))
        self._check_barrier(block, cycle)

    def _check_barrier(self, block: BlockRT, time: float) -> None:
        waiting = [w for w in block.warps if w.at_barrier]
        if not waiting:
            return
        live = sum(1 for w in block.warps if not w.done)
        if len(waiting) >= live:
            restart = time + BARRIER_RESTART_LATENCY
            for w in waiting:
                w.at_barrier = False
                w.fetch_ready = max(w.fetch_ready, restart)
            block.barrier_arrived = 0
            self._scan_dirty = True  # released warps rejoin the ready list
            self.schedule_wake(restart)

    # ------------------------------------------------------------------
    # global memory path (translation, faults, schemes)
    #
    # The path is event-driven in two phases so that shared bandwidth
    # resources (caches, MSHRs, DRAM pipe) are only booked in global time
    # order: phase 1 (at operand read) coalesces and translates — detecting
    # faults at walk completion; phase 2 (at translation-done) runs the
    # requests through the cache hierarchy.
    # ------------------------------------------------------------------

    def _issue_gmem(self, warp: WarpRT, tinst, dec, cycle: float, oprd: float) -> None:
        """Issue a global-memory instruction: claim warp-disable holds and
        operand-log space now, then translate at operand read (phase 1)."""
        # Warp-disable schemes stop fetching from the cycle the memory
        # instruction is fetched; the release time is known later.
        wd_hold = self._anchor is not None
        if wd_hold:
            warp.fetch_holds += 1
            if self.tel is not None:
                self.tel.tracer.emit(
                    _ev.EV_FETCH_DISABLE, cycle, self._tid,
                    {"warp": warp.slot, "why": "warp-disable"},
                )
        # Operand-log space is claimed at issue (checked by try_issue) and
        # released once the last TLB check clears (scheduled in phase 1).
        need = self._log_need[dec[3]]
        if need:
            warp.block.log_used += need
        self.events.call(
            oprd, partial(self._gmem_translate, warp, tinst, dec, wd_hold)
        )

    def _gmem_translate(
        self, warp: WarpRT, tinst, dec, wd_hold: bool, now: float,
        replayed: bool = False,
    ) -> None:
        """Phase 1 of the global-memory path: coalesce + translate; route
        detected page faults to the fault controller and park the faulted
        instruction for replay (the squashable state of Section 3)."""
        chaos = self.chaos
        if chaos is not None and not replayed:
            # ``sm.squash_replay`` injection: transiently squash this
            # in-flight global-memory instruction and replay it after a
            # pipeline-refill penalty.  Phase 1 has claimed no timed
            # resources yet, so deferring the whole phase is leak-free.
            penalty = chaos.squash_replay(now, self.sm_id)
            if penalty:
                self.events.call(
                    now + penalty,
                    lambda t, w=warp, ti=tinst, d=dec, h=wd_hold:
                        self._gmem_translate(w, ti, d, h, t, True),
                )
                return
        srcs, dests, psrcs, pdests = dec[6], dec[7], dec[8], dec[9]
        is_store = dec[3]
        block = warp.block
        anchor = self._anchor
        if self._memsys_fast:
            access = coalesce_inst(tinst, self._line_size)
            outcome = self.memsys.translate_access_coalesced(
                self.sm_id, access, is_store, now
            )
        else:
            access = None
            outcome = self.memsys.translate_access(
                self.sm_id, tinst.addresses, is_store, now
            )

        if not outcome.faults:
            last_check = outcome.translation_done
            release_t = (
                now
                if self._src_imm
                else self.scheme.source_release_time(now, last_check)
            )
            self._queue_src_release(warp, srcs, psrcs, release_t, now)
            self._hold_log_until(block, is_store, last_check)
            if wd_hold and anchor == "lastcheck":
                # The hold lifts at the same timestamp phase 2 starts
                # (release first): one merged event instead of two.
                self.events.coalesced += 1
                self.events.call(
                    last_check,
                    partial(
                        self._gmem_data_release_hold,
                        warp, tinst, dec, outcome.ready_lines,
                    ),
                )
            else:
                self.events.call(
                    last_check,
                    partial(
                        self._gmem_data,
                        warp, tinst, dec, outcome.ready_lines, wd_hold,
                    ),
                )
            return

        # --- faulted instruction ---------------------------------------
        self.stats.faulted_instructions += 1
        handled_locally = False
        resolved = 0.0
        position = 0
        first_detect = min(f.detect_time for f in outcome.faults)
        for fault in outcome.faults:
            fo = self.fault_ctl.on_fault(
                fault.vpn, fault.detect_time, self.sm_id, block.kernel_id
            )
            resolved = max(resolved, fo.resolved_time)
            position = max(position, fo.position)
            handled_locally |= fo.handled_locally
            block.pending_groups[fo.group] = max(
                block.pending_groups.get(fo.group, 0.0), fo.resolved_time
            )
        if access is not None:
            replay = self.memsys.replay_after_fault_coalesced(
                self.sm_id, access, resolved + REPLAY_ISSUE_COST
            )
        else:
            replay = self.memsys.replay_after_fault(
                self.sm_id, tinst.addresses, resolved + REPLAY_ISSUE_COST
            )
        completion = replay.completion
        last_check_ok = replay.translation_done

        release_t = (
            now
            if self._src_imm
            else self.scheme.source_release_time(now, last_check_ok)
        )
        src_ev = self._schedule_src_release(warp, srcs, psrcs, release_t, now)
        self._hold_log_until(block, is_store, last_check_ok)

        hold_evs = []
        if wd_hold:
            release_at = completion if anchor == "commit" else last_check_ok
            hold_evs.append(
                self.events.schedule(
                    release_at, partial(self._release_fetch_hold, warp)
                )
            )
        if handled_locally:
            # The faulting warp runs the handler in system mode: it cannot
            # fetch user instructions until the handler returns.
            self.stats.local_handler_runs += 1
            warp.fetch_holds += 1
            if self.tel is not None:
                self.tel.tracer.emit(
                    _ev.EV_FETCH_DISABLE, now, self._tid,
                    {"warp": warp.slot, "why": "local-handler"},
                )
            hold_evs.append(
                self.events.schedule(
                    resolved, partial(self._release_fetch_hold, warp)
                )
            )

        # The faulted instruction parks in the LD/ST pipeline until it can
        # replay: it holds a pending-fault slot that throttles the SM.
        self.pending_faults += 1
        slot_ev = self.events.schedule(
            completion, partial(self._release_fault_slot)
        )

        commit_ev = self.events.schedule(
            completion, partial(self._commit, warp, dests, pdests)
        )
        block.faulted_inflight.append(
            (warp, tinst, commit_ev, dests, pdests, hold_evs, src_ev, slot_ev)
        )
        self.events.call(
            completion, partial(self._forget_faulted, block, commit_ev)
        )
        if self.local_scheduler is not None:
            if block.state == BlockRT.ACTIVE:
                self.local_scheduler.on_fault(
                    self, block, warp, tinst, first_detect, resolved, position
                )
            else:
                # The block was switched out between this instruction's
                # issue and its translation: the switch-out only armed
                # wake-ups for the groups known then, so watch this one too.
                self.events.call(
                    resolved,
                    lambda t, b=block: self.local_scheduler._on_resolved(b, t),
                )

    def _gmem_data(
        self, warp: WarpRT, tinst, dec, lines, wd_hold: bool, now: float
    ) -> None:
        """Phase 2 of the global-memory path: run the translated requests
        through the cache hierarchy and schedule the commit."""
        completion = self.memsys.data_access(
            self.sm_id, lines, dec[3], now, is_atomic=dec[10]
        )
        if wd_hold:
            # wd-commit: fetch re-enables when the instruction commits —
            # same timestamp, release first, merged into one event.
            self.events.coalesced += 1
            self.events.call(
                completion,
                partial(self._commit_release_hold, warp, dec[7], dec[9]),
            )
        else:
            self.events.call(
                completion, partial(self._commit, warp, dec[7], dec[9])
            )
        if completion > warp.block.drain_time:
            warp.block.drain_time = completion

    def _gmem_data_release_hold(
        self, warp: WarpRT, tinst, dec, lines, now: float
    ) -> None:
        """Merged same-timestamp dispatch for ``wd-lastcheck``: the fetch
        hold lifts exactly when phase 2 starts (release first, as the
        reference ordered its two events)."""
        self._release_fetch_hold(warp, now)
        self._gmem_data(warp, tinst, dec, lines, False, now)

    def _hold_log_until(self, block: BlockRT, is_store: bool, release_at: float) -> None:
        """Schedule the release of the log bytes claimed at issue."""
        need = self._log_need[is_store]
        if need:
            self.events.call(
                release_at, partial(self._release_log, block, need)
            )

    def _release_log(self, block: BlockRT, nbytes: int, time: float = 0.0) -> None:
        block.log_used -= nbytes
        self.sleeping = False  # inlined wake()

    def _release_fault_slot(self, time: float = 0.0) -> None:
        self.pending_faults -= 1
        self.sleeping = False  # inlined wake()

    def _forget_faulted(self, block: BlockRT, commit_ev, time: float = 0.0) -> None:
        """A faulted instruction that completed (block was not switched)."""
        block.faulted_inflight = [
            rec for rec in block.faulted_inflight if rec[2] is not commit_ev
        ]

    # ------------------------------------------------------------------
    # preemption support (used by core.local_scheduler)
    # ------------------------------------------------------------------

    def squash_faulted(self, block: BlockRT, time: float = 0.0) -> None:
        """Squash all in-flight faulted instructions of ``block`` so it can
        be switched out; each will be replayed from the restored context."""
        tel = self.tel
        for rec in block.faulted_inflight:
            warp, tinst, commit_ev, dests, pdests, hold_evs, src_ev, slot_ev = rec
            if tel is not None:
                tel.tracer.emit(
                    _ev.EV_SQUASH, time, self._tid,
                    {"op": tinst.inst.op.name, "warp": warp.slot,
                     "block": block.block_id},
                )
            commit_ev.cancel()
            if not slot_ev.fired:
                # Squashing frees the parked instruction's LD/ST slot — the
                # mechanism by which switching out a faulted block unclogs
                # the SM's memory pipeline.
                slot_ev.cancel()
                self._release_fault_slot()
            for hold_ev in hold_evs:
                if not hold_ev.fired:
                    hold_ev.cancel()
                    warp.fetch_holds -= 1
            self._release(warp.pw, dests)
            self._release(warp.pwp, pdests)
            if src_ev is not None and not src_ev.fired:
                src_ev.cancel()
                dec = _decode(tinst.inst)
                self._release(warp.pr, dec[6])
                self._release(warp.prp, dec[8])
            warp.inflight -= 1
            warp.replay_list.append(tinst)
            warp.sb_wait = False  # scoreboards changed + next inst changed
        if block.faulted_inflight:
            self._scan_dirty = True  # drained warps regained a replay inst
        block.faulted_inflight = []

    def context_bytes(self, block: BlockRT) -> int:
        """Size of the block's architectural context for a switch."""
        return block.context_bytes + self.scheme.context_extra_bytes(block)
