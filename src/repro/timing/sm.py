"""Cycle-level SM pipeline model.

Models the SM of paper Figure 1: a warp scheduler picking ready warps, dual
issue (2 instructions per cycle from 1 or 2 warps), per-warp in-program-order
issue gated by scoreboards (pending-write for RAW/WAW, pending-read for WAR),
an operand-read stage, back-end units (2 math, 1 SFU, 1 ld/st, 1 branch), a
global-memory pipeline through the coalescer/TLBs/caches, and out-of-order
commit.  Control-flow instructions disable warp fetch until they commit
(baseline behaviour, Section 2.1); source-operand scoreboards are released at
operand read (the early release that creates the paper's *RAW on replay*
problem).

The preemptible-exception schemes of Section 3 plug in through a
:class:`~repro.core.schemes.PipelineScheme` strategy object that adjusts
(a) how long a warp's fetch stays disabled after a global-memory instruction,
(b) when source scoreboards of global-memory instructions are released, and
(c) operand-log capacity accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.functional.trace import BlockTrace, TraceInst
from repro.isa import Opcode, Unit
from repro.telemetry import active as _tel_active, ev as _ev

from .engine import EventQueue

#: cycles from fetch decision to issue — folded into issue; operand read and
#: execution start are measured from the issue cycle.
BARRIER_RESTART_LATENCY = 6
#: pipeline refill penalty after squashing a faulted instruction is replayed
REPLAY_ISSUE_COST = 8

_UNIT_IDX = {Unit.MATH: 0, Unit.SFU: 1, Unit.LDST: 2, Unit.BRANCH: 3}


def _decode(inst):
    """Cache the per-static-instruction facts the issue loop needs, avoiding
    repeated enum-keyed dict lookups on the hot path."""
    try:
        return inst._dec
    except AttributeError:
        info = inst.info
        dec = (
            _UNIT_IDX[info.unit],  # 0: unit index
            info.latency,  # 1
            info.can_fault,  # 2
            info.is_store,  # 3
            info.is_control,  # 4
            inst.op is Opcode.BAR,  # 5
            inst.reg_srcs(),  # 6
            inst.reg_dests(),  # 7
            inst.pred_srcs(),  # 8
            inst.pred_dests(),  # 9
            inst.op is Opcode.ATOM_GLOBAL,  # 10: atomic (completes like a load)
            inst.op is Opcode.FDIV,  # 11: may raise an arithmetic exception
        )
        inst._dec = dec
        return dec


@dataclass
class SmStats:
    issued: int = 0
    issued_mem: int = 0
    committed: int = 0
    faulted_instructions: int = 0
    cycles_asleep_entries: int = 0
    blocks_launched: int = 0
    blocks_completed: int = 0
    block_switch_outs: int = 0
    block_switch_ins: int = 0
    extra_blocks_fetched: int = 0
    local_handler_runs: int = 0


class WarpRT:
    """Run-time (timing) state of one warp."""

    __slots__ = (
        "slot",
        "trace",
        "idx",
        "fetch_ready",
        "fetch_holds",
        "pw",
        "pr",
        "pwp",
        "prp",
        "inflight",
        "at_barrier",
        "done",
        "block",
        "replay_list",
    )

    def __init__(self, slot: int, trace: List[TraceInst], block: "BlockRT") -> None:
        self.slot = slot
        self.trace = trace
        self.idx = 0
        self.fetch_ready = 0.0
        self.fetch_holds = 0
        self.pw: Dict[int, int] = {}  # reg -> pending writes (RAW/WAW)
        self.pr: Dict[int, int] = {}  # reg -> pending reads (WAR)
        self.pwp: Dict[int, int] = {}  # predicate pending writes
        self.prp: Dict[int, int] = {}  # predicate pending reads
        self.inflight = 0
        self.at_barrier = False
        self.done = False
        self.block = block
        self.replay_list: List[TraceInst] = []

    def next_inst(self) -> Optional[TraceInst]:
        if self.replay_list:
            return self.replay_list[0]
        if self.idx < len(self.trace):
            return self.trace[self.idx]
        return None

    def advance(self) -> None:
        if self.replay_list:
            self.replay_list.pop(0)
        else:
            self.idx += 1

    def maybe_done(self) -> bool:
        if (
            not self.done
            and self.idx >= len(self.trace)
            and not self.replay_list
            and self.inflight == 0
        ):
            self.done = True
        return self.done


class BlockRT:
    """Run-time state of one resident (or switched-out) thread block."""

    ACTIVE = "active"
    SAVING = "saving"
    OFFCHIP = "offchip"
    RESTORING = "restoring"
    DONE = "done"

    __slots__ = (
        "btrace",
        "warps",
        "state",
        "barrier_arrived",
        "drain_time",
        "pending_groups",
        "faulted_inflight",
        "log_capacity",
        "log_used",
        "context_bytes",
    )

    def __init__(self, btrace: BlockTrace, context_bytes: int, log_capacity: int) -> None:
        self.btrace = btrace
        self.warps: List[WarpRT] = []
        self.state = self.ACTIVE
        self.barrier_arrived = 0
        self.drain_time = 0.0  # latest commit of non-faulted in-flight work
        self.pending_groups: Dict[int, float] = {}  # fault group -> resolve t
        # squashable in-flight faulted instructions: (warp, tinst, commit_ev,
        # dests, pdests, fetch_hold_release_ev)
        self.faulted_inflight: List[Tuple] = []
        self.log_capacity = log_capacity
        self.log_used = 0
        self.context_bytes = context_bytes

    @property
    def block_id(self) -> int:
        return self.btrace.block_id

    def is_done(self) -> bool:
        return all(w.done for w in self.warps)

    def unresolved_at(self, time: float) -> bool:
        return any(t > time for t in self.pending_groups.values())


class SmPipeline:
    """One streaming multiprocessor of the timing simulator."""

    def __init__(
        self,
        sm_id: int,
        config,
        events: EventQueue,
        memsys,
        fault_ctl,
        scheme,
        block_source,
        occupancy: int,
        context_bytes_per_block: int,
        telemetry=None,
        chaos=None,
        sanitizer=None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.events = events
        self.memsys = memsys
        self.fault_ctl = fault_ctl
        self.scheme = scheme
        self.block_source = block_source  # ThreadBlockScheduler-like object
        self.occupancy = occupancy
        self.context_bytes_per_block = context_bytes_per_block
        self.free_slots = occupancy
        self.blocks: List[BlockRT] = []  # resident blocks
        self.offchip: List[BlockRT] = []  # switched-out blocks (use case 1)
        self.warps: List[WarpRT] = []
        self.rr = 0
        self.sleeping = False
        #: faulted memory instructions parked in the LD/ST pipeline; at
        #: config.pending_fault_limit the SM cannot issue further global
        #: memory instructions (the clogging that preemption relieves)
        self.pending_faults = 0
        self.stats = SmStats()
        self.local_scheduler = None  # set by use case 1, see core.local_scheduler
        self.on_block_done = None  # callback(sm, block, time) set by the GPU
        self._unit_budget_template = (
            config.num_math_units,
            config.num_sfu_units,
            config.num_ldst_units,
            config.num_branch_units,
        )
        log_bytes = getattr(scheme, "log_bytes", 0)
        self._log_partition = (
            max(512, log_bytes // max(occupancy, 1)) if log_bytes else 0
        )
        # Chaos / sanitizer (repro.chaos): both None unless enabled, so the
        # issue and retirement hot paths pay only an ``is not None`` check.
        from repro.chaos import chaos_active as _chaos_active

        self.chaos = _chaos_active(chaos)
        self.sanitizer = sanitizer
        # Telemetry: ``self.tel`` is None unless an *enabled* Telemetry was
        # supplied, so the hot paths pay only an ``is not None`` check.
        self.tel = _tel_active(telemetry)
        self._tid = f"sm{sm_id}"
        if self.tel is not None:
            reg = self.tel.counters
            prefix = f"gpu.sm[{sm_id}]"
            self._c_stall = reg.counter(f"{prefix}.warp_stall.cycles")
            self._c_stall_fault = reg.counter(f"{prefix}.warp_stall.fault")
            self._c_stall_sb = reg.counter(f"{prefix}.warp_stall.scoreboard")
            self._c_stall_log = reg.counter(f"{prefix}.warp_stall.log")
            reg.bind_stats(f"{prefix}.stats", self.stats)
            reg.gauge(f"{prefix}.pending_faults", lambda: self.pending_faults)

    # ------------------------------------------------------------------
    # block lifecycle
    # ------------------------------------------------------------------

    def wake(self) -> None:
        self.sleeping = False

    def launch_block(self, btrace: BlockTrace, time: float) -> BlockRT:
        """Bring a fresh thread block on chip."""
        if self.free_slots <= 0:
            raise RuntimeError(f"SM{self.sm_id}: no free block slot")
        self.free_slots -= 1
        block = BlockRT(
            btrace,
            context_bytes=self.context_bytes_per_block,
            log_capacity=self._log_partition,
        )
        for wtrace in btrace.warps:
            warp = WarpRT(len(self.warps), wtrace.instructions, block)
            warp.fetch_ready = time
            block.warps.append(warp)
        self.blocks.append(block)
        self._rebuild_warp_list()
        self.stats.blocks_launched += 1
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_BLOCK_LAUNCH, time, self._tid,
                {"block": block.block_id, "warps": len(block.warps)},
            )
        self.wake()
        return block

    def _rebuild_warp_list(self) -> None:
        self.warps = [
            w
            for b in self.blocks
            if b.state == BlockRT.ACTIVE
            for w in b.warps
            if not w.done
        ]
        self.rr = 0

    def _block_finished(self, block: BlockRT, time: float) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_block_retirement(self, block, time)
        block.state = BlockRT.DONE
        self.blocks.remove(block)
        self.free_slots += 1
        self.stats.blocks_completed += 1
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_BLOCK_DONE, time, self._tid, {"block": block.block_id}
            )
        self._rebuild_warp_list()
        if self.on_block_done is not None:
            self.on_block_done(self, block, time)
        self.wake()

    def refill_slot(self, time: float) -> None:
        """Default slot refill: fetch the next pending block, if any."""
        while self.free_slots > 0:
            btrace = self.block_source.next_block(self.sm_id)
            if btrace is None:
                return
            self.launch_block(btrace, time)

    # ------------------------------------------------------------------
    # issue logic
    # ------------------------------------------------------------------

    def try_issue(self, cycle: float) -> int:
        """Attempt up to ``issue_width`` issues this cycle; returns count."""
        warps = self.warps
        n = len(warps)
        if n == 0:
            self.sleeping = True
            return 0
        budget = list(self._unit_budget_template)
        issued = 0
        structural = False
        scanned = 0
        sb_block = fault_block = log_block = False  # stall attribution
        i = self.rr
        width = self.config.issue_width
        while scanned < n and issued < width:
            warp = warps[i]
            i = i + 1 if i + 1 < n else 0
            scanned += 1
            if warp.done or warp.at_barrier:
                continue
            if warp.fetch_holds or warp.fetch_ready > cycle:
                continue
            tinst = warp.next_inst()
            if tinst is None:
                continue  # trace exhausted, draining in-flight work
            dec = _decode(tinst.inst)
            if budget[dec[0]] <= 0:
                structural = True
                continue
            if dec[5] and warp.inflight:  # BAR waits for older instructions
                continue
            if self._scoreboard_blocked(warp, dec):
                sb_block = True
                continue
            if dec[2]:
                if self.pending_faults >= self.config.pending_fault_limit:
                    fault_block = True
                    continue  # memory pipeline clogged by parked faults
                need = self.scheme.log_bytes_needed(dec[3])
                if need and warp.block.log_used + need > warp.block.log_capacity:
                    log_block = True
                    continue  # operand log partition full; event will wake us
            budget[dec[0]] -= 1
            self._issue(warp, tinst, dec, cycle)
            issued += 1
        if issued:
            self.rr = i
        self.sleeping = issued == 0 and not structural
        if self.sleeping:
            self.stats.cycles_asleep_entries += 1
        if issued == 0 and self.tel is not None:
            self._c_stall.add()
            if fault_block:
                self._c_stall_fault.add()
            if sb_block:
                self._c_stall_sb.add()
            if log_block:
                self._c_stall_log.add()
        return issued

    def _scoreboard_blocked(self, warp: WarpRT, dec) -> bool:
        srcs, dests, psrcs, pdests = dec[6], dec[7], dec[8], dec[9]
        pw, pr = warp.pw, warp.pr
        for r in srcs:
            if pw.get(r):
                return True  # RAW
        for r in dests:
            if pw.get(r) or pr.get(r):
                return True  # WAW / WAR
        pwp, prp = warp.pwp, warp.prp
        for p in psrcs:
            if pwp.get(p):
                return True
        for p in pdests:
            if pwp.get(p) or prp.get(p):
                return True
        return False

    # ------------------------------------------------------------------

    def _mark(self, table: Dict[int, int], keys) -> None:
        for k in keys:
            table[k] = table.get(k, 0) + 1

    def _release(self, table: Dict[int, int], keys) -> None:
        for k in keys:
            left = table.get(k, 0) - 1
            if left > 0:
                table[k] = left
            else:
                table.pop(k, None)

    def _issue(self, warp: WarpRT, tinst: TraceInst, dec, cycle: float) -> None:
        """Issue one decoded instruction for ``warp`` at ``cycle``: claim
        scoreboards, then hand it to the memory / barrier / ALU path."""
        srcs, dests, psrcs, pdests = dec[6], dec[7], dec[8], dec[9]
        if self.tel is not None:
            name = (
                _ev.EV_REPLAY
                if warp.replay_list and warp.replay_list[0] is tinst
                else _ev.EV_ISSUE
            )
            self.tel.tracer.emit(
                name, cycle, self._tid,
                {"op": tinst.inst.op.name, "warp": warp.slot,
                 "block": warp.block.block_id},
            )
        warp.advance()
        warp.fetch_ready = cycle + 1
        warp.inflight += 1
        self._mark(warp.pr, srcs)
        self._mark(warp.pw, dests)
        self._mark(warp.prp, psrcs)
        self._mark(warp.pwp, pdests)
        self.stats.issued += 1
        oprd = cycle + self.config.operand_read_latency

        if dec[2] and tinst.addresses:  # global memory (can fault)
            self.stats.issued_mem += 1
            self._issue_gmem(warp, tinst, dec, cycle, oprd)
            return

        if dec[5]:  # BAR
            self._issue_barrier(warp, tinst, cycle, oprd)
            return

        commit_time = oprd + dec[1]
        # Extension to arithmetic exceptions (paper Sections 3.1/3.2): a
        # potentially excepting SFU divide is guaranteed exception-free only
        # once it completes execution, so a warp-disable scheme barriers it
        # and the replay-queue scheme holds its source scoreboards that long.
        covers_arith = dec[11] and getattr(self.scheme, "cover_arithmetic", False)
        src_release = oprd
        if covers_arith and self.scheme.disable_anchor is None:
            src_release = self.scheme.source_release_time(oprd, commit_time)
        self._schedule_src_release(warp, srcs, psrcs, src_release)
        if dec[4] or (covers_arith and self.scheme.disable_anchor is not None):
            # control flow: fetch disabled until commit (baseline); covered
            # arithmetic under a warp-disable scheme behaves the same way
            warp.fetch_holds += 1
            if self.tel is not None:
                self.tel.tracer.emit(
                    _ev.EV_FETCH_DISABLE, cycle, self._tid,
                    {"warp": warp.slot, "why": "control"},
                )
            self.events.schedule(
                commit_time, lambda t, w=warp: self._release_fetch_hold(w, t)
            )
        self.events.schedule(
            commit_time,
            lambda t, w=warp, d=dests, pd=pdests: self._commit(w, d, pd, t),
        )
        warp.block.drain_time = max(warp.block.drain_time, commit_time)

    def _schedule_src_release(self, warp, srcs, psrcs, time: float):
        if not srcs and not psrcs:
            return None
        return self.events.schedule(
            time,
            lambda t, w=warp, s=srcs, ps=psrcs: self._do_src_release(w, s, ps),
        )

    def _do_src_release(self, warp, srcs, psrcs) -> None:
        self._release(warp.pr, srcs)
        self._release(warp.prp, psrcs)
        self.wake()

    def _release_fetch_hold(self, warp: WarpRT, time: float = 0.0) -> None:
        """Drop one fetch hold on ``warp`` (commit / last-check / handler
        return) and wake the SM's issue loop."""
        warp.fetch_holds -= 1
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_FETCH_ENABLE, time, self._tid, {"warp": warp.slot}
            )
        self.wake()

    def _commit(self, warp: WarpRT, dests, pdests, time: float) -> None:
        """Commit one in-flight instruction of ``warp``: release destination
        scoreboards and retire the block if this emptied it."""
        self._release(warp.pw, dests)
        self._release(warp.pwp, pdests)
        warp.inflight -= 1
        self.stats.committed += 1
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_COMMIT, time, self._tid, {"warp": warp.slot}
            )
        self.wake()
        if warp.maybe_done():
            block = warp.block
            self._check_barrier(block, time)
            if block.state in (BlockRT.ACTIVE, BlockRT.SAVING) and block.is_done():
                self._block_finished(block, time)

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------

    def _issue_barrier(self, warp: WarpRT, tinst, cycle: float, oprd: float) -> None:
        """Park ``warp`` at a BAR; restart everyone once the block arrives."""
        warp.at_barrier = True
        block = warp.block
        if self.tel is not None:
            self.tel.tracer.emit(
                _ev.EV_BARRIER, cycle, self._tid,
                {"warp": warp.slot, "block": block.block_id},
            )
        block.barrier_arrived += 1
        commit_time = oprd + tinst.inst.info.latency
        self.events.schedule(
            commit_time, lambda t, w=warp: self._commit(w, (), (), t)
        )
        self._check_barrier(block, cycle)

    def _check_barrier(self, block: BlockRT, time: float) -> None:
        waiting = [w for w in block.warps if w.at_barrier]
        if not waiting:
            return
        live = sum(1 for w in block.warps if not w.done)
        if len(waiting) >= live:
            restart = time + BARRIER_RESTART_LATENCY
            for w in waiting:
                w.at_barrier = False
                w.fetch_ready = max(w.fetch_ready, restart)
            block.barrier_arrived = 0
            self.events.schedule(restart, lambda t: self.wake())

    # ------------------------------------------------------------------
    # global memory path (translation, faults, schemes)
    #
    # The path is event-driven in two phases so that shared bandwidth
    # resources (caches, MSHRs, DRAM pipe) are only booked in global time
    # order: phase 1 (at operand read) coalesces and translates — detecting
    # faults at walk completion; phase 2 (at translation-done) runs the
    # requests through the cache hierarchy.
    # ------------------------------------------------------------------

    def _issue_gmem(self, warp: WarpRT, tinst, dec, cycle: float, oprd: float) -> None:
        """Issue a global-memory instruction: claim warp-disable holds and
        operand-log space now, then translate at operand read (phase 1)."""
        # Warp-disable schemes stop fetching from the cycle the memory
        # instruction is fetched; the release time is known later.
        wd_hold = getattr(self.scheme, "disable_anchor", None) is not None
        if wd_hold:
            warp.fetch_holds += 1
            if self.tel is not None:
                self.tel.tracer.emit(
                    _ev.EV_FETCH_DISABLE, cycle, self._tid,
                    {"warp": warp.slot, "why": "warp-disable"},
                )
        # Operand-log space is claimed at issue (checked by try_issue) and
        # released once the last TLB check clears (scheduled in phase 1).
        need = self.scheme.log_bytes_needed(dec[3])
        if need:
            warp.block.log_used += need
        self.events.schedule(
            oprd,
            lambda t, w=warp, ti=tinst, d=dec, h=wd_hold: self._gmem_translate(
                w, ti, d, t, h
            ),
        )

    def _gmem_translate(
        self, warp: WarpRT, tinst, dec, now: float, wd_hold: bool,
        replayed: bool = False,
    ) -> None:
        """Phase 1 of the global-memory path: coalesce + translate; route
        detected page faults to the fault controller and park the faulted
        instruction for replay (the squashable state of Section 3)."""
        chaos = self.chaos
        if chaos is not None and not replayed:
            # ``sm.squash_replay`` injection: transiently squash this
            # in-flight global-memory instruction and replay it after a
            # pipeline-refill penalty.  Phase 1 has claimed no timed
            # resources yet, so deferring the whole phase is leak-free.
            penalty = chaos.squash_replay(now, self.sm_id)
            if penalty:
                self.events.schedule(
                    now + penalty,
                    lambda t, w=warp, ti=tinst, d=dec, h=wd_hold:
                        self._gmem_translate(w, ti, d, t, h, True),
                )
                return
        srcs, dests, psrcs, pdests = dec[6], dec[7], dec[8], dec[9]
        is_store = dec[3]
        block = warp.block
        anchor = getattr(self.scheme, "disable_anchor", None)
        outcome = self.memsys.translate_access(
            self.sm_id, tinst.addresses, is_store, now
        )

        if not outcome.faults:
            last_check = outcome.translation_done
            src_ev = self._schedule_src_release(
                warp, srcs, psrcs, self.scheme.source_release_time(now, last_check)
            )
            self._hold_log_until(block, is_store, last_check)
            if wd_hold and anchor == "lastcheck":
                self.events.schedule(
                    last_check, lambda t, w=warp: self._release_fetch_hold(w, t)
                )
                wd_hold = False  # phase 2 owes no release
            self.events.schedule(
                last_check,
                lambda t, w=warp, ti=tinst, d=dec, ln=outcome.ready_lines,
                h=wd_hold: self._gmem_data(w, ti, d, ln, t, h),
            )
            return

        # --- faulted instruction ---------------------------------------
        self.stats.faulted_instructions += 1
        handled_locally = False
        resolved = 0.0
        position = 0
        first_detect = min(f.detect_time for f in outcome.faults)
        for fault in outcome.faults:
            fo = self.fault_ctl.on_fault(fault.vpn, fault.detect_time, self.sm_id)
            resolved = max(resolved, fo.resolved_time)
            position = max(position, fo.position)
            handled_locally |= fo.handled_locally
            block.pending_groups[fo.group] = max(
                block.pending_groups.get(fo.group, 0.0), fo.resolved_time
            )
        replay = self.memsys.replay_after_fault(
            self.sm_id, tinst.addresses, resolved + REPLAY_ISSUE_COST
        )
        completion = replay.completion
        last_check_ok = replay.translation_done

        src_ev = self._schedule_src_release(
            warp, srcs, psrcs, self.scheme.source_release_time(now, last_check_ok)
        )
        self._hold_log_until(block, is_store, last_check_ok)

        hold_evs = []
        if wd_hold:
            release_at = completion if anchor == "commit" else last_check_ok
            hold_evs.append(
                self.events.schedule(
                    release_at, lambda t, w=warp: self._release_fetch_hold(w, t)
                )
            )
        if handled_locally:
            # The faulting warp runs the handler in system mode: it cannot
            # fetch user instructions until the handler returns.
            self.stats.local_handler_runs += 1
            warp.fetch_holds += 1
            if self.tel is not None:
                self.tel.tracer.emit(
                    _ev.EV_FETCH_DISABLE, now, self._tid,
                    {"warp": warp.slot, "why": "local-handler"},
                )
            hold_evs.append(
                self.events.schedule(
                    resolved, lambda t, w=warp: self._release_fetch_hold(w, t)
                )
            )

        # The faulted instruction parks in the LD/ST pipeline until it can
        # replay: it holds a pending-fault slot that throttles the SM.
        self.pending_faults += 1
        slot_ev = self.events.schedule(
            completion, lambda t: self._release_fault_slot()
        )

        commit_ev = self.events.schedule(
            completion,
            lambda t, w=warp, d=dests, pd=pdests: self._commit(w, d, pd, t),
        )
        block.faulted_inflight.append(
            (warp, tinst, commit_ev, dests, pdests, hold_evs, src_ev, slot_ev)
        )
        self.events.schedule(
            completion, lambda t, b=block, e=commit_ev: self._forget_faulted(b, e)
        )
        if self.local_scheduler is not None:
            if block.state == BlockRT.ACTIVE:
                self.local_scheduler.on_fault(
                    self, block, warp, tinst, first_detect, resolved, position
                )
            else:
                # The block was switched out between this instruction's
                # issue and its translation: the switch-out only armed
                # wake-ups for the groups known then, so watch this one too.
                self.events.schedule(
                    resolved,
                    lambda t, b=block: self.local_scheduler._on_resolved(b, t),
                )

    def _gmem_data(
        self, warp: WarpRT, tinst, dec, lines, now: float, wd_hold: bool
    ) -> None:
        """Phase 2 of the global-memory path: run the translated requests
        through the cache hierarchy and schedule the commit."""
        completion = self.memsys.data_access(
            self.sm_id, lines, dec[3], now, is_atomic=dec[10]
        )
        if wd_hold:  # wd-commit: re-enable fetch when the instruction commits
            self.events.schedule(
                completion, lambda t, w=warp: self._release_fetch_hold(w, t)
            )
        self.events.schedule(
            completion,
            lambda t, w=warp, d=dec[7], pd=dec[9]: self._commit(w, d, pd, t),
        )
        warp.block.drain_time = max(warp.block.drain_time, completion)

    def _hold_log_until(self, block: BlockRT, is_store: bool, release_at: float) -> None:
        """Schedule the release of the log bytes claimed at issue."""
        need = self.scheme.log_bytes_needed(is_store)
        if need:
            self.events.schedule(
                release_at, lambda t, b=block, n=need: self._release_log(b, n)
            )

    def _release_log(self, block: BlockRT, nbytes: int) -> None:
        block.log_used -= nbytes
        self.wake()

    def _release_fault_slot(self) -> None:
        self.pending_faults -= 1
        self.wake()

    def _forget_faulted(self, block: BlockRT, commit_ev) -> None:
        """A faulted instruction that completed (block was not switched)."""
        block.faulted_inflight = [
            rec for rec in block.faulted_inflight if rec[2] is not commit_ev
        ]

    # ------------------------------------------------------------------
    # preemption support (used by core.local_scheduler)
    # ------------------------------------------------------------------

    def squash_faulted(self, block: BlockRT, time: float = 0.0) -> None:
        """Squash all in-flight faulted instructions of ``block`` so it can
        be switched out; each will be replayed from the restored context."""
        tel = self.tel
        for rec in block.faulted_inflight:
            warp, tinst, commit_ev, dests, pdests, hold_evs, src_ev, slot_ev = rec
            if tel is not None:
                tel.tracer.emit(
                    _ev.EV_SQUASH, time, self._tid,
                    {"op": tinst.inst.op.name, "warp": warp.slot,
                     "block": block.block_id},
                )
            commit_ev.cancel()
            if not slot_ev.fired:
                # Squashing frees the parked instruction's LD/ST slot — the
                # mechanism by which switching out a faulted block unclogs
                # the SM's memory pipeline.
                slot_ev.cancel()
                self._release_fault_slot()
            for hold_ev in hold_evs:
                if not hold_ev.fired:
                    hold_ev.cancel()
                    warp.fetch_holds -= 1
            self._release(warp.pw, dests)
            self._release(warp.pwp, pdests)
            if src_ev is not None and not src_ev.fired:
                src_ev.cancel()
                dec = _decode(tinst.inst)
                self._release(warp.pr, dec[6])
                self._release(warp.prp, dec[8])
            warp.inflight -= 1
            warp.replay_list.append(tinst)
        block.faulted_inflight = []

    def context_bytes(self, block: BlockRT) -> int:
        """Size of the block's architectural context for a switch."""
        return block.context_bytes + self.scheme.context_extra_bytes(block)
