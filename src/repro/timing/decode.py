"""Static-instruction decode memoization (hot-loop overhaul).

The issue stage needs a handful of facts per static instruction (unit,
latency, faultability, operand registers, ...).  Computing them involves
enum-keyed dict lookups and operand-tuple construction — cheap once, hot
when repeated on every *issue attempt* (a scoreboard-blocked warp is
re-scanned every cycle).  ``decode`` computes the facts once and caches the
tuple on the instruction itself; ``predecode_trace`` warms the cache for a
whole kernel trace at load time so the simulator's issue loop only ever
reads.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

from repro.isa import Opcode, Unit

_UNIT_IDX = {Unit.MATH: 0, Unit.SFU: 1, Unit.LDST: 2, Unit.BRANCH: 3}


def decode(inst):
    """Return the decode tuple for ``inst``, caching it on ``inst._dec``.

    Tuple layout (indices are what the issue loop reads):
    0 unit index, 1 latency, 2 can_fault, 3 is_store, 4 is_control,
    5 is BAR, 6 reg_srcs, 7 reg_dests, 8 pred_srcs, 9 pred_dests,
    10 is atomic, 11 may raise an arithmetic exception (FDIV).
    """
    try:
        return inst._dec
    except AttributeError:
        info = inst.info
        dec = (
            _UNIT_IDX[info.unit],  # 0: unit index
            info.latency,  # 1
            info.can_fault,  # 2
            info.is_store,  # 3
            info.is_control,  # 4
            inst.op is Opcode.BAR,  # 5
            inst.reg_srcs(),  # 6
            inst.reg_dests(),  # 7
            inst.pred_srcs(),  # 8
            inst.pred_dests(),  # 9
            inst.op is Opcode.ATOM_GLOBAL,  # 10: atomic (completes like a load)
            inst.op is Opcode.FDIV,  # 11: may raise an arithmetic exception
        )
        inst._dec = dec
        return dec


def predecode_trace(ktrace) -> int:
    """Decode every instruction referenced by a kernel trace.

    Static instructions are shared between dynamic records, so this is
    cheap; afterwards the timing simulator's per-warp decode lists are
    built from cache hits only.  Returns the dynamic record count.
    """
    n = 0
    for block in ktrace.blocks:
        for warp in block.warps:
            for tinst in warp.instructions:
                decode(tinst.inst)
                n += 1
    return n
