"""System-level assembly: configuration, fault routing, TB scheduling, GPU."""

from .config import (
    DEFAULT_CONFIG,
    INTERCONNECTS,
    NVLINK,
    PCIE,
    US,
    GPUConfig,
    InterconnectConfig,
)
from .faults import FaultController, FaultOutcome, FaultStats, InvalidAccessError
from .gpu import DeadlockError, GpuSimulator, SimResult
from .tb_scheduler import ThreadBlockScheduler

__all__ = [
    "DEFAULT_CONFIG",
    "INTERCONNECTS",
    "NVLINK",
    "PCIE",
    "US",
    "GPUConfig",
    "InterconnectConfig",
    "FaultController",
    "FaultOutcome",
    "FaultStats",
    "InvalidAccessError",
    "DeadlockError",
    "GpuSimulator",
    "SimResult",
    "ThreadBlockScheduler",
]
