"""System-level assembly: configuration, fault routing, TB scheduling, GPU."""

from .config import (
    DEFAULT_CONFIG,
    INTERCONNECTS,
    NVLINK,
    PCIE,
    US,
    GPUConfig,
    InterconnectConfig,
)
from .faults import FaultController, FaultOutcome, FaultStats, InvalidAccessError
from .gpu import (
    DeadlockError,
    GpuSimulator,
    MultiKernelResult,
    MultiKernelSimulator,
    SimResult,
    StreamKernelResult,
    StreamLaunch,
)
from .tb_scheduler import MultiKernelScheduler, ThreadBlockScheduler

__all__ = [
    "DEFAULT_CONFIG",
    "INTERCONNECTS",
    "NVLINK",
    "PCIE",
    "US",
    "GPUConfig",
    "InterconnectConfig",
    "FaultController",
    "FaultOutcome",
    "FaultStats",
    "InvalidAccessError",
    "DeadlockError",
    "GpuSimulator",
    "MultiKernelResult",
    "MultiKernelScheduler",
    "MultiKernelSimulator",
    "SimResult",
    "StreamKernelResult",
    "StreamLaunch",
    "ThreadBlockScheduler",
]
