"""Top-level GPU timing simulator.

Assembles the SMs, memory subsystem, MMU, fault controller and thread-block
scheduler, and runs the cycle/event loop.  One :class:`GpuSimulator` executes
one kernel launch (a :class:`~repro.functional.trace.KernelTrace`) under a
chosen pipeline scheme and paging mode and reports a :class:`SimResult`.

Paging modes
------------
``premapped``     every segment page GPU-mapped up front — no faults
                  (the Figure 10/11 pipeline-overhead experiments).
``demand``        segments start as declared by the address space (inputs
                  CPU-dirty, outputs untouched) — on-demand migration
                  (Figures 12-14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.schemes import BaselineStallOnFault, PipelineScheme
from repro.functional.trace import KernelTrace
from repro.isa import Kernel
from repro.mem import MemorySubsystem
from repro.telemetry import Telemetry, active as _tel_active, ev as _ev
from repro.timing.decode import predecode_trace
from repro.timing.engine import EventQueue
from repro.timing.sm import SmPipeline
from repro.vm import AddressSpace, FrameAllocator

from .config import GPUConfig, InterconnectConfig, NVLINK
from .faults import FaultController, FaultStats
from .tb_scheduler import ThreadBlockScheduler


class DeadlockError(Exception):
    """The simulation cannot make progress (a model bug, surfaced loudly)."""


@dataclass
class SimResult:
    """Outcome of one simulated kernel execution."""

    kernel_name: str
    scheme: str
    cycles: float
    dynamic_instructions: int
    occupancy_blocks: int
    blocks: int
    fault_stats: Optional[FaultStats] = None
    sm_stats: List = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)
    #: the run's Telemetry hub when tracing was enabled, else None
    telemetry: Optional[object] = None

    @property
    def ipc(self) -> float:
        return self.dynamic_instructions / self.cycles if self.cycles else 0.0


class GpuSimulator:
    """Cycle-level simulation of one kernel launch."""

    def __init__(
        self,
        kernel: Kernel,
        trace: KernelTrace,
        address_space: AddressSpace,
        config: GPUConfig = None,
        scheme: PipelineScheme = None,
        interconnect: InterconnectConfig = NVLINK,
        paging: str = "premapped",
        local_handling: bool = False,
        block_switching: bool = False,
        ideal_switch: bool = False,
        frame_allocator: Optional[FrameAllocator] = None,
        frame_partitions=None,
        telemetry: Optional[Telemetry] = None,
        chaos=None,
        watchdog=None,
        sanitize: bool = False,
        reference_issue: bool = False,
    ) -> None:
        """``chaos`` (a :class:`repro.chaos.ChaosEngine`), ``watchdog``
        (a :class:`repro.chaos.Watchdog`) and ``sanitize`` enable the
        robustness layer of docs/ROBUSTNESS.md; all default off, leaving
        the simulator's timing bit-identical and its hot paths paying a
        single ``is not None`` check.  ``reference_issue`` selects the
        pre-overhaul full round-robin issue scan on every SM (the
        executable spec the fast path is pinned against; also via
        ``REPRO_REFERENCE_ISSUE=1``)."""
        from repro.chaos import InvariantSanitizer, chaos_active

        self.config = config if config is not None else GPUConfig()
        self.scheme = scheme if scheme is not None else BaselineStallOnFault()
        self.kernel = kernel
        self.trace = trace
        self.address_space = address_space
        self.paging = paging
        self.telemetry = _tel_active(telemetry)
        self.chaos = chaos_active(chaos)
        self.watchdog = watchdog
        self.sanitizer = InvariantSanitizer() if sanitize else None
        if self.chaos is not None:
            self.chaos.attach_telemetry(self.telemetry)
        cfg = self.config

        page_state = address_space.page_state
        frames = (
            frame_allocator
            if frame_allocator is not None
            else FrameAllocator(cfg.num_frames)
        )
        self.fault_ctl = FaultController(
            config=cfg,
            interconnect=interconnect,
            page_state=page_state,
            frame_allocator=frames,
            local_handling=local_handling,
            partitions=frame_partitions,
            telemetry=self.telemetry,
            chaos=self.chaos,
        )
        # Pre-mapping (driver-side) allocates from the CPU driver's slice.
        driver_frames = self.fault_ctl.cpu_frames
        if paging == "premapped":
            address_space.premap_all(driver_frames)
        elif paging == "demand":
            pass  # inputs migrate on fault; outputs/heap are first-touch
        elif paging == "demand-output":
            # Figure 14: only output (and heap) pages fault, on first touch.
            address_space.premap_kinds(
                driver_frames, ("input", "inout", "scratch")
            )
        elif paging == "demand-heap":
            # Figure 13: only device-heap pages fault, on first touch.
            address_space.premap_kinds(
                driver_frames, ("input", "inout", "scratch", "output")
            )
        else:
            raise ValueError(f"unknown paging mode {paging!r}")
        self.memsys = MemorySubsystem(
            cfg,
            translate_fn=self.fault_ctl.translate,
            telemetry=self.telemetry,
            chaos=self.chaos,
        )
        self.events = EventQueue()
        if self.sanitizer is not None:
            self.events.attach_sanitizer(self.sanitizer)
        self.tb_scheduler = ThreadBlockScheduler(trace)
        # Decode every static instruction once, up front: the issue loop
        # then only ever reads cached tuples (docs/PERFORMANCE.md).
        predecode_trace(trace)

        occupancy = cfg.blocks_per_sm(kernel, trace.block_dim)
        context_bytes = (
            kernel.regs_per_thread * 4 * trace.block_dim
            + kernel.smem_bytes_per_block
        )
        self.sms = [
            SmPipeline(
                sm_id=i,
                config=cfg,
                events=self.events,
                memsys=self.memsys,
                fault_ctl=self.fault_ctl,
                scheme=self.scheme,
                block_source=self.tb_scheduler,
                occupancy=occupancy,
                context_bytes_per_block=context_bytes,
                telemetry=self.telemetry,
                chaos=self.chaos,
                sanitizer=self.sanitizer,
                reference_issue=reference_issue,
            )
            for i in range(cfg.num_sms)
        ]
        self.blocks_remaining = len(trace.blocks)
        self.last_block_done = 0.0
        for sm in self.sms:
            sm.on_block_done = self._on_block_done

        if block_switching:
            if not self.scheme.preemptible:
                raise ValueError(
                    "block switching requires a preemptible-exception scheme"
                )
            from repro.core.local_scheduler import LocalScheduler

            for sm in self.sms:
                sm.local_scheduler = LocalScheduler(
                    sm=sm,
                    config=cfg,
                    events=self.events,
                    dram=self.memsys.dram,
                    ideal=ideal_switch,
                )

        if self.telemetry is not None:
            reg = self.telemetry.counters
            reg.gauge("gpu.events.processed", lambda: self.events.processed)
            reg.gauge("gpu.events.scheduled", lambda: self.events.scheduled)
            reg.gauge("gpu.events.peak_depth", lambda: self.events.peak)
            reg.gauge("gpu.events.coalesced", lambda: self.events.coalesced)
            reg.gauge(
                "gpu.blocks.remaining", lambda: self.blocks_remaining
            )
            self.telemetry.annotate(
                kernel=kernel.name,
                paging=paging,
                local_handling=local_handling,
                block_switching=block_switching,
                num_sms=cfg.num_sms,
                **self.scheme.telemetry_tags(),
            )

    # ------------------------------------------------------------------

    def _on_block_done(self, sm: SmPipeline, block, time: float) -> None:
        self.blocks_remaining -= 1
        self.last_block_done = max(self.last_block_done, time)
        if sm.local_scheduler is not None:
            sm.local_scheduler.on_slot_free(time)
        else:
            sm.refill_slot(time)

    # ------------------------------------------------------------------
    # watchdog support (repro.chaos, docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------

    def _progress(self):
        """The watchdog's forward-progress signature.  Deliberately *not*
        ``events.processed``: a self-rescheduling stuck event fires events
        forever without ever committing work, and must still count as a
        hang."""
        return (
            self.blocks_remaining,
            sum(sm.stats.committed for sm in self.sms),
        )

    def _hang_diagnostic(self, cycle: float):
        """Snapshot the stuck simulation for :class:`SimulationHang`."""
        from repro.chaos import HangDiagnostic

        warp_states = {}
        for sm in self.sms:
            warp_states[f"sm{sm.sm_id}"] = [
                {
                    "warp": w.slot,
                    "idx": w.idx,
                    "trace_len": len(w.trace),
                    "inflight": w.inflight,
                    "fetch_holds": w.fetch_holds,
                    "at_barrier": w.at_barrier,
                    "replays": len(w.replay_list),
                    "done": w.done,
                }
                for w in sm.warps
            ]
        tel = self.telemetry
        return HangDiagnostic(
            cycle=cycle,
            cycle_budget=self.watchdog.cycle_budget,
            blocks_remaining=self.blocks_remaining,
            committed=sum(sm.stats.committed for sm in self.sms),
            pending_fault_groups=self.fault_ctl.pending_groups(cycle),
            event_heap_depth=len(self.events),
            next_event_time=self.events.next_time,
            warp_states=warp_states,
            telemetry_summary=(
                tel.tracer.names() if tel is not None else {}
            ),
        )

    # ------------------------------------------------------------------

    def run(self, max_cycles: float = 2e9) -> SimResult:
        """Run the launch to completion; returns the results."""
        # Initial batch: breadth-first fill of every SM to occupancy.
        for _ in range(self.sms[0].occupancy):
            for sm in self.sms:
                if sm.free_slots > 0:
                    btrace = self.tb_scheduler.next_block(sm.sm_id)
                    if btrace is None:
                        break
                    sm.launch_block(btrace, 0.0)

        cycle = 0.0
        events = self.events
        times = events._times  # guard: skip the run_until call when idle
        sms = self.sms
        tel = self.telemetry
        next_sample = tel.sample_interval if tel is not None else math.inf
        wd = self.watchdog
        next_wd = math.inf
        if wd is not None:
            wd.reset()
            wd.observe(self._progress())  # baseline signature at cycle 0
            next_wd = wd.cycle_budget
        while self.blocks_remaining > 0:
            if cycle > max_cycles:
                raise DeadlockError(f"exceeded {max_cycles:g} cycles")
            if times and times[0] <= cycle:
                events.run_until(cycle)
                if self.blocks_remaining <= 0:
                    break
            awake = False
            for sm in sms:
                # A sleeping SM is re-scanned when its armed ready time is
                # due — the scalar that replaced pure wake-up heap events.
                if not sm.sleeping or sm.next_ready_cycle <= cycle:
                    sm.try_issue(cycle)
                    if not sm.sleeping:
                        awake = True
            if cycle >= next_sample:
                tel.sample(cycle)
                next_sample = cycle + tel.sample_interval
            if cycle >= next_wd:
                if not wd.observe(self._progress()):
                    from repro.chaos import SimulationHang

                    raise SimulationHang(self._hang_diagnostic(cycle))
                next_wd = cycle + wd.cycle_budget
            if awake:
                cycle += 1
            else:
                # Jump to whichever comes first: the next heap event or the
                # earliest armed SM ready time.
                nxt = events.next_time
                wake = math.inf
                for sm in sms:
                    t = sm.next_ready_cycle
                    if t < wake:
                        wake = t
                if nxt is None and wake == math.inf:
                    raise DeadlockError(
                        f"{self.blocks_remaining} blocks stuck with no events "
                        f"at cycle {cycle:g}"
                    )
                if nxt is None or wake < nxt:
                    nxt = wake
                cycle = max(cycle + 1, math.ceil(nxt))

        if self.sanitizer is not None:
            self.sanitizer.check_frames(self.address_space.page_state)
        if tel is not None:
            tel.sample(self.last_block_done)
            tel.tracer.emit_span(
                _ev.EV_KERNEL, 0.0, self.last_block_done, "gpu",
                {"kernel": self.kernel.name, "scheme": self.scheme.name},
            )
        return SimResult(
            kernel_name=self.kernel.name,
            scheme=self.scheme.name,
            cycles=self.last_block_done,
            dynamic_instructions=self.trace.dynamic_instructions(),
            occupancy_blocks=self.sms[0].occupancy,
            blocks=len(self.trace.blocks),
            fault_stats=self.fault_ctl.stats,
            sm_stats=[sm.stats for sm in self.sms],
            telemetry=tel,
        )
