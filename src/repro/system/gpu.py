"""Top-level GPU timing simulator.

Assembles the SMs, memory subsystem, MMU, fault controller and thread-block
scheduler, and runs the cycle/event loop.  One :class:`GpuSimulator` executes
one kernel launch (a :class:`~repro.functional.trace.KernelTrace`) under a
chosen pipeline scheme and paging mode and reports a :class:`SimResult`.

Paging modes
------------
``premapped``     every segment page GPU-mapped up front — no faults
                  (the Figure 10/11 pipeline-overhead experiments).
``demand``        segments start as declared by the address space (inputs
                  CPU-dirty, outputs untouched) — on-demand migration
                  (Figures 12-14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.schemes import BaselineStallOnFault, PipelineScheme
from repro.functional.trace import BlockTrace, KernelTrace
from repro.isa import Kernel
from repro.mem import MemorySubsystem
from repro.telemetry import Telemetry, active as _tel_active, ev as _ev
from repro.timing.decode import predecode_trace
from repro.timing.engine import EventQueue
from repro.timing.sm import SmPipeline
from repro.vm import AddressSpace, FrameAllocator

from .config import GPUConfig, InterconnectConfig, NVLINK
from .faults import FaultController, FaultStats
from .tb_scheduler import MultiKernelScheduler, ThreadBlockScheduler


class DeadlockError(Exception):
    """The simulation cannot make progress (a model bug, surfaced loudly)."""


@dataclass
class SimResult:
    """Outcome of one simulated kernel execution."""

    kernel_name: str
    scheme: str
    cycles: float
    dynamic_instructions: int
    occupancy_blocks: int
    blocks: int
    fault_stats: Optional[FaultStats] = None
    sm_stats: List = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)
    #: the run's Telemetry hub when tracing was enabled, else None
    telemetry: Optional[object] = None

    @property
    def ipc(self) -> float:
        return self.dynamic_instructions / self.cycles if self.cycles else 0.0


class _RunLoopMixin:
    """The cycle/event drive loop shared by :class:`GpuSimulator` and
    :class:`MultiKernelSimulator`.

    Both simulators expose the same drive-state surface —
    ``blocks_remaining``, ``sms``, ``events``, ``fault_ctl``, ``telemetry``,
    ``watchdog`` — so the loop lives here *once*: the multi-kernel path can
    never drift from the single-kernel timing the golden digests pin."""

    def _progress(self):
        """The watchdog's forward-progress signature.  Deliberately *not*
        ``events.processed``: a self-rescheduling stuck event fires events
        forever without ever committing work, and must still count as a
        hang."""
        return (
            self.blocks_remaining,
            sum(sm.stats.committed for sm in self.sms),
        )

    def _hang_diagnostic(self, cycle: float):
        """Snapshot the stuck simulation for :class:`SimulationHang`."""
        from repro.chaos import HangDiagnostic

        warp_states = {}
        for sm in self.sms:
            warp_states[f"sm{sm.sm_id}"] = [
                {
                    "warp": w.slot,
                    # which launch the stuck warp belongs to: in a
                    # multi-kernel run the diagnostic must name the
                    # offender, not just the SM (docs/CONCURRENCY.md)
                    "kernel": w.block.kernel_id,
                    "idx": w.idx,
                    "trace_len": len(w.trace),
                    "inflight": w.inflight,
                    "fetch_holds": w.fetch_holds,
                    "at_barrier": w.at_barrier,
                    "replays": len(w.replay_list),
                    "done": w.done,
                }
                for w in sm.warps
            ]
        tel = self.telemetry
        return HangDiagnostic(
            cycle=cycle,
            cycle_budget=self.watchdog.cycle_budget,
            blocks_remaining=self.blocks_remaining,
            committed=sum(sm.stats.committed for sm in self.sms),
            pending_fault_groups=self.fault_ctl.pending_groups(cycle),
            event_heap_depth=len(self.events),
            next_event_time=self.events.next_time,
            warp_states=warp_states,
            telemetry_summary=(
                tel.tracer.names() if tel is not None else {}
            ),
        )

    def _drive(self, max_cycles: float) -> None:
        """Advance the cycle/event loop until every block has retired."""
        cycle = 0.0
        events = self.events
        times = events._times  # guard: skip the run_until call when idle
        sms = self.sms
        tel = self.telemetry
        next_sample = tel.sample_interval if tel is not None else math.inf
        wd = self.watchdog
        next_wd = math.inf
        if wd is not None:
            wd.reset()
            wd.observe(self._progress())  # baseline signature at cycle 0
            next_wd = wd.cycle_budget
        while self.blocks_remaining > 0:
            if cycle > max_cycles:
                raise DeadlockError(f"exceeded {max_cycles:g} cycles")
            if times and times[0] <= cycle:
                events.run_until(cycle)
                if self.blocks_remaining <= 0:
                    break
            awake = False
            for sm in sms:
                # A sleeping SM is re-scanned when its armed ready time is
                # due — the scalar that replaced pure wake-up heap events.
                if not sm.sleeping or sm.next_ready_cycle <= cycle:
                    sm.try_issue(cycle)
                    if not sm.sleeping:
                        awake = True
            if cycle >= next_sample:
                tel.sample(cycle)
                next_sample = cycle + tel.sample_interval
            if cycle >= next_wd:
                if not wd.observe(self._progress()):
                    from repro.chaos import SimulationHang

                    raise SimulationHang(self._hang_diagnostic(cycle))
                next_wd = cycle + wd.cycle_budget
            if awake:
                cycle += 1
            else:
                # Jump to whichever comes first: the next heap event or the
                # earliest armed SM ready time.
                nxt = events.next_time
                wake = math.inf
                for sm in sms:
                    t = sm.next_ready_cycle
                    if t < wake:
                        wake = t
                if nxt is None and wake == math.inf:
                    raise DeadlockError(
                        f"{self.blocks_remaining} blocks stuck with no events "
                        f"at cycle {cycle:g}"
                    )
                if nxt is None or wake < nxt:
                    nxt = wake
                cycle = max(cycle + 1, math.ceil(nxt))


class GpuSimulator(_RunLoopMixin):
    """Cycle-level simulation of one kernel launch."""

    def __init__(
        self,
        kernel: Kernel,
        trace: KernelTrace,
        address_space: AddressSpace,
        config: GPUConfig = None,
        scheme: PipelineScheme = None,
        interconnect: InterconnectConfig = NVLINK,
        paging: str = "premapped",
        local_handling: bool = False,
        block_switching: bool = False,
        ideal_switch: bool = False,
        frame_allocator: Optional[FrameAllocator] = None,
        frame_partitions=None,
        telemetry: Optional[Telemetry] = None,
        chaos=None,
        watchdog=None,
        sanitize: bool = False,
        reference_issue: bool = False,
        schedule=None,
    ) -> None:
        """``chaos`` (a :class:`repro.chaos.ChaosEngine`), ``watchdog``
        (a :class:`repro.chaos.Watchdog`) and ``sanitize`` enable the
        robustness layer of docs/ROBUSTNESS.md; all default off, leaving
        the simulator's timing bit-identical and its hot paths paying a
        single ``is not None`` check.  ``reference_issue`` selects the
        pre-overhaul full round-robin issue scan on every SM (the
        executable spec the fast path is pinned against; also via
        ``REPRO_REFERENCE_ISSUE=1``).  ``schedule`` (a
        :class:`repro.mc.ScheduleControl`) makes the run's controlled
        nondeterminism points explorable decision sites
        (docs/MODELCHECK.md); ``None`` keeps every legacy policy."""
        from repro.chaos import InvariantSanitizer, chaos_active

        self.config = config if config is not None else GPUConfig()
        self.scheme = scheme if scheme is not None else BaselineStallOnFault()
        self.kernel = kernel
        self.trace = trace
        self.address_space = address_space
        self.paging = paging
        self.telemetry = _tel_active(telemetry)
        self.chaos = chaos_active(chaos)
        self.watchdog = watchdog
        self.schedule = schedule
        self.sanitizer = InvariantSanitizer() if sanitize else None
        if self.chaos is not None:
            self.chaos.attach_telemetry(self.telemetry)
            if schedule is not None:
                self.chaos.attach_schedule(schedule)
        cfg = self.config

        page_state = address_space.page_state
        frames = (
            frame_allocator
            if frame_allocator is not None
            else FrameAllocator(cfg.num_frames)
        )
        self.fault_ctl = FaultController(
            config=cfg,
            interconnect=interconnect,
            page_state=page_state,
            frame_allocator=frames,
            local_handling=local_handling,
            partitions=frame_partitions,
            telemetry=self.telemetry,
            chaos=self.chaos,
            schedule=schedule,
        )
        # Pre-mapping (driver-side) allocates from the CPU driver's slice.
        driver_frames = self.fault_ctl.cpu_frames
        if paging == "premapped":
            address_space.premap_all(driver_frames)
        elif paging == "demand":
            pass  # inputs migrate on fault; outputs/heap are first-touch
        elif paging == "demand-output":
            # Figure 14: only output (and heap) pages fault, on first touch.
            address_space.premap_kinds(
                driver_frames, ("input", "inout", "scratch")
            )
        elif paging == "demand-heap":
            # Figure 13: only device-heap pages fault, on first touch.
            address_space.premap_kinds(
                driver_frames, ("input", "inout", "scratch", "output")
            )
        else:
            raise ValueError(f"unknown paging mode {paging!r}")
        self.memsys = MemorySubsystem(
            cfg,
            translate_fn=self.fault_ctl.translate,
            telemetry=self.telemetry,
            chaos=self.chaos,
        )
        self.events = EventQueue()
        if self.sanitizer is not None:
            self.events.attach_sanitizer(self.sanitizer)
        self.tb_scheduler = ThreadBlockScheduler(trace)
        # Decode every static instruction once, up front: the issue loop
        # then only ever reads cached tuples (docs/PERFORMANCE.md).
        predecode_trace(trace)

        occupancy = cfg.blocks_per_sm(kernel, trace.block_dim)
        context_bytes = (
            kernel.regs_per_thread * 4 * trace.block_dim
            + kernel.smem_bytes_per_block
        )
        self.sms = [
            SmPipeline(
                sm_id=i,
                config=cfg,
                events=self.events,
                memsys=self.memsys,
                fault_ctl=self.fault_ctl,
                scheme=self.scheme,
                block_source=self.tb_scheduler,
                occupancy=occupancy,
                context_bytes_per_block=context_bytes,
                telemetry=self.telemetry,
                chaos=self.chaos,
                sanitizer=self.sanitizer,
                reference_issue=reference_issue,
            )
            for i in range(cfg.num_sms)
        ]
        self.blocks_remaining = len(trace.blocks)
        self.last_block_done = 0.0
        for sm in self.sms:
            sm.on_block_done = self._on_block_done

        if block_switching:
            if not self.scheme.preemptible:
                raise ValueError(
                    "block switching requires a preemptible-exception scheme"
                )
            from repro.core.local_scheduler import LocalScheduler

            for sm in self.sms:
                sm.local_scheduler = LocalScheduler(
                    sm=sm,
                    config=cfg,
                    events=self.events,
                    dram=self.memsys.dram,
                    ideal=ideal_switch,
                )

        if self.telemetry is not None:
            reg = self.telemetry.counters
            reg.gauge("gpu.events.processed", lambda: self.events.processed)
            reg.gauge("gpu.events.scheduled", lambda: self.events.scheduled)
            reg.gauge("gpu.events.peak_depth", lambda: self.events.peak)
            reg.gauge("gpu.events.coalesced", lambda: self.events.coalesced)
            reg.gauge(
                "gpu.blocks.remaining", lambda: self.blocks_remaining
            )
            self.telemetry.annotate(
                kernel=kernel.name,
                paging=paging,
                local_handling=local_handling,
                block_switching=block_switching,
                num_sms=cfg.num_sms,
                **self.scheme.telemetry_tags(),
            )

    # ------------------------------------------------------------------

    def _on_block_done(self, sm: SmPipeline, block, time: float) -> None:
        self.blocks_remaining -= 1
        self.last_block_done = max(self.last_block_done, time)
        if sm.local_scheduler is not None:
            sm.local_scheduler.on_slot_free(time)
        else:
            sm.refill_slot(time)

    # ------------------------------------------------------------------

    def run(self, max_cycles: float = 2e9) -> SimResult:
        """Run the launch to completion; returns the results."""
        # Initial batch: breadth-first fill of every SM to occupancy.
        for _ in range(self.sms[0].occupancy):
            for sm in self.sms:
                if sm.free_slots > 0:
                    btrace = self.tb_scheduler.next_block(sm.sm_id)
                    if btrace is None:
                        break
                    sm.launch_block(btrace, 0.0)

        self._drive(max_cycles)
        tel = self.telemetry

        if self.sanitizer is not None:
            self.sanitizer.check_frames(self.address_space.page_state)
        if tel is not None:
            tel.sample(self.last_block_done)
            tel.tracer.emit_span(
                _ev.EV_KERNEL, 0.0, self.last_block_done, "gpu",
                {"kernel": self.kernel.name, "scheme": self.scheme.name},
            )
        return SimResult(
            kernel_name=self.kernel.name,
            scheme=self.scheme.name,
            cycles=self.last_block_done,
            dynamic_instructions=self.trace.dynamic_instructions(),
            occupancy_blocks=self.sms[0].occupancy,
            blocks=len(self.trace.blocks),
            fault_stats=self.fault_ctl.stats,
            sm_stats=[sm.stats for sm in self.sms],
            telemetry=tel,
        )

# ----------------------------------------------------------------------
# multi-kernel (stream) simulation — docs/CONCURRENCY.md
# ----------------------------------------------------------------------


@dataclass
class StreamLaunch:
    """One enqueued kernel of a multi-stream run: the kernel, its
    functional trace, and the stream it was enqueued on."""

    kernel: Kernel
    trace: KernelTrace
    stream: int = 0


@dataclass
class StreamKernelResult:
    """Per-kernel outcome of a :class:`MultiKernelSimulator` run."""

    kernel_name: str
    kernel_id: int
    stream: int
    cycles: float  # completion cycle of the kernel's last block
    blocks: int
    dynamic_instructions: int
    faults_raised: int  # faulting accesses this kernel routed (pre-dedup)
    fault_groups: int  # 64KB fault groups this kernel enqueued first


@dataclass
class MultiKernelResult:
    """Outcome of one multi-kernel (stream-overlapped) simulation."""

    scheme: str
    cycles: float  # makespan: completion cycle of the last block overall
    kernels: List[StreamKernelResult] = field(default_factory=list)
    fault_stats: Optional[FaultStats] = None
    sm_stats: List = field(default_factory=list)
    #: blocks an SM pulled from a stream other than its home stream
    stolen_blocks: int = 0
    #: the run's Telemetry hub when tracing was enabled, else None
    telemetry: Optional[object] = None

    @property
    def dynamic_instructions(self) -> int:
        return sum(k.dynamic_instructions for k in self.kernels)

    @property
    def ipc(self) -> float:
        return self.dynamic_instructions / self.cycles if self.cycles else 0.0

    def stream_summary(self) -> Dict[int, Dict[str, float]]:
        """Per-stream aggregates: kernel launches, completion cycle (max
        over the stream's kernels), and faulting accesses raised."""
        out: Dict[int, Dict[str, float]] = {}
        for k in self.kernels:
            agg = out.setdefault(
                k.stream, {"launches": 0, "cycles": 0.0, "faults": 0}
            )
            agg["launches"] += 1
            agg["cycles"] = max(agg["cycles"], k.cycles)
            agg["faults"] += k.faults_raised
        return out


class MultiKernelSimulator(_RunLoopMixin):
    """Cycle-level simulation of several kernels resident concurrently.

    The launches share *one* GPU: one fault controller (so faults from
    different kernels contend on the global pending-fault queue and the
    interconnect), one memory subsystem, one event queue, and one SM array
    partitioned across streams by a :class:`MultiKernelScheduler`.  Kernels
    on the same stream run in enqueue order; kernels on different streams
    overlap.  With ``block_switching`` the use-case-1 local scheduler can
    swap a faulted block out and swap in a block from a *different* kernel
    — the scheduler's ``next_block`` is kernel-agnostic by construction.

    Determinism contract (docs/CONCURRENCY.md): the run is a pure function
    of the launch list (order included) and the configuration — two runs
    with the same inputs are bit-identical, and a run with a single stream
    and a single kernel is bit-identical to :class:`GpuSimulator` on the
    same trace (the drive loop is shared via :class:`_RunLoopMixin` and
    pinned by the golden-digest fixture).
    """

    def __init__(
        self,
        launches,
        address_space: AddressSpace,
        config: GPUConfig = None,
        scheme: PipelineScheme = None,
        interconnect: InterconnectConfig = NVLINK,
        paging: str = "demand",
        local_handling: bool = False,
        block_switching: bool = False,
        ideal_switch: bool = False,
        frame_allocator: Optional[FrameAllocator] = None,
        frame_partitions=None,
        telemetry: Optional[Telemetry] = None,
        chaos=None,
        watchdog=None,
        sanitize: bool = False,
        reference_issue: bool = False,
        policy: str = "partition",
        schedule=None,
    ) -> None:
        """``launches`` is a sequence of :class:`StreamLaunch` (or
        ``(kernel, trace, stream)`` tuples) sharing ``address_space``;
        ``policy`` picks the SM-to-stream assignment (``partition`` |
        ``interleave``), see :class:`MultiKernelScheduler`.  ``schedule``
        (a :class:`repro.mc.ScheduleControl`) makes the steal order,
        fault service order and chaos injection sites explorable decision
        points (docs/MODELCHECK.md); ``None`` keeps every legacy policy
        bit-identically."""
        from repro.chaos import InvariantSanitizer, chaos_active

        self.launches: List[StreamLaunch] = [
            sl if isinstance(sl, StreamLaunch) else StreamLaunch(*sl)
            for sl in launches
        ]
        if not self.launches:
            raise ValueError("at least one launch is required")
        self.config = config if config is not None else GPUConfig()
        self.scheme = scheme if scheme is not None else BaselineStallOnFault()
        self.address_space = address_space
        self.paging = paging
        self.telemetry = _tel_active(telemetry)
        self.chaos = chaos_active(chaos)
        self.watchdog = watchdog
        self.schedule = schedule
        self.sanitizer = InvariantSanitizer() if sanitize else None
        if self.chaos is not None:
            self.chaos.attach_telemetry(self.telemetry)
            if schedule is not None:
                self.chaos.attach_schedule(schedule)
        cfg = self.config

        page_state = address_space.page_state
        frames = (
            frame_allocator
            if frame_allocator is not None
            else FrameAllocator(cfg.num_frames)
        )
        self.fault_ctl = FaultController(
            config=cfg,
            interconnect=interconnect,
            page_state=page_state,
            frame_allocator=frames,
            local_handling=local_handling,
            partitions=frame_partitions,
            telemetry=self.telemetry,
            chaos=self.chaos,
            schedule=schedule,
        )
        driver_frames = self.fault_ctl.cpu_frames
        if paging == "premapped":
            address_space.premap_all(driver_frames)
        elif paging == "demand":
            pass  # inputs migrate on fault; outputs/heap are first-touch
        else:
            raise ValueError(
                f"multi-kernel runs support paging 'premapped' or 'demand', "
                f"not {paging!r}"
            )
        self.memsys = MemorySubsystem(
            cfg,
            translate_fn=self.fault_ctl.translate,
            telemetry=self.telemetry,
            chaos=self.chaos,
        )
        self.events = EventQueue()
        if self.sanitizer is not None:
            self.events.attach_sanitizer(self.sanitizer)

        # Streams keep their first-appearance order (enqueue order), so the
        # SM partitioning — and therefore timing — is a pure function of
        # the launch list.
        stream_ids: List[int] = []
        for sl in self.launches:
            if sl.stream not in stream_ids:
                stream_ids.append(sl.stream)
        self.stream_ids = stream_ids
        if len(stream_ids) > cfg.num_sms:
            raise ValueError(
                f"{len(stream_ids)} streams exceed {cfg.num_sms} SMs"
            )

        # Tag every block with its kernel id on shallow copies: the cached
        # workload traces must not be mutated across experiments.
        stream_kernels: List[List[int]] = [[] for _ in stream_ids]
        kernel_blocks: Dict[int, List[BlockTrace]] = {}
        self.kernel_context_bytes: Dict[int, int] = {}
        occupancy = None
        for kid, sl in enumerate(self.launches):
            predecode_trace(sl.trace)
            stream_kernels[stream_ids.index(sl.stream)].append(kid)
            kernel_blocks[kid] = [
                BlockTrace(block_id=b.block_id, warps=b.warps, kernel_id=kid)
                for b in sl.trace.blocks
            ]
            self.kernel_context_bytes[kid] = (
                sl.kernel.regs_per_thread * 4 * sl.trace.block_dim
                + sl.kernel.smem_bytes_per_block
            )
            occ = cfg.blocks_per_sm(sl.kernel, sl.trace.block_dim)
            occupancy = occ if occupancy is None else min(occupancy, occ)

        self.tb_scheduler = MultiKernelScheduler(
            stream_kernels, kernel_blocks, cfg.num_sms, policy=policy,
            schedule=schedule,
        )
        self.sms = [
            SmPipeline(
                sm_id=i,
                config=cfg,
                events=self.events,
                memsys=self.memsys,
                fault_ctl=self.fault_ctl,
                scheme=self.scheme,
                block_source=self.tb_scheduler,
                occupancy=occupancy,
                context_bytes_per_block=self.kernel_context_bytes[0],
                telemetry=self.telemetry,
                chaos=self.chaos,
                sanitizer=self.sanitizer,
                reference_issue=reference_issue,
            )
            for i in range(cfg.num_sms)
        ]
        for sm in self.sms:
            sm.kernel_context_bytes = self.kernel_context_bytes
            sm.on_block_done = self._on_block_done
        self.blocks_remaining = self.tb_scheduler.total_blocks
        self.last_block_done = 0.0
        self.kernel_remaining: Dict[int, int] = {
            kid: len(blocks) for kid, blocks in kernel_blocks.items()
        }
        self.kernel_last_done: Dict[int, float] = {
            kid: 0.0 for kid in kernel_blocks
        }

        if block_switching:
            if not self.scheme.preemptible:
                raise ValueError(
                    "block switching requires a preemptible-exception scheme"
                )
            from repro.core.local_scheduler import LocalScheduler

            for sm in self.sms:
                sm.local_scheduler = LocalScheduler(
                    sm=sm,
                    config=cfg,
                    events=self.events,
                    dram=self.memsys.dram,
                    ideal=ideal_switch,
                )

        if self.telemetry is not None:
            reg = self.telemetry.counters
            reg.gauge("gpu.events.processed", lambda: self.events.processed)
            reg.gauge("gpu.events.scheduled", lambda: self.events.scheduled)
            reg.gauge("gpu.events.peak_depth", lambda: self.events.peak)
            reg.gauge("gpu.events.coalesced", lambda: self.events.coalesced)
            reg.gauge("gpu.blocks.remaining", lambda: self.blocks_remaining)
            reg.gauge(
                "gpu.streams.stolen_blocks",
                lambda: self.tb_scheduler.stolen,
            )
            for sid in stream_ids:
                kids = [
                    kid for kid, sl in enumerate(self.launches)
                    if sl.stream == sid
                ]
                prefix = f"gpu.stream[{sid}]"
                reg.gauge(f"{prefix}.launches", lambda n=len(kids): n)
                reg.gauge(
                    f"{prefix}.faults",
                    lambda ks=tuple(kids): sum(
                        self.fault_ctl.kernel_faults.get(k, 0) for k in ks
                    ),
                )
                reg.gauge(
                    f"{prefix}.cycles",
                    lambda ks=tuple(kids): max(
                        self.kernel_last_done[k] for k in ks
                    ),
                )
            self.telemetry.annotate(
                kernels=[sl.kernel.name for sl in self.launches],
                streams=len(stream_ids),
                policy=policy,
                paging=paging,
                local_handling=local_handling,
                block_switching=block_switching,
                num_sms=cfg.num_sms,
                **self.scheme.telemetry_tags(),
            )

    # ------------------------------------------------------------------

    def _refill_all(self, time: float) -> None:
        """Offer freed/unblocked work to every SM in sm-id order.  Needed
        when a kernel completes: its stream's successor just became
        eligible, and SMs other than the one that retired the final block
        may be sitting idle with free slots."""
        for sm in self.sms:
            if sm.free_slots > 0:
                if sm.local_scheduler is not None:
                    sm.local_scheduler.on_slot_free(time)
                else:
                    sm.refill_slot(time)

    def _on_block_done(self, sm: SmPipeline, block, time: float) -> None:
        self.blocks_remaining -= 1
        self.last_block_done = max(self.last_block_done, time)
        kid = block.kernel_id
        self.kernel_remaining[kid] -= 1
        self.kernel_last_done[kid] = max(self.kernel_last_done[kid], time)
        if self.kernel_remaining[kid] == 0:
            self.tb_scheduler.on_kernel_complete(kid)
            self._refill_all(time)
        elif sm.local_scheduler is not None:
            sm.local_scheduler.on_slot_free(time)
        else:
            sm.refill_slot(time)

    # ------------------------------------------------------------------

    def run(self, max_cycles: float = 2e9) -> MultiKernelResult:
        """Run every launch to completion; returns the merged results."""
        # Initial batch: breadth-first fill of every SM to occupancy —
        # identical in shape to GpuSimulator.run so a single-kernel run
        # through this path launches blocks in the same order.
        for _ in range(self.sms[0].occupancy):
            for sm in self.sms:
                if sm.free_slots > 0:
                    btrace = self.tb_scheduler.next_block(sm.sm_id)
                    if btrace is None:
                        break
                    sm.launch_block(btrace, 0.0)

        self._drive(max_cycles)
        tel = self.telemetry

        if self.sanitizer is not None:
            self.sanitizer.check_frames(self.address_space.page_state)
        if tel is not None:
            tel.sample(self.last_block_done)
            for kid, sl in enumerate(self.launches):
                tel.tracer.emit_span(
                    _ev.EV_KERNEL, 0.0, self.kernel_last_done[kid], "gpu",
                    {"kernel": sl.kernel.name, "kernel_id": kid,
                     "stream": sl.stream, "scheme": self.scheme.name},
                )
        kernels = [
            StreamKernelResult(
                kernel_name=sl.kernel.name,
                kernel_id=kid,
                stream=sl.stream,
                cycles=self.kernel_last_done[kid],
                blocks=len(sl.trace.blocks),
                dynamic_instructions=sl.trace.dynamic_instructions(),
                faults_raised=self.fault_ctl.kernel_faults.get(kid, 0),
                fault_groups=self.fault_ctl.kernel_groups.get(kid, 0),
            )
            for kid, sl in enumerate(self.launches)
        ]
        return MultiKernelResult(
            scheme=self.scheme.name,
            cycles=self.last_block_done,
            kernels=kernels,
            fault_stats=self.fault_ctl.stats,
            sm_stats=[sm.stats for sm in self.sms],
            stolen_blocks=self.tb_scheduler.stolen,
            telemetry=tel,
        )
