"""GPU system configuration (paper Table 1) and interconnect presets.

All times are in GPU core cycles.  The SM runs at 1 GHz, so one cycle is one
nanosecond and ``US`` converts the paper's microsecond constants (fault
round-trip costs, handler latencies) to cycles directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

#: cycles per microsecond at the 1 GHz SM clock of Table 1
US = 1000.0


@dataclass(frozen=True)
class InterconnectConfig:
    """CPU<->GPU link + CPU fault-handler cost model.

    The paper measures the principal components of the fault round trip
    (page pinning, physical allocation, the transfer) and combines them with
    link latencies into two per-fault costs (Section 5.3): one for faults
    needing a data transfer (``migrate_cost``) and one for allocation-only
    faults (``alloc_cost``).  We decompose each unloaded cost into:

      alloc_cost   = signal_latency + cpu_service
      migrate_cost = signal_latency + cpu_service + transfer_time

    where ``cpu_service`` serializes at the (single) CPU handler and
    ``transfer_time`` serializes on the link — the two contended resources
    that make concurrent GPU faults queue up.
    """

    name: str
    migrate_cost: float  # unloaded round trip incl. 64KB transfer (cycles)
    alloc_cost: float  # unloaded round trip, no transfer (cycles)
    cpu_service: float  # serialized CPU handler occupancy per fault (cycles)
    #: link occupancy of the fault request/response messages + page-pinning
    #: traffic (every CPU-handled fault pays it; part of the measured
    #: unloaded cost, not added on top)
    msg_occupancy: float = 0.5 * 1000.0

    @property
    def signal_latency(self) -> float:
        return self.alloc_cost - self.cpu_service - self.msg_occupancy

    @property
    def transfer_time(self) -> float:
        """Link occupancy of one 64KB fault-granule transfer."""
        return self.migrate_cost - self.alloc_cost

    def scaled(self, time_scale: float) -> "InterconnectConfig":
        """Divide every measured cost by ``time_scale``.

        Our datasets are scaled down from the Parboil defaults to keep
        Python simulation tractable; scaling the microsecond-range fault
        constants by the same factor preserves the dimensionless ratios the
        results depend on (fault-handling time vs. kernel time, queue
        depths, link occupancy).  The substitution is recorded per
        experiment in EXPERIMENTS.md.
        """
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        return InterconnectConfig(
            name=self.name,
            migrate_cost=self.migrate_cost / time_scale,
            alloc_cost=self.alloc_cost / time_scale,
            cpu_service=self.cpu_service / time_scale,
            msg_occupancy=self.msg_occupancy / time_scale,
        )


#: Paper Section 5.3: 12us/10us for NVLink; 25us/12us for PCIe 3.0.  The
#: per-fault message/pinning link occupancy is larger on PCIe (higher
#: per-transaction cost), which is why the paper sees local fault handling
#: help PCIe more: "the higher fault cost ... leads to higher contention of
#: the system interconnect".
NVLINK = InterconnectConfig(
    name="nvlink", migrate_cost=12 * US, alloc_cost=10 * US,
    cpu_service=2 * US, msg_occupancy=1 * US,
)
PCIE = InterconnectConfig(
    name="pcie", migrate_cost=25 * US, alloc_cost=12 * US,
    cpu_service=2 * US, msg_occupancy=2 * US,
)

INTERCONNECTS: Dict[str, InterconnectConfig] = {"nvlink": NVLINK, "pcie": PCIE}


@dataclass(frozen=True)
class GPUConfig:
    """The baseline GPU of Table 1 (NVIDIA Kepler K20-like, 16 SMs)."""

    # SM
    frequency_ghz: float = 1.0
    max_tbs_per_sm: int = 16
    max_warps_per_sm: int = 64
    register_file_bytes: int = 256 * 1024
    shared_mem_bytes: int = 32 * 1024
    issue_width: int = 2  # 2 instructions total from 1 or 2 warps
    num_math_units: int = 2
    num_sfu_units: int = 1
    num_ldst_units: int = 1
    num_branch_units: int = 1
    operand_read_latency: int = 2

    # L1 (per SM)
    l1_size: int = 32 * 1024
    l1_assoc: int = 4
    line_size: int = 128
    l1_mshrs: int = 32
    l1_latency: int = 40
    l1_tlb_entries: int = 32
    l1_tlb_assoc: int = 8

    # System
    num_sms: int = 16
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    l2_latency: int = 70
    l2_mshrs: int = 512
    l2_tlb_entries: int = 1024
    l2_tlb_assoc: int = 8
    l2_tlb_latency: int = 70
    l2_tlb_mshrs: int = 128
    num_walkers: int = 64
    walk_latency: int = 500
    dram_bandwidth_gbps: float = 256.0
    dram_latency: int = 200
    gpu_memory_bytes: int = 256 * 1024 * 1024

    # Fault handling (Sections 5.3 / 5.4)
    gpu_handler_latency: float = 20 * US  # measured prototype GPU handler
    gpu_handler_serial: float = 0.5 * US  # per-SM serialized allocator section
    #: outstanding faulted memory instructions an SM's LD/ST pipeline can
    #: park (stall-on-fault keeps them "in the middle of the pipeline", so
    #: a handful of unresolved faults clogs the SM's entire memory path —
    #: the paper's core motivation for preemptible faults)
    pending_fault_limit: int = 16
    block_switch_threshold: int = 2  # min fault-queue position to switch
    max_extra_blocks: int = 4  # extra blocks a local scheduler may fetch
    context_switch_fixed: float = 200.0  # fixed save/restore overhead, cycles
    #: time-scale divisor applied by :meth:`time_scaled` — recorded so that
    #: latency-class costs tied to physical sizes (context save/restore
    #: traffic) are scaled consistently with the fault-cost constants
    time_scale: float = 1.0

    @property
    def dram_bandwidth_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth_gbps / self.frequency_ghz

    @property
    def num_frames(self) -> int:
        return self.gpu_memory_bytes // 4096

    def with_(self, **kwargs) -> "GPUConfig":
        """Return a modified copy (e.g. ``config.with_(num_sms=8)``)."""
        return replace(self, **kwargs)

    def time_scaled(self, time_scale: float) -> "GPUConfig":
        """Scale the microsecond-range handler constants (see
        :meth:`InterconnectConfig.scaled`)."""
        return replace(
            self,
            gpu_handler_latency=self.gpu_handler_latency / time_scale,
            gpu_handler_serial=self.gpu_handler_serial / time_scale,
            context_switch_fixed=self.context_switch_fixed / time_scale,
            time_scale=time_scale,
        )

    def blocks_per_sm(self, kernel, block_dim: int) -> int:
        """SM occupancy in thread blocks for ``kernel`` at ``block_dim``.

        Limited by the thread-block slots, warp slots, register file and
        shared memory — the quantity that makes *lbm*-like kernels run at
        low occupancy and therefore depend on ILP.
        """
        warps_per_block = (block_dim + 31) // 32
        regs_bytes = kernel.regs_per_thread * 4 * block_dim
        limits = [
            self.max_tbs_per_sm,
            self.max_warps_per_sm // warps_per_block,
            self.register_file_bytes // regs_bytes,
        ]
        if kernel.smem_bytes_per_block:
            limits.append(self.shared_mem_bytes // kernel.smem_bytes_per_block)
        occupancy = min(limits)
        if occupancy < 1:
            raise ValueError(
                f"kernel {kernel.name!r} does not fit on an SM "
                f"(regs {kernel.regs_per_thread}, block {block_dim})"
            )
        return occupancy

    def table1(self) -> Dict[str, str]:
        """Render the configuration as the rows of Table 1."""
        return {
            "Frequency": f"{self.frequency_ghz:g}GHz",
            "Max TBs": str(self.max_tbs_per_sm),
            "Max Warps": str(self.max_warps_per_sm),
            "Register File": f"{self.register_file_bytes // 1024}KB",
            "Shared memory": f"{self.shared_mem_bytes // 1024}KB",
            "Issue ways": f"{self.issue_width} instructions total from 1 or 2 warps",
            "Backend units": (
                f"{self.num_math_units} math, {self.num_sfu_units} special func, "
                f"{self.num_ldst_units} ld/st, {self.num_branch_units} branch"
            ),
            "L1 cache": (
                f"{self.l1_size // 1024}KB / {self.l1_assoc}-way LRU / "
                f"{self.line_size}B line, {self.l1_mshrs} MSHRs / "
                f"{self.l1_latency} clk latency / virtual"
            ),
            "L1 TLB": f"{self.l1_tlb_entries} entries / {self.l1_tlb_assoc}-way LRU",
            "Number of SMs": str(self.num_sms),
            "L2 cache": (
                f"{self.l2_size // 1024 // 1024}MB / {self.l2_assoc}-way LRU / "
                f"{self.line_size}B line, {self.l2_latency} clk latency / "
                f"{self.l2_mshrs} MSHRs"
            ),
            "L2 TLB": (
                f"{self.l2_tlb_entries} entries / {self.l2_tlb_assoc}-way LRU, "
                f"{self.l2_tlb_mshrs} MSHRs / {self.l2_tlb_latency} clk latency"
            ),
            "Number of PT walkers": str(self.num_walkers),
            "Walking latency": f"{self.walk_latency} clk",
            "DRAM bandwidth": f"{self.dram_bandwidth_gbps:g} GB/s",
            "DRAM latency": f"{self.dram_latency} clk",
        }


DEFAULT_CONFIG = GPUConfig()
