"""Global thread-block scheduler (the host interface's TB dispatcher).

The kernel launch is partitioned into independent thread blocks; an initial
batch fills every SM to its occupancy and pending blocks are handed out as
running blocks finish (paper Sections 2.1 and 4.1).  Blocks are dispatched in
block-id order, which reproduces the distribution sensitivity the paper
observed for *mri-gridding*.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.functional.trace import BlockTrace, KernelTrace


class ThreadBlockScheduler:
    """FIFO over the launch's pending thread blocks."""

    def __init__(self, trace: KernelTrace) -> None:
        self._pending: Deque[BlockTrace] = deque(trace.blocks)
        self.total_blocks = len(trace.blocks)
        self.dispatched = 0

    @property
    def pending(self) -> int:
        return len(self._pending)

    def next_block(self, sm_id: int) -> Optional[BlockTrace]:
        """Hand the next pending block to ``sm_id`` (None when drained)."""
        if not self._pending:
            return None
        self.dispatched += 1
        return self._pending.popleft()


class MultiKernelScheduler:
    """Thread-block dispatcher for several concurrently resident kernels.

    Kernels arrive grouped by *stream* (``stream_kernels[s]`` is stream
    ``s``'s ordered list of kernel ids); within a stream kernels execute in
    enqueue order (a kernel only becomes dispatchable when its predecessor
    on the same stream has retired every block), across streams they run
    concurrently.  SMs are assigned a *home stream*:

    ``partition``
        contiguous slices — SM ``j`` of ``N`` belongs to stream
        ``j * S // N`` (the CUDA-MPS-like spatial split);
    ``interleave``
        round-robin — SM ``j`` belongs to stream ``j % S``.

    ``next_block`` prefers the home stream's current kernel and falls back
    to *stealing* from other streams' eligible kernels in stream order, so
    no SM idles while any stream still has work — the work-conserving
    policy docs/CONCURRENCY.md documents.  The interface matches
    :class:`ThreadBlockScheduler` (``next_block`` / ``pending`` /
    ``dispatched``), so :class:`repro.timing.sm.SmPipeline` and the
    use-case-1 local scheduler consume either transparently.
    """

    def __init__(
        self,
        stream_kernels: Sequence[Sequence[int]],
        kernel_blocks: Dict[int, List[BlockTrace]],
        num_sms: int,
        policy: str = "partition",
        schedule=None,
    ) -> None:
        """``stream_kernels[s]`` lists stream ``s``'s kernel ids in enqueue
        order; ``kernel_blocks`` maps each kernel id to its (kernel-tagged)
        block traces.  ``schedule`` (a :class:`repro.mc.ScheduleControl`)
        turns the cross-stream steal order into an explorable decision
        point; ``None`` keeps the fixed home-then-stream-order policy on
        its legacy path, bit-identically."""
        if policy not in ("partition", "interleave"):
            raise ValueError(f"unknown SM assignment policy {policy!r}")
        self.policy = policy
        self.schedule = schedule
        self.num_sms = num_sms
        self._streams: List[List[int]] = [list(ks) for ks in stream_kernels]
        self._cursor: List[int] = [0] * len(self._streams)
        self._pending: Dict[int, Deque[BlockTrace]] = {
            kid: deque(blocks) for kid, blocks in kernel_blocks.items()
        }
        self.total_blocks = sum(len(b) for b in kernel_blocks.values())
        self.dispatched = 0
        #: blocks dispatched to an SM outside their stream's home slice
        self.stolen = 0

    # ------------------------------------------------------------------

    def home_stream(self, sm_id: int) -> int:
        """The stream whose kernels SM ``sm_id`` prefers to run."""
        nstreams = len(self._streams)
        if self.policy == "interleave":
            return sm_id % nstreams
        return sm_id * nstreams // self.num_sms

    def eligible_kernel(self, stream: int) -> Optional[int]:
        """The stream's currently dispatchable kernel id (its oldest
        not-yet-completed enqueued kernel), or None when drained."""
        cursor = self._cursor[stream]
        kernels = self._streams[stream]
        return kernels[cursor] if cursor < len(kernels) else None

    def on_kernel_complete(self, kernel_id: int) -> None:
        """Advance the owning stream's cursor: its next enqueued kernel
        (if any) becomes dispatchable."""
        for stream, kernels in enumerate(self._streams):
            cursor = self._cursor[stream]
            if cursor < len(kernels) and kernels[cursor] == kernel_id:
                self._cursor[stream] = cursor + 1
                return

    # ------------------------------------------------------------------
    # ThreadBlockScheduler-compatible surface
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Pending blocks across every currently dispatchable kernel
        (blocks of not-yet-eligible successors are invisible, so the local
        scheduler never switches a block out for work it cannot fetch)."""
        total = 0
        for stream in range(len(self._streams)):
            kid = self.eligible_kernel(stream)
            if kid is not None:
                total += len(self._pending[kid])
        return total

    def next_block(self, sm_id: int) -> Optional[BlockTrace]:
        """Hand ``sm_id`` the next block: home stream first, then steal
        from the other streams in stream order (None when all drained).

        With a schedule control attached, a dispatch with more than one
        candidate stream becomes a ``sched.steal`` decision point keyed
        on the SM (docs/MODELCHECK.md); choice 0 is the legacy
        home-then-stream-order pick, so the all-default trace is
        bit-identical to the detached path."""
        home = self.home_stream(sm_id)
        order = [home] + [
            s for s in range(len(self._streams)) if s != home
        ]
        if self.schedule is not None:
            candidates = []
            for stream in order:
                kid = self.eligible_kernel(stream)
                if kid is not None and self._pending[kid]:
                    candidates.append(stream)
            if not candidates:
                return None
            pick = self.schedule.choose(
                "sched.steal", ("sm", sm_id), len(candidates)
            )
            stream = candidates[pick]
            self.dispatched += 1
            if stream != home:
                self.stolen += 1
            return self._pending[self.eligible_kernel(stream)].popleft()
        for stream in order:
            kid = self.eligible_kernel(stream)
            if kid is None:
                continue
            queue = self._pending[kid]
            if queue:
                self.dispatched += 1
                if stream != home:
                    self.stolen += 1
                return queue.popleft()
        return None

    def pending_for(self, kernel_id: int) -> int:
        """Blocks of ``kernel_id`` not yet dispatched (observability)."""
        return len(self._pending[kernel_id])
