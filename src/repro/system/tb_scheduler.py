"""Global thread-block scheduler (the host interface's TB dispatcher).

The kernel launch is partitioned into independent thread blocks; an initial
batch fills every SM to its occupancy and pending blocks are handed out as
running blocks finish (paper Sections 2.1 and 4.1).  Blocks are dispatched in
block-id order, which reproduces the distribution sensitivity the paper
observed for *mri-gridding*.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.functional.trace import BlockTrace, KernelTrace


class ThreadBlockScheduler:
    """FIFO over the launch's pending thread blocks."""

    def __init__(self, trace: KernelTrace) -> None:
        self._pending: Deque[BlockTrace] = deque(trace.blocks)
        self.total_blocks = len(trace.blocks)
        self.dispatched = 0

    @property
    def pending(self) -> int:
        return len(self._pending)

    def next_block(self, sm_id: int) -> Optional[BlockTrace]:
        """Hand the next pending block to ``sm_id`` (None when drained)."""
        if not self._pending:
            return None
        self.dispatched += 1
        return self._pending.popleft()
