"""Fault routing and resolution: the fill unit's pending-fault queue, the
CPU driver path (interconnect + serializing CPU handler), and the GPU-local
handler of use case 2.

All faults are deduplicated at the 64KB handling granularity (16 pages per
group, Section 5.1): the first faulting access to a group enqueues one
resolution; later faulting accesses to the same group join it.  The queue
*position* returned on enqueue is what the use-case-1 local scheduler
compares to its switching threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.events import (
    EV_FAULT_JOIN,
    EV_FAULT_RAISE,
    EV_FAULT_RESOLVE,
)
from repro.vm import (
    FAULT_GRANULARITY_PAGES,
    FaultClass,
    FrameAllocator,
    SystemPageState,
    pages_in_group,
)

from .config import GPUConfig, InterconnectConfig


class InvalidAccessError(Exception):
    """A GPU access touched an address outside every segment: the handler
    would request a kernel abort (Section 4.2)."""


@dataclass
class FaultOutcome:
    """What the SM learns about a fault it raised."""

    group: int
    resolved_time: float
    position: int
    fault_class: FaultClass
    handled_locally: bool


@dataclass
class FaultStats:
    faults_raised: int = 0  # faulting accesses routed here (pre-dedup)
    joined_pending: int = 0  # accesses that joined an in-flight resolution
    groups_resolved: int = 0
    migrations: int = 0
    alloc_only: int = 0
    first_touch: int = 0
    handled_locally: int = 0
    handled_by_cpu: int = 0
    link_busy: float = 0.0
    cpu_busy: float = 0.0


class FaultController:
    """Classifies, deduplicates, routes and times page-fault resolution."""

    def __init__(
        self,
        config: GPUConfig,
        interconnect: InterconnectConfig,
        page_state: SystemPageState,
        frame_allocator: FrameAllocator,
        local_handling: bool = False,
        partitions: Optional[List[FrameAllocator]] = None,
        telemetry=None,
        chaos=None,
        schedule=None,
    ) -> None:
        """``partitions`` lets a caller that persists physical memory across
        launches (the runtime facade) supply an existing CPU+per-SM split of
        the frame pool instead of partitioning the (then non-empty) pool.
        ``schedule`` (a :class:`repro.mc.ScheduleControl`) turns the
        pending-queue service order into an explorable decision point;
        ``None`` keeps the FIFO arrival order, bit-identically."""
        self.config = config
        self.interconnect = interconnect
        self.page_state = page_state
        self.local_handling = local_handling
        self.schedule = schedule
        self.stats = FaultStats()
        # Per-kernel tallies for multi-stream runs (docs/CONCURRENCY.md).
        # Kept out of FaultStats: the golden-digest fixture hashes that
        # dataclass, and single-kernel runs must stay bit-identical.
        self.kernel_faults: Dict[int, int] = {}
        self.kernel_groups: Dict[int, int] = {}
        # group -> resolution time (includes already-resolved groups)
        self._group_resolved: Dict[int, float] = {}
        # subset still unresolved at the last _position() query (lazily pruned)
        self._unresolved: Dict[int, float] = {}
        self._cpu_next_free = 0.0
        self._link_next_free = 0.0
        self._sm_handler_next_free = [0.0] * config.num_sms
        if partitions is not None:
            self._cpu_frames = partitions[0]
            self._sm_frames = partitions[1:]
        elif local_handling:
            # Partition the physical space: CPU driver keeps one slice, each
            # SM's local handler gets its own (Section 4.2).
            parts = frame_allocator.partition(config.num_sms + 1)
            self._cpu_frames = parts[0]
            self._sm_frames = parts[1:]
        else:
            self._cpu_frames = frame_allocator
            self._sm_frames = []
        from repro.chaos import chaos_active
        from repro.telemetry import active

        # Injection hooks (docs/ROBUSTNESS.md): ``None`` when chaos is
        # disabled, so the resolution paths are bit-identical without it.
        self.chaos = chaos_active(chaos)
        self.tel = active(telemetry)
        if self.tel is not None:
            reg = self.tel.counters
            reg.bind_stats("gpu.fault", self.stats)
            reg.gauge(
                "gpu.fault.pending_queue_depth",
                lambda: len(self._unresolved),
            )

    @property
    def cpu_frames(self) -> FrameAllocator:
        """The CPU driver's slice of the physical frame pool."""
        return self._cpu_frames

    # ------------------------------------------------------------------
    # time-aware page-table view used by the MMU's walkers
    # ------------------------------------------------------------------

    def translate(self, vpn: int, time: float) -> Optional[int]:
        ppn = self.page_state.gpu_translate(vpn)
        if ppn is None:
            return None
        resolved = self._group_resolved.get(vpn // FAULT_GRANULARITY_PAGES)
        if resolved is not None and resolved > time:
            return None  # mapping installed by a resolution still in flight
        return ppn

    # ------------------------------------------------------------------
    # fault entry point (called by the SM's global-memory path)
    # ------------------------------------------------------------------

    def on_fault(
        self, vpn: int, detect_time: float, sm_id: int, kernel_id: int = 0
    ) -> FaultOutcome:
        """Route one faulting access: classify, deduplicate at the 64KB
        group granularity, time its resolution (CPU driver path or GPU-local
        handler) and report the outcome back to the SM.  ``kernel_id`` tags
        the fault with the raising launch so multi-stream runs can attribute
        queue contention per stream (single-kernel runs leave it at 0)."""
        self.stats.faults_raised += 1
        self.kernel_faults[kernel_id] = (
            self.kernel_faults.get(kernel_id, 0) + 1
        )
        group = vpn // FAULT_GRANULARITY_PAGES
        tel = self.tel
        if tel is not None:
            tel.tracer.emit(
                EV_FAULT_RAISE, detect_time, "faults",
                {"vpn": vpn, "group": group, "sm": sm_id,
                 "kernel": kernel_id},
            )
        pending = self._group_resolved.get(group)
        if pending is not None and pending > detect_time:
            # Already being resolved: join the pending fault.
            self.stats.joined_pending += 1
            if tel is not None:
                tel.tracer.emit(
                    EV_FAULT_JOIN, detect_time, "faults",
                    {"vpn": vpn, "group": group, "sm": sm_id,
                     "kernel": kernel_id, "resolved_time": pending},
                )
            return FaultOutcome(
                group=group,
                resolved_time=pending,
                position=self._position(detect_time),
                fault_class=FaultClass.ALLOC_ONLY,
                handled_locally=False,
            )

        fault_class = self.page_state.classify_fault(vpn)
        if fault_class is FaultClass.INVALID:
            raise InvalidAccessError(
                f"SM{sm_id}: access to unmapped address page {vpn:#x}"
            )

        chaos = self.chaos
        if chaos is not None:
            # Burst fault storm: phantom faults enqueued just ahead of this
            # one occupy the link and the CPU handler (timing only — no
            # pages are installed for them).
            burst = chaos.fault_storm(detect_time)
            if burst:
                ic = self.interconnect
                link_from = max(self._link_next_free, detect_time)
                self._link_next_free = link_from + burst * ic.msg_occupancy
                cpu_from = max(self._cpu_next_free, detect_time)
                self._cpu_next_free = cpu_from + burst * ic.cpu_service
                self.stats.link_busy += burst * ic.msg_occupancy
                self.stats.cpu_busy += burst * ic.cpu_service

        position = self._position(detect_time)
        local = self.local_handling and fault_class is FaultClass.FIRST_TOUCH
        if local:
            resolved = self._resolve_local(detect_time, sm_id)
            self.stats.handled_locally += 1
            frames = self._sm_frames[sm_id]
        else:
            enter = detect_time
            if self.schedule is not None and position > 0:
                # Explorable service order (docs/MODELCHECK.md): the fill
                # unit may service this group after 0..min(position, 3)
                # of the groups already pending, each slot one CPU
                # service quantum.  Choice 0 is arrival order (FIFO) —
                # the legacy policy, bit-identical when chosen.
                slot = self.schedule.choose(
                    "fault.service_order",
                    ("group", group),
                    min(position, 3) + 1,
                    detect_time,
                )
                enter += slot * self.interconnect.cpu_service
            resolved = self._resolve_cpu(enter, fault_class)
            self.stats.handled_by_cpu += 1
            frames = self._cpu_frames
        if chaos is not None:
            # Delayed resolution completion: the signal arrives late.
            resolved += chaos.resolve_delay(detect_time)

        if fault_class is FaultClass.MIGRATE:
            self.stats.migrations += 1
        elif fault_class is FaultClass.ALLOC_ONLY:
            self.stats.alloc_only += 1
        else:
            self.stats.first_touch += 1

        # Install the whole 64KB granule (valid pages only).
        for page in pages_in_group(group):
            if self.page_state.is_valid(page) and (
                self.page_state.gpu_translate(page) is None
            ):
                self.page_state.install_gpu_page(page, frames.allocate())
        self._group_resolved[group] = resolved
        self._unresolved[group] = resolved
        self.stats.groups_resolved += 1
        self.kernel_groups[kernel_id] = (
            self.kernel_groups.get(kernel_id, 0) + 1
        )
        if tel is not None:
            tel.tracer.emit_span(
                EV_FAULT_RESOLVE, detect_time, resolved - detect_time,
                "faults",
                {"group": group, "sm": sm_id, "kernel": kernel_id,
                 "class": fault_class.name, "local": local,
                 "queue_position": position},
            )
        return FaultOutcome(
            group=group,
            resolved_time=resolved,
            position=position,
            fault_class=fault_class,
            handled_locally=local,
        )

    # ------------------------------------------------------------------
    # resolution cost models
    # ------------------------------------------------------------------

    def _resolve_cpu(self, detect: float, fault_class: FaultClass) -> float:
        """CPU driver path: fault message over the link -> serialized CPU
        handler -> (for migrations) serialized link transfer -> completion
        signal.  Both the fault messages and the data transfers occupy the
        link, so mass concurrent faults contend on it and on the single CPU
        handler — the effect use case 2 exists to avoid."""
        ic = self.interconnect
        chaos = self.chaos
        msg_occupancy = ic.msg_occupancy
        cpu_service = ic.cpu_service
        transfer_time = ic.transfer_time
        reorder_slots = 0
        if chaos is not None:
            msg_occupancy = chaos.link_latency(msg_occupancy, detect)
            cpu_service = chaos.cpu_latency(cpu_service, detect)
            # Interconnect packet chaos (docs/ROBUSTNESS.md): a dropped
            # fault message is retransmitted, each lost copy re-occupying
            # the link; a reordered one waits behind packets that
            # overtook it before it may start.
            retx = chaos.pkt_drop(detect)
            if retx:
                msg_occupancy *= 1 + retx
            reorder_slots = chaos.pkt_reorder(detect)
        half_signal = ic.signal_latency / 2
        msg_start = max(detect + half_signal, self._link_next_free)
        if reorder_slots:
            msg_start += reorder_slots * ic.msg_occupancy
        msg_done = msg_start + msg_occupancy
        self._link_next_free = msg_done
        self.stats.link_busy += msg_occupancy
        cpu_start = max(msg_done, self._cpu_next_free)
        cpu_done = cpu_start + cpu_service
        self._cpu_next_free = cpu_done
        self.stats.cpu_busy += cpu_service
        if fault_class is FaultClass.MIGRATE:
            if chaos is not None:
                transfer_time = chaos.link_latency(transfer_time, cpu_done)
            link_start = max(cpu_done, self._link_next_free)
            link_done = link_start + transfer_time
            self._link_next_free = link_done
            self.stats.link_busy += transfer_time
            return link_done + half_signal
        return cpu_done + half_signal

    def _resolve_local(self, detect: float, sm_id: int) -> float:
        """GPU-local handler (use case 2): the faulting warp runs the
        handler in system mode.  Handlers on different SMs run concurrently;
        within an SM a short allocator critical section serializes."""
        cfg = self.config
        handler_latency = cfg.gpu_handler_latency
        if self.chaos is not None:
            handler_latency = self.chaos.cpu_latency(handler_latency, detect)
        handler_done = detect + handler_latency
        serial_start = max(
            handler_done - cfg.gpu_handler_serial,
            self._sm_handler_next_free[sm_id],
        )
        resolved = serial_start + cfg.gpu_handler_serial
        self._sm_handler_next_free[sm_id] = resolved
        return resolved

    # ------------------------------------------------------------------

    def _position(self, time: float) -> int:
        """Position in the global pending-fault queue at ``time``: the
        number of fault groups still unresolved."""
        stale = [g for g, t in self._unresolved.items() if t <= time]
        for g in stale:
            del self._unresolved[g]
        return sum(1 for t in self._unresolved.values() if t > time)

    def pending_groups(self, time: float) -> List[int]:
        return [g for g, t in self._unresolved.items() if t > time]
