"""Host-side runtime facade: a CUDA-like managed-memory device API.

The paper's motivation (Section 1) is programmability: unified memory with
on-demand migration removes explicit transfers, and preemptible exceptions
make its machinery (demand paging, lazy allocation) efficient.  This module
is the user-facing library tying the reproduction together the way a driver
API would:

    dev = GpuDevice(scheme="replay-queue", local_handling=True)
    x = dev.malloc_managed(n * 4)
    y = dev.malloc_managed(n * 4)
    dev.fill(x, [...])                 # host writes -> pages CPU-dirty
    result = dev.launch(kernel, grid=32, block=128, args=[x, y, 2.0])
    print(result.cycles, dev.read(y, n))

State persists across launches: memory contents, page residency (a second
kernel touching the same data takes no migration faults), physical frames,
and the accumulated cycle count — exactly the behaviour managed memory
gives a CUDA application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core import PipelineScheme, make_scheme
from repro.functional import Interpreter, Launch
from repro.isa import Kernel
from repro.system import GPUConfig, GpuSimulator, INTERCONNECTS, SimResult
from repro.system.config import InterconnectConfig
from repro.vm import (
    AddressSpace,
    DeviceHeap,
    FrameAllocator,
    SegmentKind,
    SparseMemory,
)


class RuntimeError_(Exception):
    """Raised on misuse of the device API."""


@dataclass(frozen=True)
class DevicePointer:
    """An opaque handle to a managed allocation."""

    name: str
    address: int
    nbytes: int

    def __index__(self) -> int:  # usable directly as a kernel argument
        return self.address


@dataclass
class LaunchResult:
    """Outcome of one kernel launch through the runtime."""

    sim: SimResult
    trace_instructions: int

    @property
    def cycles(self) -> float:
        return self.sim.cycles

    @property
    def fault_stats(self):
        return self.sim.fault_stats


class GpuDevice:
    """A persistent simulated GPU with managed memory."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        scheme: Union[str, PipelineScheme] = "replay-queue",
        interconnect: Union[str, InterconnectConfig] = "nvlink",
        local_handling: bool = False,
        block_switching: bool = False,
        heap_bytes: int = 0,
        heap_arenas: int = 256,
        time_scale: float = 1.0,
    ) -> None:
        self.config = (config or GPUConfig()).time_scaled(time_scale)
        self.scheme = (
            make_scheme(scheme) if isinstance(scheme, str) else scheme
        )
        if isinstance(interconnect, str):
            interconnect = INTERCONNECTS[interconnect]
        self.interconnect = interconnect.scaled(time_scale)
        self.local_handling = local_handling
        self.block_switching = block_switching
        if (block_switching or local_handling) and not self.scheme.preemptible:
            raise RuntimeError_(
                "the use cases require a preemptible-exception scheme"
            )
        self.aspace = AddressSpace()
        self.memory = SparseMemory()
        self.frames = FrameAllocator(self.config.num_frames)
        self._partitions = (
            self.frames.partition(self.config.num_sms + 1)
            if local_handling
            else None
        )
        self.heap: Optional[DeviceHeap] = None
        if heap_bytes:
            seg = self.aspace.add_segment("heap", heap_bytes, SegmentKind.HEAP)
            self.heap = DeviceHeap(seg.base, seg.size, num_arenas=heap_arenas)
        self._alloc_counter = 0
        self.total_cycles = 0.0
        self.launches: List[LaunchResult] = []

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------

    def malloc_managed(
        self, nbytes: int, name: Optional[str] = None
    ) -> DevicePointer:
        """Allocate managed memory (lazily backed: first GPU touch faults
        as FIRST_TOUCH unless the host writes it first)."""
        if nbytes <= 0:
            raise RuntimeError_("allocation size must be positive")
        if name is None:
            name = f"managed{self._alloc_counter}"
            self._alloc_counter += 1
        seg = self.aspace.add_segment(name, nbytes, SegmentKind.OUTPUT)
        return DevicePointer(name=name, address=seg.base, nbytes=nbytes)

    def fill(self, ptr: DevicePointer, values: Sequence[float],
             width: int = 4) -> None:
        """Host writes: contents stored, pages become CPU-dirty (a later
        GPU access takes a MIGRATE fault)."""
        if len(values) * width > ptr.nbytes:
            raise RuntimeError_(
                f"{ptr.name}: {len(values)} values overflow {ptr.nbytes}B"
            )
        self.memory.fill(ptr.address, values, width=width)
        from repro.vm import Owner

        self.aspace.page_state.register_range(
            ptr.address, ptr.nbytes, Owner.CPU, cpu_dirty=True
        )

    def memcpy_to_device(self, ptr: DevicePointer) -> None:
        """Explicit transfer (the pre-managed-memory style): pages are
        GPU-mapped up front, so the kernel takes no faults on them."""
        first = ptr.address >> 12
        last = (ptr.address + ptr.nbytes - 1) >> 12
        for vpn in range(first, last + 1):
            if self.aspace.page_state.gpu_translate(vpn) is None:
                self.aspace.page_state.install_gpu_page(
                    vpn, self._cpu_frames().allocate()
                )

    def read(self, ptr: DevicePointer, count: int, width: int = 4) -> list:
        """Host reads back results (contents, no timing)."""
        return self.memory.read_array(ptr.address, count, width=width)

    def _cpu_frames(self) -> FrameAllocator:
        return self._partitions[0] if self._partitions else self.frames

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        grid: int,
        block: int,
        args: Sequence = (),
        telemetry=None,
    ) -> LaunchResult:
        """Execute ``kernel`` functionally and simulate its timing against
        the device's current paging state.

        Pass a fresh :class:`repro.telemetry.Telemetry` to trace this
        launch (each launch's cycle clock restarts at zero, so telemetry
        is per launch); it is reachable afterwards via
        ``result.sim.telemetry``."""
        params = [
            float(a.address) if isinstance(a, DevicePointer) else float(a)
            for a in args
        ]
        launch = Launch(kernel, grid_dim=grid, block_dim=block, params=params)
        interp = Interpreter(
            memory=self.memory, address_space=self.aspace, heap=self.heap
        )
        trace = interp.run(launch)

        sim = GpuSimulator(
            kernel=kernel,
            trace=trace,
            address_space=self.aspace,
            config=self.config,
            scheme=self.scheme,
            interconnect=self.interconnect,
            paging="demand",  # residency decides what faults
            local_handling=self.local_handling,
            block_switching=self.block_switching,
            frame_allocator=self.frames,
            frame_partitions=self._partitions,
            telemetry=telemetry,
        )
        sim_result = sim.run()
        result = LaunchResult(
            sim=sim_result, trace_instructions=trace.dynamic_instructions()
        )
        self.total_cycles += sim_result.cycles
        self.launches.append(result)
        return result

    # ------------------------------------------------------------------

    def resident_pages(self) -> int:
        """GPU-resident page count (how much has migrated/been allocated)."""
        return len(self.aspace.page_state.gpu_table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GpuDevice scheme={self.scheme.name} "
            f"ic={self.interconnect.name} launches={len(self.launches)}>"
        )
