"""Host-side runtime facade: a CUDA-like managed-memory device API.

The paper's motivation (Section 1) is programmability: unified memory with
on-demand migration removes explicit transfers, and preemptible exceptions
make its machinery (demand paging, lazy allocation) efficient.  This module
is the user-facing library tying the reproduction together the way a driver
API would:

    dev = GpuDevice(scheme="replay-queue", local_handling=True)
    x = dev.malloc_managed(n * 4)
    y = dev.malloc_managed(n * 4)
    dev.fill(x, [...])                 # host writes -> pages CPU-dirty
    result = dev.launch(kernel, grid=32, block=128, args=[x, y, 2.0])
    print(result.cycles, dev.read(y, n))

State persists across launches: memory contents, page residency (a second
kernel touching the same data takes no migration faults), physical frames,
and the accumulated cycle count — exactly the behaviour managed memory
gives a CUDA application.

Streams (docs/CONCURRENCY.md) add concurrent kernel execution on the same
device::

    s0, s1 = dev.create_stream(), dev.create_stream()
    h0 = dev.launch(ka, grid=8, block=128, args=[x], stream=s0)
    h1 = dev.launch(kb, grid=8, block=128, args=[y], stream=s1)
    overlap = dev.synchronize()        # both kernels share the GPU
    print(overlap.cycles, h0.result.faults_raised)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core import PipelineScheme, make_scheme
from repro.functional import Interpreter, Launch
from repro.isa import Kernel
from repro.system import (
    GPUConfig,
    GpuSimulator,
    INTERCONNECTS,
    MultiKernelResult,
    MultiKernelSimulator,
    SimResult,
    StreamKernelResult,
    StreamLaunch,
)
from repro.system.config import InterconnectConfig
from repro.vm import (
    AddressSpace,
    DeviceHeap,
    FrameAllocator,
    SegmentKind,
    SparseMemory,
)


class RuntimeError_(Exception):
    """Raised on misuse of the device API."""


class AllocationFailure(RuntimeError_):
    """A managed allocation failed transiently (chaos-injected driver
    heap exhaustion).  Structured and retryable: the device stays fully
    usable and a repeated ``malloc_managed`` may succeed."""

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes
        super().__init__(
            f"managed allocation of {nbytes}B failed transiently "
            "(chaos: runtime.alloc_fail)"
        )


class StreamTeardownError(RuntimeError_):
    """A stream was torn down mid-kernel at synchronize time
    (chaos-injected).  Structured and retryable: the queued launches
    remain queued, so a repeated ``synchronize`` resumes them."""

    def __init__(self, stream: int, pending: int) -> None:
        self.stream = stream
        self.pending = pending
        super().__init__(
            f"stream {stream} torn down mid-kernel with {pending} "
            "launch(es) queued (chaos: runtime.stream_teardown); "
            "re-synchronize to resume"
        )


@dataclass(frozen=True)
class DevicePointer:
    """An opaque handle to a managed allocation."""

    name: str
    address: int
    nbytes: int

    def __index__(self) -> int:  # usable directly as a kernel argument
        return self.address


@dataclass
class LaunchResult:
    """Outcome of one kernel launch through the runtime."""

    sim: SimResult
    trace_instructions: int

    @property
    def cycles(self) -> float:
        return self.sim.cycles

    @property
    def fault_stats(self):
        return self.sim.fault_stats


@dataclass
class StreamLaunchHandle:
    """A pending stream launch: returned by ``launch(..., stream=s)``
    immediately (the kernel has executed *functionally*, so its memory
    effects are visible to ``read`` and to later enqueues), filled with
    its timing ``result`` by :meth:`GpuDevice.synchronize`."""

    kernel_name: str
    stream_id: int
    kernel_id: int  # device-wide enqueue index (tags faults/blocks/events)
    trace_instructions: int
    result: Optional[StreamKernelResult] = None

    @property
    def done(self) -> bool:
        """True once a device synchronize has simulated this launch."""
        return self.result is not None

    @property
    def cycles(self) -> float:
        """Completion cycle within the synchronized run (raises until
        :meth:`GpuDevice.synchronize` has run)."""
        if self.result is None:
            raise RuntimeError_(
                f"{self.kernel_name}: launch not yet synchronized"
            )
        return self.result.cycles


class Stream:
    """An in-order launch queue on a :class:`GpuDevice` (CUDA-stream-like).

    Kernels enqueued on the same stream execute in enqueue order; kernels
    on *different* streams run concurrently on the shared GPU when
    :meth:`GpuDevice.synchronize` fires — contending on the same fault
    queue, interconnect and SMs (docs/CONCURRENCY.md).  Create streams
    with :meth:`GpuDevice.create_stream`."""

    def __init__(self, device: "GpuDevice", stream_id: int) -> None:
        self.device = device
        self.stream_id = stream_id
        #: handles of every launch enqueued on this stream
        self.launches: List[StreamLaunchHandle] = []

    def launch(
        self, kernel: Kernel, grid: int, block: int, args: Sequence = ()
    ) -> StreamLaunchHandle:
        """Enqueue a kernel on this stream (sugar for
        ``device.launch(..., stream=self)``)."""
        return self.device.launch(kernel, grid, block, args, stream=self)

    def synchronize(self) -> Optional[MultiKernelResult]:
        """Drain the device's queued work.  NOTE: stronger than CUDA —
        this synchronizes the *whole device*, because all resident kernels
        are simulated together (docs/CONCURRENCY.md)."""
        return self.device.synchronize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Stream {self.stream_id} launches={len(self.launches)}>"
        )


class GpuDevice:
    """A persistent simulated GPU with managed memory."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        scheme: Union[str, PipelineScheme] = "replay-queue",
        interconnect: Union[str, InterconnectConfig] = "nvlink",
        local_handling: bool = False,
        block_switching: bool = False,
        heap_bytes: int = 0,
        heap_arenas: int = 256,
        time_scale: float = 1.0,
        chaos=None,
    ) -> None:
        # A device-level engine drives the runtime.* hooks (allocation
        # failures, stream teardown).  Keep it separate from any engine
        # handed to a simulation: the facade draws from this RNG stream
        # at API-call order, so sharing one engine would perturb the
        # simulator's seeded injection sequence.
        from repro.chaos import chaos_active

        self.chaos = chaos_active(chaos)
        self.config = (config or GPUConfig()).time_scaled(time_scale)
        self.scheme = (
            make_scheme(scheme) if isinstance(scheme, str) else scheme
        )
        if isinstance(interconnect, str):
            interconnect = INTERCONNECTS[interconnect]
        self.interconnect = interconnect.scaled(time_scale)
        self.local_handling = local_handling
        self.block_switching = block_switching
        if (block_switching or local_handling) and not self.scheme.preemptible:
            raise RuntimeError_(
                "the use cases require a preemptible-exception scheme"
            )
        self.aspace = AddressSpace()
        self.memory = SparseMemory()
        self.frames = FrameAllocator(self.config.num_frames)
        self._partitions = (
            self.frames.partition(self.config.num_sms + 1)
            if local_handling
            else None
        )
        self.heap: Optional[DeviceHeap] = None
        if heap_bytes:
            seg = self.aspace.add_segment("heap", heap_bytes, SegmentKind.HEAP)
            self.heap = DeviceHeap(seg.base, seg.size, num_arenas=heap_arenas)
        self._alloc_counter = 0
        self.total_cycles = 0.0
        self.launches: List[LaunchResult] = []
        # Stream state (docs/CONCURRENCY.md): streams created by
        # create_stream(), launches queued by launch(..., stream=s) until
        # synchronize() simulates them all concurrently.
        self.streams: List[Stream] = []
        self.sync_results: List[MultiKernelResult] = []
        self._queued: List[StreamLaunch] = []
        self._queued_handles: List[StreamLaunchHandle] = []

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------

    def malloc_managed(
        self, nbytes: int, name: Optional[str] = None
    ) -> DevicePointer:
        """Allocate managed memory (lazily backed: first GPU touch faults
        as FIRST_TOUCH unless the host writes it first)."""
        if nbytes <= 0:
            raise RuntimeError_("allocation size must be positive")
        if self.chaos is not None and self.chaos.alloc_failure(
            self.total_cycles, nbytes
        ):
            raise AllocationFailure(nbytes)
        if name is None:
            name = f"managed{self._alloc_counter}"
            self._alloc_counter += 1
        seg = self.aspace.add_segment(name, nbytes, SegmentKind.OUTPUT)
        return DevicePointer(name=name, address=seg.base, nbytes=nbytes)

    def fill(self, ptr: DevicePointer, values: Sequence[float],
             width: int = 4) -> None:
        """Host writes: contents stored, pages become CPU-dirty (a later
        GPU access takes a MIGRATE fault)."""
        if len(values) * width > ptr.nbytes:
            raise RuntimeError_(
                f"{ptr.name}: {len(values)} values overflow {ptr.nbytes}B"
            )
        self.memory.fill(ptr.address, values, width=width)
        from repro.vm import Owner

        self.aspace.page_state.register_range(
            ptr.address, ptr.nbytes, Owner.CPU, cpu_dirty=True
        )

    def memcpy_to_device(self, ptr: DevicePointer) -> None:
        """Explicit transfer (the pre-managed-memory style): pages are
        GPU-mapped up front, so the kernel takes no faults on them."""
        first = ptr.address >> 12
        last = (ptr.address + ptr.nbytes - 1) >> 12
        for vpn in range(first, last + 1):
            if self.aspace.page_state.gpu_translate(vpn) is None:
                self.aspace.page_state.install_gpu_page(
                    vpn, self._cpu_frames().allocate()
                )

    def read(self, ptr: DevicePointer, count: int, width: int = 4) -> list:
        """Host reads back results (contents, no timing)."""
        return self.memory.read_array(ptr.address, count, width=width)

    def _cpu_frames(self) -> FrameAllocator:
        return self._partitions[0] if self._partitions else self.frames

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------

    def create_stream(self) -> Stream:
        """Create a new stream: an in-order launch queue whose kernels run
        concurrently with other streams' at :meth:`synchronize` time."""
        stream = Stream(self, len(self.streams))
        self.streams.append(stream)
        return stream

    def launch(
        self,
        kernel: Kernel,
        grid: int,
        block: int,
        args: Sequence = (),
        telemetry=None,
        stream: Optional[Stream] = None,
    ) -> Union[LaunchResult, StreamLaunchHandle]:
        """Execute ``kernel`` functionally and simulate its timing against
        the device's current paging state.

        Without ``stream`` the launch is synchronous: it simulates
        immediately and returns a :class:`LaunchResult` (any queued stream
        work is drained first via an implicit :meth:`synchronize`, so
        program order is preserved).  With ``stream`` the launch is
        *enqueued*: its functional execution happens now (memory effects
        land in enqueue order — the determinism contract of
        docs/CONCURRENCY.md), timing is deferred to :meth:`synchronize`,
        and a :class:`StreamLaunchHandle` is returned.

        Pass a fresh :class:`repro.telemetry.Telemetry` to trace a
        synchronous launch (each launch's cycle clock restarts at zero, so
        telemetry is per launch); it is reachable afterwards via
        ``result.sim.telemetry``.  For stream launches pass the telemetry
        to :meth:`synchronize` instead."""
        if stream is not None and telemetry is not None:
            raise RuntimeError_(
                "pass telemetry to synchronize(), not to a stream launch"
            )
        if stream is None and self._queued:
            # A synchronous launch must observe every enqueued kernel's
            # timing state (page residency): drain the queue first.
            self.synchronize()
        params = [
            float(a.address) if isinstance(a, DevicePointer) else float(a)
            for a in args
        ]
        launch = Launch(kernel, grid_dim=grid, block_dim=block, params=params)
        interp = Interpreter(
            memory=self.memory, address_space=self.aspace, heap=self.heap
        )
        trace = interp.run(launch)

        if stream is not None:
            sid = stream.stream_id
            if sid >= len(self.streams) or self.streams[sid] is not stream:
                raise RuntimeError_(
                    "stream does not belong to this device"
                )
            handle = StreamLaunchHandle(
                kernel_name=kernel.name,
                stream_id=stream.stream_id,
                kernel_id=len(self._queued),
                trace_instructions=trace.dynamic_instructions(),
            )
            self._queued.append(
                StreamLaunch(kernel=kernel, trace=trace,
                             stream=stream.stream_id)
            )
            self._queued_handles.append(handle)
            stream.launches.append(handle)
            return handle

        sim = GpuSimulator(
            kernel=kernel,
            trace=trace,
            address_space=self.aspace,
            config=self.config,
            scheme=self.scheme,
            interconnect=self.interconnect,
            paging="demand",  # residency decides what faults
            local_handling=self.local_handling,
            block_switching=self.block_switching,
            frame_allocator=self.frames,
            frame_partitions=self._partitions,
            telemetry=telemetry,
        )
        sim_result = sim.run()
        result = LaunchResult(
            sim=sim_result, trace_instructions=trace.dynamic_instructions()
        )
        self.total_cycles += sim_result.cycles
        self.launches.append(result)
        return result

    def synchronize(
        self,
        telemetry=None,
        policy: str = "partition",
        chaos=None,
        watchdog=None,
        sanitize: bool = False,
        schedule=None,
    ) -> Optional[MultiKernelResult]:
        """Simulate every queued stream launch concurrently on the shared
        GPU and block until all complete (CUDA ``cudaDeviceSynchronize``).

        Kernels on the same stream run in enqueue order; kernels on
        different streams overlap, contending on the single pending-fault
        queue, the interconnect and the SM array (partitioned per
        ``policy`` — see :class:`repro.system.MultiKernelScheduler`).
        Fills each queued launch's :class:`StreamLaunchHandle` and advances
        ``total_cycles`` by the overlapped makespan.  Returns the
        :class:`repro.system.MultiKernelResult` (also appended to
        ``sync_results``), or None when nothing was queued.

        ``chaos``/``watchdog``/``sanitize`` enable the robustness layer
        *inside* this synchronize's simulation (docs/ROBUSTNESS.md) —
        distinct from the device-level engine driving the ``runtime.*``
        hooks; ``schedule`` (a :class:`repro.mc.ScheduleControl`) makes
        the run's scheduling/injection choices explorable decision points
        (docs/MODELCHECK.md).  All default off/None, leaving the
        simulation bit-identical."""
        if not self._queued:
            return None
        if self.chaos is not None:
            for sid in sorted({sl.stream for sl in self._queued}):
                if self.chaos.stream_teardown(self.total_cycles, sid):
                    raise StreamTeardownError(sid, len(self._queued))
        queued, handles = self._queued, self._queued_handles
        self._queued, self._queued_handles = [], []
        sim = MultiKernelSimulator(
            queued,
            address_space=self.aspace,
            config=self.config,
            scheme=self.scheme,
            interconnect=self.interconnect,
            paging="demand",  # residency decides what faults
            local_handling=self.local_handling,
            block_switching=self.block_switching,
            frame_allocator=self.frames,
            frame_partitions=self._partitions,
            telemetry=telemetry,
            chaos=chaos,
            watchdog=watchdog,
            sanitize=sanitize,
            policy=policy,
            schedule=schedule,
        )
        result = sim.run()
        for handle, kres in zip(handles, result.kernels):
            handle.result = kres
        self.total_cycles += result.cycles
        self.sync_results.append(result)
        return result

    # ------------------------------------------------------------------

    def resident_pages(self) -> int:
        """GPU-resident page count (how much has migrated/been allocated)."""
        return len(self.aspace.page_state.gpu_table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GpuDevice scheme={self.scheme.name} "
            f"ic={self.interconnect.name} launches={len(self.launches)}>"
        )
