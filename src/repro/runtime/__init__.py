"""Host-side runtime: a CUDA-like managed-memory device facade with
CUDA-stream-like concurrent kernel launches (docs/CONCURRENCY.md)."""

from .device import (
    AllocationFailure,
    DevicePointer,
    GpuDevice,
    LaunchResult,
    RuntimeError_,
    Stream,
    StreamLaunchHandle,
    StreamTeardownError,
)

__all__ = [
    "AllocationFailure",
    "DevicePointer",
    "GpuDevice",
    "LaunchResult",
    "RuntimeError_",
    "Stream",
    "StreamLaunchHandle",
    "StreamTeardownError",
]
