"""Host-side runtime: a CUDA-like managed-memory device facade with
CUDA-stream-like concurrent kernel launches (docs/CONCURRENCY.md)."""

from .device import (
    DevicePointer,
    GpuDevice,
    LaunchResult,
    RuntimeError_,
    Stream,
    StreamLaunchHandle,
)

__all__ = [
    "DevicePointer",
    "GpuDevice",
    "LaunchResult",
    "RuntimeError_",
    "Stream",
    "StreamLaunchHandle",
]
