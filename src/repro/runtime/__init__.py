"""Host-side runtime: a CUDA-like managed-memory device facade."""

from .device import DevicePointer, GpuDevice, LaunchResult, RuntimeError_

__all__ = ["DevicePointer", "GpuDevice", "LaunchResult", "RuntimeError_"]
