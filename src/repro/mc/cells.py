"""Model-checking exploration as campaign cells.

The interleaving explorer (docs/MODELCHECK.md) runs whole scenarios
single-threaded; this module cuts an exploration batch along its
scenario axis into :class:`repro.harness.runner.CampaignCell`\\ s so mc
sweeps shard across the parallel campaign runner — and, through
:mod:`repro.harness.dist`, across worker machines — with checkpoints,
retry and the bit-identical merge the runner guarantees.  Exploration
itself is deterministic (the report serializes byte-identically for
equal budgets), so an mc cell satisfies the campaign determinism
contract out of the box.

``python -m repro.harness mc --campaign ...`` is the CLI entry point.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.harness.results import ExperimentTable

from .scenarios import (
    MC_CYCLE_BUDGET,
    MC_TIME_SCALE,
    get_mc_scenario,
    run_mc_scenario,
)


def run_mc_cell(
    scenario: str,
    max_executions: int = 64,
    max_depth: int = 48,
    max_branch: int = 3,
    scheme: str = "replay-queue",
    policy: str = "partition",
    time_scale: float = MC_TIME_SCALE,
    cycle_budget: float = MC_CYCLE_BUDGET,
) -> ExperimentTable:
    """Explore one scenario within budget; returns its result table.

    ``expectation-met`` is 1.0 when the scenario met its contract —
    every interleaving clean with consistent digests, or (negative
    controls) a counterexample found — so a campaign over mc cells
    fails loudly, per cell, exactly like the standalone subcommand.
    """
    spec = get_mc_scenario(scenario)
    report = run_mc_scenario(
        scenario,
        max_executions=max_executions,
        max_depth=max_depth,
        max_branch=max_branch,
        scheme=scheme,
        policy=policy,
        time_scale=time_scale,
        cycle_budget=cycle_budget,
    )
    if spec.expect_counterexample:
        met = bool(report.counterexamples)
    else:
        met = report.all_clean and report.digest_consistent()
    table = ExperimentTable(
        name="mc",
        description=(
            f"bounded schedule exploration, budget "
            f"{max_executions}x{max_depth}x{max_branch} "
            f"(scheme={scheme}, policy={policy})"
        ),
        columns=[
            "explored", "distinct", "counterexamples", "truncated",
            "expectation-met",
        ],
        notes=[
            "expectation-met 1.0 = all interleavings clean with "
            "consistent digests (or, for a negative control, a "
            "counterexample found)",
        ],
        show_geomean=False,
    )
    table.add_row(scenario, [
        float(report.explored),
        float(report.distinct_traces),
        float(len(report.counterexamples)),
        1.0 if report.truncated else 0.0,
        1.0 if met else 0.0,
    ])
    return table


def build_mc_cells(
    scenarios: Sequence[str],
    max_executions: int = 64,
    max_depth: int = 48,
    max_branch: int = 3,
    scheme: str = "replay-queue",
    policy: str = "partition",
    time_scale: float = MC_TIME_SCALE,
    cycle_budget: float = MC_CYCLE_BUDGET,
) -> List["CampaignCell"]:
    """The mc campaign spec: one cell per scenario, all merging into the
    ``mc`` group (row labels are scenario names, already distinct)."""
    from repro.harness.runner import CampaignCell

    cells: List[CampaignCell] = []
    for scenario in scenarios:
        cells.append(
            CampaignCell(
                key=f"mc/{scenario}",
                fn=run_mc_cell,
                kwargs=dict(
                    scenario=scenario,
                    max_executions=max_executions,
                    max_depth=max_depth,
                    max_branch=max_branch,
                    scheme=scheme,
                    policy=policy,
                    time_scale=time_scale,
                    cycle_budget=cycle_budget,
                ),
                group="mc",
            )
        )
    return cells
