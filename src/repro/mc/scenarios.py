"""Model-checking scenarios: small workloads whose schedule space the
explorer enumerates (docs/MODELCHECK.md).

Each scenario stages a fresh :class:`repro.runtime.GpuDevice`, enqueues
its kernels on streams, and synchronizes under a forced choice trace
with the robustness layer armed (invariant sanitizer, watchdog) — one
:class:`~repro.mc.explorer.Execution` per trace.  Verification is
per-execution:

- the sanitizer must stay silent (``violation`` verdict otherwise), the
  watchdog must not trip (``hang``), the run loop must not wedge
  (``deadlock``);
- the **functional digest** (the data values the kernels produced) must
  be identical across every interleaving — the streams determinism
  contract (docs/CONCURRENCY.md) fixes data values at enqueue time, so
  any divergence is a real isolation bug;
- the **architectural digest** (GPU-mapped virtual pages, blocks
  retired, instructions committed — frame assignment excluded, as in
  the chaos campaign) must also be invariant: scheduling may only move
  *when* things happen.

Registry:

``contention``
    the two-stream tlb-thrash pair of :mod:`repro.workloads.multi`:
    steal-order and fault-service-order decisions under genuine
    cross-stream fault-queue contention;
``fault-storm``
    a single-stream tlb-thrash under schedule-gated chaos (resolution
    delays, phantom-fault storms, packet reordering): every injection
    site is a decision point, magnitudes are deterministic maxima;
``fault-storm-bug``
    the negative control: identical to ``fault-storm`` but the
    resolution delay is *negative* (a completion signal from the past).
    Any trace that fires the injection schedules replay events before
    the heap's last fired time — the sanitizer's event-heap regression
    check trips, and the explorer must minimize it to a one-hot trace.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos import (
    ChaosConfig,
    ChaosEngine,
    InvariantViolation,
    SimulationHang,
    Watchdog,
)
from repro.runtime import DevicePointer, GpuDevice
from repro.system import DeadlockError

from .explorer import CLEAN, Execution, Explorer, ExplorationReport
from .schedule import ScheduleControl

#: time scale of every scenario (matches the harness experiments)
MC_TIME_SCALE = 8.0

#: watchdog budget per execution, in cycles (scenarios are small; a
#: whole budget without progress means a schedule choice wedged the run)
MC_CYCLE_BUDGET = 500_000.0

#: chaos rates for the fault-storm scenarios: only the schedule-gated
#: hooks are armed, so the RNG is never consulted — the choice trace
#: alone describes the injection pattern
_STORM_RATES = dict(
    cpu_latency_rate=0.0,
    link_latency_rate=0.0,
    resolve_delay_rate=1.0,
    storm_rate=1.0,
    tlb_miss_rate=0.0,
    shootdown_rate=0.0,
    squash_rate=0.0,
    mshr_exhaustion_rate=0.0,
    refresh_storm_rate=0.0,
    pkt_drop_rate=0.0,
    pkt_reorder_rate=1.0,
    alloc_fail_rate=0.0,
    stream_teardown_rate=0.0,
)


@dataclass(frozen=True)
class McScenario:
    """One explorable scenario: a builder staging launch specs on a
    device, plus the chaos config its executions run under (None = no
    chaos, scheduling decisions only)."""

    name: str
    description: str
    #: stages buffers/kernels on the device; returns the launch specs
    #: (each spec launched on its own stream, spec order = stream order)
    build: Callable[[GpuDevice], List]
    chaos_config: Optional[ChaosConfig] = None
    #: True when a counterexample is the *expected* outcome (negative
    #: control — the mc harness does not fail the scenario on it)
    expect_counterexample: bool = False


def _build_contention(device: GpuDevice) -> List:
    from repro.workloads import get_stream_scenario

    return get_stream_scenario("contention").build(device)


def _build_storm(device: GpuDevice) -> List:
    """A single fault-bound kernel on one stream: no steal decisions, so
    the trace is pure fault-service-order + chaos-injection choices."""
    from repro.workloads.micro import MICRO
    from repro.workloads.multi import StreamKernelSpec

    wl = MICRO.fresh("tlb-thrash")
    span = (wl.iters + 1) * wl.num_warps * wl.PAGE_STRIDE
    src = device.malloc_managed(span, name="storm-in")
    out = device.malloc_managed(wl.num_threads * 4, name="storm-out")
    device.fill(src, [float(i % 97) for i in range(span // 4)])
    return [
        StreamKernelSpec(
            kernel=wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
            args=(src, out),
        )
    ]


MC_SCENARIOS: Dict[str, McScenario] = {
    s.name: s
    for s in (
        McScenario(
            name="contention",
            description=(
                "two-stream tlb-thrash contention: steal order and "
                "fault service order explored, no chaos"
            ),
            build=_build_contention,
        ),
        McScenario(
            name="fault-storm",
            description=(
                "single-stream tlb-thrash under schedule-gated chaos: "
                "resolution delays, phantom storms and packet reordering "
                "as decision points"
            ),
            build=_build_storm,
            chaos_config=ChaosConfig(seed=0, **_STORM_RATES),
        ),
        McScenario(
            name="fault-storm-bug",
            description=(
                "negative control: a negative resolution delay sends "
                "completion signals into the past — firing the injection "
                "must trip the event-heap regression invariant"
            ),
            build=_build_storm,
            chaos_config=ChaosConfig(
                seed=0, resolve_delay_max_cycles=-250_000.0, **_STORM_RATES
            ),
            expect_counterexample=True,
        ),
    )
}

#: scenarios the ``mc`` subcommand runs by default (the negative control
#: is opt-in: its counterexample is the expected outcome, not a finding)
DEFAULT_MC_SCENARIOS: Tuple[str, ...] = ("contention", "fault-storm")


def get_mc_scenario(name: str) -> McScenario:
    try:
        return MC_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown mc scenario {name!r}; known: {sorted(MC_SCENARIOS)}"
        ) from None


# ----------------------------------------------------------------------
# one execution = one forced trace
# ----------------------------------------------------------------------


def _first_line(exc: BaseException) -> str:
    return str(exc).splitlines()[0] if str(exc) else type(exc).__name__


def _functional_digest(device: GpuDevice, specs) -> str:
    """sha256 over every device-pointer argument's contents after the
    run.  Functional execution is fixed at enqueue time (the streams
    determinism contract), so every interleaving must reproduce this."""
    payload = []
    for spec in specs:
        for arg in spec.args:
            if isinstance(arg, DevicePointer):
                payload.append(
                    [arg.name, device.read(arg, arg.nbytes // 4)]
                )
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _arch_digest(device: GpuDevice, result) -> str:
    """sha256 over the architectural end state: GPU-mapped pages, blocks
    retired, instructions committed.  Frame assignment is deliberately
    excluded (schedules legitimately reorder which frame a page gets),
    exactly as the chaos campaign's digest does."""
    payload = [
        sorted(device.aspace.page_state.gpu_table.mapped_vpns()),
        sum(s.blocks_completed for s in result.sm_stats),
        sum(s.committed for s in result.sm_stats),
    ]
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def execute_trace(
    scenario: McScenario,
    trace: Tuple[int, ...] = (),
    scheme: str = "replay-queue",
    policy: str = "partition",
    time_scale: float = MC_TIME_SCALE,
    cycle_budget: float = MC_CYCLE_BUDGET,
) -> Execution:
    """Run one scenario execution under a forced choice trace.

    Builds a fresh device (executions share nothing), enqueues each spec
    on its own stream, and synchronizes with the sanitizer + watchdog
    armed and the :class:`~repro.mc.schedule.ScheduleControl` threaded
    through the simulator.  Never raises for scenario failures — the
    verdict carries them (``violation``/``hang``/``deadlock``)."""
    device = GpuDevice(scheme=scheme, time_scale=time_scale)
    specs = scenario.build(device)
    for spec in specs:
        stream = device.create_stream()
        device.launch(
            spec.kernel, grid=spec.grid, block=spec.block, args=spec.args,
            stream=stream,
        )
    control = ScheduleControl(trace)
    chaos = (
        ChaosEngine(scenario.chaos_config)
        if scenario.chaos_config is not None
        else None
    )
    verdict, error, result = CLEAN, None, None
    try:
        result = device.synchronize(
            policy=policy,
            chaos=chaos,
            watchdog=Watchdog(cycle_budget),
            sanitize=True,
            schedule=control,
        )
    except InvariantViolation as exc:
        verdict, error = "violation", _first_line(exc)
    except SimulationHang as exc:
        verdict, error = "hang", _first_line(exc)
    except DeadlockError as exc:
        verdict, error = "deadlock", _first_line(exc)
    execution = Execution(
        trace=control.trace(),
        points=list(control.log),
        verdict=verdict,
        error=error,
    )
    if result is not None:
        execution.functional_digest = _functional_digest(device, specs)
        execution.arch_digest = _arch_digest(device, result)
        execution.observables = {
            "makespan": result.cycles,
            "stolen_blocks": float(result.stolen_blocks),
            "faults_raised": float(result.fault_stats.faults_raised),
            "injections": float(
                chaos.total_injections if chaos is not None else 0
            ),
        }
    return execution


def run_mc_scenario(
    name: str,
    max_executions: int = 64,
    max_depth: int = 48,
    max_branch: int = 3,
    scheme: str = "replay-queue",
    policy: str = "partition",
    time_scale: float = MC_TIME_SCALE,
    cycle_budget: float = MC_CYCLE_BUDGET,
    counters=None,
) -> ExplorationReport:
    """Explore one scenario's schedule space within budget; returns the
    full :class:`~repro.mc.explorer.ExplorationReport`."""
    scenario = get_mc_scenario(name)

    def run(trace: Tuple[int, ...]) -> Execution:
        return execute_trace(
            scenario, trace, scheme=scheme, policy=policy,
            time_scale=time_scale, cycle_budget=cycle_budget,
        )

    explorer = Explorer(
        run,
        max_executions=max_executions,
        max_depth=max_depth,
        max_branch=max_branch,
        counters=counters,
    )
    return explorer.explore(scenario_name=name)


def replay_trace(
    name: str,
    trace: Tuple[int, ...],
    scheme: str = "replay-queue",
    policy: str = "partition",
    time_scale: float = MC_TIME_SCALE,
    cycle_budget: float = MC_CYCLE_BUDGET,
) -> Execution:
    """Replay one recorded choice trace of a scenario (the
    counterexample debugging entry point, ``mc --replay``)."""
    return execute_trace(
        get_mc_scenario(name), tuple(trace), scheme=scheme, policy=policy,
        time_scale=time_scale, cycle_budget=cycle_budget,
    )
