"""Bounded model checking of stream/fault schedules (docs/MODELCHECK.md).

The simulator is deterministic; all its concurrency nondeterminism is
funneled through explicit :class:`SchedulePoint` decision sites
(cross-stream steal order, fault-queue service order, chaos injection,
interconnect packet reordering).  :class:`ScheduleControl` records and
replays choice traces; :class:`Explorer` enumerates the trace space
DFS-style under budgets with independence-based pruning, verifying
every interleaving with the invariant sanitizer and cross-checking
functional/architectural digests.  ``python -m repro.harness mc`` is
the CLI entry point.
"""

from .explorer import (
    CLEAN,
    Counterexample,
    Execution,
    ExplorationReport,
    Explorer,
    digest_points,
)
from .scenarios import (
    DEFAULT_MC_SCENARIOS,
    MC_SCENARIOS,
    McScenario,
    execute_trace,
    get_mc_scenario,
    replay_trace,
    run_mc_scenario,
)
from .schedule import (
    SchedulePoint,
    ScheduleControl,
    TraceDivergence,
    independent,
)

__all__ = [
    "CLEAN",
    "Counterexample",
    "DEFAULT_MC_SCENARIOS",
    "Execution",
    "ExplorationReport",
    "Explorer",
    "MC_SCENARIOS",
    "McScenario",
    "SchedulePoint",
    "ScheduleControl",
    "TraceDivergence",
    "digest_points",
    "execute_trace",
    "get_mc_scenario",
    "independent",
    "replay_trace",
    "run_mc_scenario",
]
