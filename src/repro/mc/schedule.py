"""Schedule points: the simulator's controlled nondeterminism, reified.

The simulator is deterministic, but several of its policies are *chosen*
rather than forced — which stream an SM steals from, how deep in the
pending-fault queue a fault's resolution slots, whether a chaos hook
fires at a site.  Each such site is a :class:`SchedulePoint`; a
:class:`ScheduleControl` is the pluggable choice provider the sites
consult (docs/MODELCHECK.md).

The contract that makes bounded model checking work:

- **Default = today.**  With no control attached (the ``schedule=None``
  default everywhere) the sites keep their existing fixed/seeded
  policies, bit-identically — the golden digests and the streams overlap
  digest pin this.  With a control attached but an empty trace, every
  ``choose`` returns choice 0, which each site maps to its legacy
  policy, so the all-zero execution is the canonical one.
- **Trace replay.**  Decision points occur in a deterministic order
  given the choices made before them, so an execution is fully described
  by its choice trace (the tuple of chosen indices in decision order).
  Re-running with that trace as the forced prefix reproduces the
  execution exactly; running with a *prefix* of it explores the subtree
  below that prefix (the explorer's DFS in :mod:`repro.mc.explorer`).

Sites are identified by ``(site, key)``: ``site`` names the kind of
choice (``sched.steal``, ``fault.service_order``, ``chaos.resolve_delay``,
``chaos.pkt_reorder``); ``key`` locates it (``("sm", 3)``,
``("group", 17)``, ``("global",)``) and drives the explorer's
independence pruning — see :func:`independent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class TraceDivergence(Exception):
    """A forced trace did not match the execution it claimed to describe
    (a choice index out of range for its point, or more forced choices
    than decision points).  Always a bug in the caller or a stale trace —
    replaying a trace recorded from the same scenario cannot diverge."""


@dataclass(frozen=True)
class SchedulePoint:
    """One decision the simulator asked a :class:`ScheduleControl` about.

    ``site``
        the kind of choice (``sched.steal``, ``fault.service_order``, ...);
    ``key``
        where it arose — ``("sm", i)``, ``("group", g)`` or ``("global",)``
        — the independence-pruning key (docs/MODELCHECK.md);
    ``choices``
        how many alternatives existed (always >= 2: trivial sites are
        not recorded);
    ``chosen``
        the index actually taken (0 = the legacy default policy);
    ``time``
        simulated time of the decision (informational; 0.0 where the
        site has no clock, e.g. block dispatch).
    """

    site: str
    key: Tuple
    choices: int
    chosen: int
    time: float = 0.0

    def describe(self) -> str:
        key = "/".join(str(k) for k in self.key)
        return (
            f"{self.site}[{key}]: {self.chosen}/{self.choices - 1} "
            f"@t={self.time:g}"
        )


class ScheduleControl:
    """Choice provider threaded through the simulator's decision sites.

    ``trace`` forces the first ``len(trace)`` decision points to the
    given choice indices; every later point takes choice 0 (the legacy
    default).  The control records every point it was asked about in
    ``log``, so after a run ``control.trace()`` is the complete choice
    tuple describing the execution — the explorer's unit of identity.

    One control instance drives exactly one execution: it is stateful
    (the decision cursor) and not reusable across runs.
    """

    def __init__(self, trace: Sequence[int] = ()) -> None:
        self.forced: Tuple[int, ...] = tuple(trace)
        self.log: List[SchedulePoint] = []

    def choose(
        self, site: str, key: Tuple, choices: int, time: float = 0.0
    ) -> int:
        """Decide one schedule point; returns the chosen index.

        Sites call this only when a genuine choice exists; a site with
        one candidate must not consume a decision slot (``choices <= 1``
        returns 0 without recording), so traces stay dense and prefix
        indices line up across replays."""
        if choices <= 1:
            return 0
        idx = len(self.log)
        if idx < len(self.forced):
            pick = self.forced[idx]
            if not 0 <= pick < choices:
                raise TraceDivergence(
                    f"decision {idx} ({site}{key}): forced choice {pick} "
                    f"out of range 0..{choices - 1}"
                )
        else:
            pick = 0
        self.log.append(
            SchedulePoint(
                site=site, key=key, choices=choices, chosen=pick, time=time
            )
        )
        return pick

    def trace(self) -> Tuple[int, ...]:
        """The execution's complete choice trace (decision order)."""
        return tuple(pt.chosen for pt in self.log)

    def __len__(self) -> int:
        return len(self.log)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ScheduleControl forced={self.forced} "
            f"decided={len(self.log)}>"
        )


def independent(a: SchedulePoint, b: SchedulePoint) -> bool:
    """True when two decision points provably cannot interact.

    The pruning relation of docs/MODELCHECK.md: flipping an alternative
    at a point that is independent of every *later* point in the
    execution yields an equivalent-by-symmetry execution, so the
    explorer skips it (persistent-set/sleep-set style).  Conservative by
    construction:

    - same ``(site, key)``: dependent (same queue, same SM, same group);
    - a ``("global",)`` key touches shared state: dependent with
      everything;
    - two steal decisions on different SMs (``("sm", i)`` vs
      ``("sm", j)``, i != j) pull from per-SM dispatch state whose
      cross-SM coupling the queue-candidate sets already capture:
      independent;
    - two service-order decisions for different fault groups
      (``("group", g)`` vs ``("group", h)``): independent;
    - everything else (cross-kind pairs, unknown keys): dependent.
    """
    ka, kb = a.key, b.key
    if ("global",) in (ka, kb):
        return False
    if ka == kb:
        return False
    if ka[0] == kb[0] and ka[0] in ("sm", "group"):
        return True
    return False
