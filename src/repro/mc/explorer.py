"""Bounded DFS over schedule-choice traces (docs/MODELCHECK.md).

The simulator is deterministic once every :class:`~repro.mc.schedule.
SchedulePoint` decision is fixed, so an execution *is* its choice trace
and the space of executions is a tree: node = trace prefix, children =
the alternatives of the first decision point past the prefix.  The
explorer walks that tree depth-first:

1. run the all-default execution (empty prefix — today's behavior);
2. for each executed trace, walk its decision log and schedule every
   unexplored sibling prefix ``trace[:i] + (alt,)`` within budget;
3. verify every execution (sanitizer verdict + digests) as it runs.

Pruning (persistent-set/sleep-set style):

- **seen-prefix dedup** — a prefix is scheduled at most once, ever
  (determinism makes two runs of one prefix identical);
- **independence** — a *scheduling* decision (steal order, fault service
  order) whose point is independent of every later point in its
  execution only permutes symmetric work; its alternatives are skipped.
  Chaos decisions (``chaos.*`` sites) are exempt: their choice injects a
  perturbation rather than reordering one, so position in the trace
  never makes them redundant;
- **budgets** — ``max_branch`` caps the alternatives expanded per point,
  ``max_depth`` caps the expansion depth, ``max_executions`` caps the
  total runs.  Everything skipped is counted, never silently dropped.

Counterexamples: a non-clean execution's trace is minimized greedily —
every nonzero choice is tried at 0 (keeping the reduction when the same
verdict reproduces), then trailing zeros are dropped — and re-validated
by replay, so the reported trace is small *and* known-reproducing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .schedule import SchedulePoint, independent

#: verdict of one execution
CLEAN = "clean"

#: default exploration budgets (CLI/report surface)
DEFAULT_MAX_EXECUTIONS = 64
DEFAULT_MAX_DEPTH = 48
DEFAULT_MAX_BRANCH = 3


@dataclass
class Execution:
    """One verified run of the scenario under a forced trace prefix."""

    #: the complete choice trace the run actually took (prefix + defaults)
    trace: Tuple[int, ...]
    #: the full decision log (one point per trace entry)
    points: List[SchedulePoint]
    #: ``clean`` or the failure kind (``violation``/``hang``/``deadlock``)
    verdict: str
    #: first line of the failure message (None when clean)
    error: Optional[str] = None
    #: sha256 over the data values the kernels produced (None on failure)
    functional_digest: Optional[str] = None
    #: sha256 over the architectural end state (None on failure)
    arch_digest: Optional[str] = None
    #: scenario-reported observables (makespan, stolen blocks, ...)
    observables: Dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.verdict == CLEAN


@dataclass
class Counterexample:
    """A failing execution plus its minimized, replay-validated trace."""

    trace: Tuple[int, ...]
    minimized: Tuple[int, ...]
    verdict: str
    error: Optional[str]
    #: executions spent minimizing (bounded by the explorer's budget)
    replays: int
    #: the decision log of the minimized replay, human-readable
    decisions: List[str] = field(default_factory=list)


@dataclass
class ExplorationReport:
    """Everything one bounded exploration produced (JSON-stable)."""

    scenario: str
    budgets: Dict[str, int]
    executions: List[Execution]
    counterexamples: List[Counterexample]
    pruned: Dict[str, int]
    #: True when the run stopped on max_executions with work still queued
    truncated: bool

    @property
    def explored(self) -> int:
        return len(self.executions)

    @property
    def distinct_traces(self) -> int:
        return len({e.trace for e in self.executions})

    @property
    def all_clean(self) -> bool:
        return all(e.clean for e in self.executions)

    def digest_consistent(self) -> bool:
        """True when every clean execution produced the same functional
        and architectural digests (the cross-interleaving invariant)."""
        fds = {e.functional_digest for e in self.executions if e.clean}
        ads = {e.arch_digest for e in self.executions if e.clean}
        return len(fds) <= 1 and len(ads) <= 1

    def to_dict(self) -> Dict:
        """Canonical (deterministic, timestamp-free) report payload —
        two explorations of the same scenario and budgets serialize
        byte-identically (tests/test_mc.py pins this)."""
        return {
            "scenario": self.scenario,
            "budgets": dict(self.budgets),
            "explored": self.explored,
            "distinct_traces": self.distinct_traces,
            "truncated": self.truncated,
            "pruned": dict(self.pruned),
            "all_clean": self.all_clean,
            "digest_consistent": self.digest_consistent(),
            "verdicts": self._verdict_tally(),
            "functional_digests": sorted(
                {e.functional_digest for e in self.executions
                 if e.functional_digest}
            ),
            "arch_digests": sorted(
                {e.arch_digest for e in self.executions if e.arch_digest}
            ),
            "executions": [
                {
                    "trace": list(e.trace),
                    "verdict": e.verdict,
                    "decisions": len(e.points),
                    "observables": {
                        k: e.observables[k] for k in sorted(e.observables)
                    },
                }
                for e in self.executions
            ],
            "counterexamples": [
                {
                    "trace": list(c.trace),
                    "minimized": list(c.minimized),
                    "verdict": c.verdict,
                    "error": c.error,
                    "replays": c.replays,
                    "decisions": list(c.decisions),
                }
                for c in self.counterexamples
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def _verdict_tally(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for e in self.executions:
            tally[e.verdict] = tally.get(e.verdict, 0) + 1
        return dict(sorted(tally.items()))

    def summary(self) -> str:
        lines = [
            f"mc:{self.scenario}: explored {self.explored} execution(s) "
            f"({self.distinct_traces} distinct trace(s))"
            + (" [budget exhausted]" if self.truncated else ""),
            f"  pruned: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.pruned.items())),
            f"  verdicts: "
            + ", ".join(f"{k}={v}"
                        for k, v in self._verdict_tally().items()),
            f"  digests consistent: {self.digest_consistent()}",
        ]
        for ce in self.counterexamples:
            lines.append(
                f"  counterexample: trace {list(ce.trace)} -> "
                f"{ce.verdict}; minimized to {list(ce.minimized)} "
                f"({ce.replays} replay(s))"
            )
            for d in ce.decisions:
                lines.append(f"    {d}")
        return "\n".join(lines)


def digest_points(points: Sequence[SchedulePoint]) -> str:
    """Stable digest of a decision log (report/debugging aid)."""
    blob = json.dumps(
        [[p.site, list(p.key), p.choices, p.chosen, p.time] for p in points],
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


class Explorer:
    """Bounded DFS with pruning over one scenario's schedule tree.

    ``run`` executes the scenario under a forced trace prefix and returns
    an :class:`Execution` (see :mod:`repro.mc.scenarios`); the explorer
    never looks inside the simulator — determinism plus the decision log
    are its whole interface.  ``counters`` (a
    :class:`repro.telemetry.counters.CounterRegistry` or None) receives
    the ``mc.*`` tallies as exploration proceeds.
    """

    def __init__(
        self,
        run: Callable[[Tuple[int, ...]], Execution],
        max_executions: int = DEFAULT_MAX_EXECUTIONS,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_branch: int = DEFAULT_MAX_BRANCH,
        counters=None,
    ) -> None:
        if max_executions < 1:
            raise ValueError("max_executions must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if max_branch < 2:
            raise ValueError("max_branch must be >= 2 (1 never branches)")
        self.run = run
        self.max_executions = max_executions
        self.max_depth = max_depth
        self.max_branch = max_branch
        self.counters = counters

    def _count(self, leaf: str, n: int = 1) -> None:
        if self.counters is not None and n:
            self.counters.counter(f"mc.{leaf}").add(n)

    # ------------------------------------------------------------------

    def explore(self, scenario_name: str = "scenario") -> ExplorationReport:
        """Run the bounded DFS; returns the full report."""
        pruned = {"independence": 0, "branch_budget": 0, "depth_budget": 0,
                  "seen_prefix": 0, "duplicate_cex": 0}
        executions: List[Execution] = []
        counterexamples: List[Counterexample] = []
        #: minimized (trace, verdict) pairs already reported — distinct
        #: failing traces often reduce to the same root cause
        cex_seen: set = set()
        #: DFS stack of forced prefixes still to execute (LIFO = deeper
        #: siblings first, so counterexamples near the default surface
        #: early); seeded with the all-default execution
        stack: List[Tuple[int, ...]] = [()]
        seen: set = {()}
        truncated = False

        while stack:
            if len(executions) >= self.max_executions:
                truncated = True
                break
            prefix = stack.pop()
            execution = self.run(prefix)
            executions.append(execution)
            self._count("executions")
            if not execution.clean:
                self._count("violations")
                budget = self.max_executions - len(executions)
                ce, spent = self._minimize(execution, budget)
                self._count("minimize_replays", spent)
                key = (ce.minimized, ce.verdict)
                if key in cex_seen:
                    pruned["duplicate_cex"] += 1
                else:
                    cex_seen.add(key)
                    counterexamples.append(ce)
                # A failing subtree is not expanded: the counterexample
                # is the finding, and its siblings would mostly re-fail.
                continue
            self._expand(execution, prefix, stack, seen, pruned)

        for leaf, n in pruned.items():
            self._count(f"pruned.{leaf}", n)
        if truncated:
            self._count("truncated")
        report = ExplorationReport(
            scenario=scenario_name,
            budgets={
                "max_executions": self.max_executions,
                "max_depth": self.max_depth,
                "max_branch": self.max_branch,
            },
            executions=executions,
            counterexamples=counterexamples,
            pruned=pruned,
            truncated=truncated,
        )
        self._count("distinct_traces", report.distinct_traces)
        return report

    # ------------------------------------------------------------------

    def _expand(
        self,
        execution: Execution,
        prefix: Tuple[int, ...],
        stack: List[Tuple[int, ...]],
        seen: set,
        pruned: Dict[str, int],
    ) -> None:
        """Schedule every in-budget, non-pruned sibling prefix of one
        clean execution: positions past the forced prefix, alternatives
        1..min(choices, max_branch)-1."""
        points = execution.points
        limit = min(len(points), self.max_depth)
        if len(points) > self.max_depth:
            pruned["depth_budget"] += sum(
                min(p.choices, self.max_branch) - 1
                for p in points[self.max_depth:]
            )
        for i in range(len(prefix), limit):
            pt = points[i]
            if pt.choices > self.max_branch:
                pruned["branch_budget"] += pt.choices - self.max_branch
            alts = min(pt.choices, self.max_branch)
            if self._prunable(pt, points[i + 1:]):
                pruned["independence"] += alts - 1
                continue
            base = execution.trace[:i]
            for alt in range(1, alts):
                candidate = base + (alt,)
                if candidate in seen:
                    pruned["seen_prefix"] += 1
                    continue
                seen.add(candidate)
                stack.append(candidate)

    def _prunable(
        self, pt: SchedulePoint, later: Sequence[SchedulePoint]
    ) -> bool:
        """Independence pruning: a *scheduling* decision independent of
        every later decision only permutes symmetric work (same verdict,
        same functional/architectural digests), so its alternatives are
        redundant for the properties we verify.  Chaos decisions are
        never prunable — their alternative injects a perturbation rather
        than reordering one."""
        if pt.site.startswith("chaos."):
            return False
        return all(independent(pt, lp) for lp in later)

    # ------------------------------------------------------------------

    def _minimize(
        self, execution: Execution, budget: int
    ) -> Tuple[Counterexample, int]:
        """Greedy delta-minimization of a failing trace: try zeroing each
        nonzero choice (keep the zero when the same verdict reproduces),
        then drop trailing zeros.  Every reduction step is a full replay,
        bounded by ``budget``; the final minimized trace is validated by
        one more replay, so the reported trace is known-reproducing."""
        trace = list(execution.trace)
        verdict = execution.verdict
        spent = 0
        changed = True
        while changed and spent < budget:
            changed = False
            for i, choice in enumerate(trace):
                if choice == 0:
                    continue
                if spent >= budget:
                    break
                candidate = list(trace)
                candidate[i] = 0
                replay = self.run(tuple(candidate))
                spent += 1
                if replay.verdict == verdict:
                    trace = candidate
                    changed = True
        while trace and trace[-1] == 0:
            trace.pop()
        minimized = tuple(trace)
        decisions: List[str] = []
        final_verdict = verdict
        error = execution.error
        if spent < budget or minimized != execution.trace:
            validate = self.run(minimized)
            spent += 1
            final_verdict = validate.verdict
            error = validate.error or error
            decisions = [
                pt.describe()
                for pt in validate.points[:len(minimized) or 1]
            ]
        return (
            Counterexample(
                trace=execution.trace,
                minimized=minimized,
                verdict=final_verdict,
                error=error,
                replays=spent,
                decisions=decisions,
            ),
            spent,
        )
