"""Trace serialization: save/load dynamic kernel traces to disk.

Functional simulation is the expensive front end of the methodology; a
saved trace can be replayed through the timing simulator (any scheme, any
configuration) without re-executing the kernel.  The format is a compact
JSON container: the static kernel instructions are encoded once and the
per-warp dynamic streams reference them by pc.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Union

from repro.isa import Imm, Instruction, Kernel, Opcode, Param, Pred, Reg, Special, SReg

from .trace import BlockTrace, KernelTrace, TraceInst, WarpTrace

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# operand / instruction codecs
# ---------------------------------------------------------------------------

def _encode_operand(op) -> Dict:
    if isinstance(op, Reg):
        return {"k": "r", "i": op.index}
    if isinstance(op, Pred):
        return {"k": "p", "i": op.index}
    if isinstance(op, Imm):
        return {"k": "i", "v": op.value}
    if isinstance(op, SReg):
        return {"k": "s", "v": op.kind.value}
    if isinstance(op, Param):
        return {"k": "a", "i": op.index}
    raise TypeError(f"cannot encode operand {op!r}")


def _decode_operand(data: Dict):
    kind = data["k"]
    if kind == "r":
        return Reg(data["i"])
    if kind == "p":
        return Pred(data["i"])
    if kind == "i":
        return Imm(data["v"])
    if kind == "s":
        return SReg(Special(data["v"]))
    if kind == "a":
        return Param(data["i"])
    raise ValueError(f"unknown operand kind {kind!r}")


def _encode_instruction(inst: Instruction) -> Dict:
    out: Dict = {"op": inst.op.value}
    if inst.dest is not None:
        out["d"] = _encode_operand(inst.dest)
    if inst.srcs:
        out["s"] = [_encode_operand(s) for s in inst.srcs]
    if inst.guard is not None:
        out["g"] = inst.guard.index
        if inst.guard_negate:
            out["gn"] = True
    for attr, key in (
        ("target", "t"), ("reconv", "rc"), ("offset", "o"), ("cmp", "c"),
        ("atom", "at"),
    ):
        value = getattr(inst, attr)
        if value not in (None, 0):
            out[key] = value
    if inst.width != 4:
        out["w"] = inst.width
    return out


def _decode_instruction(data: Dict) -> Instruction:
    return Instruction(
        op=Opcode(data["op"]),
        dest=_decode_operand(data["d"]) if "d" in data else None,
        srcs=tuple(_decode_operand(s) for s in data.get("s", ())),
        guard=Pred(data["g"]) if "g" in data else None,
        guard_negate=data.get("gn", False),
        target=data.get("t"),
        reconv=data.get("rc"),
        offset=data.get("o", 0),
        width=data.get("w", 4),
        cmp=data.get("c"),
        atom=data.get("at"),
    )


# ---------------------------------------------------------------------------
# kernel + trace containers
# ---------------------------------------------------------------------------

def encode_kernel(kernel: Kernel) -> Dict:
    return {
        "name": kernel.name,
        "regs_per_thread": kernel.regs_per_thread,
        "smem_bytes_per_block": kernel.smem_bytes_per_block,
        "instructions": [
            _encode_instruction(i) for i in kernel.instructions
        ],
    }


def decode_kernel(data: Dict) -> Kernel:
    kernel = Kernel(
        name=data["name"],
        instructions=[_decode_instruction(i) for i in data["instructions"]],
        regs_per_thread=data["regs_per_thread"],
        smem_bytes_per_block=data["smem_bytes_per_block"],
    )
    kernel.validate()
    return kernel


def save_trace(trace: KernelTrace, kernel: Kernel, fp: Union[str, IO]) -> None:
    """Write ``trace`` (with its kernel) to a path or file object."""
    doc = {
        "version": FORMAT_VERSION,
        "kernel": encode_kernel(kernel),
        "grid_dim": trace.grid_dim,
        "block_dim": trace.block_dim,
        "blocks": [
            {
                "id": block.block_id,
                "warps": [
                    {
                        "id": warp.warp_id,
                        "insts": [
                            [t.pc, t.active, list(t.addresses or ())]
                            for t in warp.instructions
                        ],
                    }
                    for warp in block.warps
                ],
            }
            for block in trace.blocks
        ],
    }
    if isinstance(fp, str):
        with open(fp, "w") as f:
            json.dump(doc, f)
    else:
        json.dump(doc, fp)


def load_trace(fp: Union[str, IO]):
    """Load ``(kernel, trace)`` previously written by :func:`save_trace`."""
    if isinstance(fp, str):
        with open(fp) as f:
            doc = json.load(f)
    else:
        doc = json.load(fp)
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format {doc.get('version')!r}")
    kernel = decode_kernel(doc["kernel"])
    trace = KernelTrace(
        kernel_name=kernel.name,
        grid_dim=doc["grid_dim"],
        block_dim=doc["block_dim"],
    )
    for bdoc in doc["blocks"]:
        block = BlockTrace(block_id=bdoc["id"])
        for wdoc in bdoc["warps"]:
            warp = WarpTrace(warp_id=wdoc["id"])
            for pc, active, addrs in wdoc["insts"]:
                warp.append(
                    TraceInst(
                        pc=pc,
                        inst=kernel.instructions[pc],
                        active=active,
                        addresses=tuple(addrs) if addrs else None,
                    )
                )
            block.warps.append(warp)
        trace.blocks.append(block)
    return kernel, trace
