"""Execution-driven SIMT functional simulator.

Executes kernels of the mini ISA with full register/memory values, 32-lane
warps, a per-warp SIMT divergence (reconvergence) stack, predication, shared
memory, block barriers, global atomics, and device-side ``malloc`` backed by
the :class:`~repro.vm.heap.DeviceHeap`.  While executing it emits the dynamic
per-warp traces that drive the timing simulator.

The divergence model is the classic PDOM stack: each entry is
``(pc, reconvergence_pc, active_mask)``; a divergent branch converts the
current entry into the reconvergence entry and pushes one entry per path;
an entry whose pc reaches its reconvergence pc is popped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.isa import Instruction, Kernel, Opcode, Param, Pred, Reg, Special, SReg
from repro.vm import AddressSpace, DeviceHeap, SparseMemory

from .trace import BlockTrace, KernelTrace, TraceInst, WarpTrace

WARP_SIZE = 32

#: the all-lanes-active mask, shared read-only by every undiverged warp.
#: Masks are never mutated in place (consumers rebind), so aliasing one
#: array is safe, and ``mask is _FULL_MASK`` gives the interpreter an O(1)
#: "no divergence, no guard" test that skips masked numpy blends entirely.
_FULL_MASK = np.ones(WARP_SIZE, dtype=bool)
_FULL_MASK.setflags(write=False)


class FunctionalError(Exception):
    """Raised on malformed programs or runtime errors (e.g. bad free)."""


class TrapRaised(Exception):
    """Raised when a kernel executes TRAP with any active lane."""


@dataclass
class Launch:
    """A kernel launch: grid/block geometry plus parameter values."""

    kernel: Kernel
    grid_dim: int
    block_dim: int
    params: Sequence[float] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.block_dim <= 0 or self.block_dim % WARP_SIZE:
            raise ValueError("block_dim must be a positive multiple of 32")
        if self.grid_dim <= 0:
            raise ValueError("grid_dim must be positive")

    @property
    def warps_per_block(self) -> int:
        return self.block_dim // WARP_SIZE


class _StackEntry:
    __slots__ = ("pc", "rpc", "mask", "alive")

    def __init__(self, pc: int, rpc: Optional[int], mask: np.ndarray) -> None:
        self.pc = pc
        self.rpc = rpc
        self.mask = mask
        # cached ``mask.any()`` — masks only change at EXIT, which refreshes
        # this; saves a numpy reduction per dynamic instruction in ``_step``
        self.alive = bool(mask.any())


class WarpState:
    """Architectural state of one warp (registers, predicates, SIMT stack)."""

    def __init__(self, warp_id: int, block_id: int, launch: Launch) -> None:
        self.warp_id = warp_id
        self.block_id = block_id
        self.launch = launch
        kernel = launch.kernel
        self.regs = np.zeros((WARP_SIZE, max(kernel.regs_per_thread, 1)), dtype=float)
        self.preds = np.zeros((WARP_SIZE, 8), dtype=bool)
        first_thread = warp_id * WARP_SIZE
        live = min(WARP_SIZE, launch.block_dim - first_thread)
        if live >= WARP_SIZE:  # always, given block_dim % WARP_SIZE == 0
            mask = _FULL_MASK
        else:  # pragma: no cover - unreachable under Launch validation
            mask = np.zeros(WARP_SIZE, dtype=bool)
            mask[:live] = True
        self.stack: List[_StackEntry] = [_StackEntry(0, None, mask)]
        self.at_barrier = False
        self.done = False
        self.tid = np.arange(first_thread, first_thread + WARP_SIZE)
        self.lane = np.arange(WARP_SIZE)

    @property
    def global_warp_id(self) -> int:
        return self.block_id * self.launch.warps_per_block + self.warp_id


class Interpreter:
    """Executes launches and collects :class:`KernelTrace` objects."""

    def __init__(
        self,
        memory: Optional[SparseMemory] = None,
        address_space: Optional[AddressSpace] = None,
        heap: Optional[DeviceHeap] = None,
        collect_trace: bool = True,
        max_dynamic_instructions: int = 50_000_000,
    ) -> None:
        self.memory = memory if memory is not None else SparseMemory()
        self.address_space = address_space
        self.heap = heap
        self.collect_trace = collect_trace
        self.max_dynamic_instructions = max_dynamic_instructions
        self._executed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, launch: Launch) -> KernelTrace:
        """Execute every block of ``launch`` and return its trace."""
        launch.kernel.validate()
        trace = KernelTrace(
            kernel_name=launch.kernel.name,
            grid_dim=launch.grid_dim,
            block_dim=launch.block_dim,
        )
        for block_id in range(launch.grid_dim):
            trace.blocks.append(self.run_block(launch, block_id))
        return trace

    def run_block(self, launch: Launch, block_id: int) -> BlockTrace:
        """Execute one thread block (all its warps, honouring barriers)."""
        warps = [
            WarpState(w, block_id, launch) for w in range(launch.warps_per_block)
        ]
        shared = SparseMemory()
        block_trace = BlockTrace(block_id=block_id)
        wtraces = [WarpTrace(warp_id=w.warp_id) for w in warps]

        while not all(w.done for w in warps):
            progressed = False
            for warp, wtrace in zip(warps, wtraces):
                if warp.done or warp.at_barrier:
                    continue
                progressed = True
                # Run the warp until it blocks (barrier) or finishes.
                while not warp.done and not warp.at_barrier:
                    self._step(warp, shared, wtrace)
            if all(w.at_barrier for w in warps if not w.done):
                for w in warps:
                    w.at_barrier = False
            elif not progressed:  # pragma: no cover - deadlock guard
                raise FunctionalError(
                    f"block {block_id}: deadlock (barrier divergence?)"
                )
        block_trace.warps = wtraces
        return block_trace

    # ------------------------------------------------------------------
    # single-step execution (also used directly by replay-semantics tests)
    # ------------------------------------------------------------------

    def _step(self, warp: WarpState, shared: SparseMemory, wtrace: WarpTrace) -> None:
        stack = warp.stack
        # Pop reconverged / emptied entries.
        while stack and (
            not stack[-1].alive or stack[-1].pc == stack[-1].rpc
        ):
            stack.pop()
        if not stack:
            warp.done = True
            return
        top = stack[-1]
        program = warp.launch.kernel.instructions
        if not 0 <= top.pc < len(program):
            raise FunctionalError(f"pc {top.pc} out of range")
        inst = program[top.pc]

        # Masks are never mutated in place (every consumer rebinds), so the
        # unguarded common case can alias the stack mask instead of copying.
        if inst.guard is None:
            exec_mask = top.mask
        else:
            guard_vals = warp.preds[:, inst.guard.index]
            if inst.guard_negate:
                guard_vals = ~guard_vals
            exec_mask = top.mask & guard_vals

        self._executed += 1
        if self._executed > self.max_dynamic_instructions:
            raise FunctionalError("dynamic instruction budget exceeded")

        addresses = self.execute(inst, warp, exec_mask, shared)

        op = inst.op
        if self.collect_trace and op is not Opcode.NOP:
            wtrace.append(
                TraceInst(
                    pc=top.pc,
                    inst=inst,
                    active=(
                        WARP_SIZE
                        if exec_mask is _FULL_MASK
                        else int(np.count_nonzero(exec_mask))
                    ),
                    addresses=addresses,
                )
            )

        # Inlined _advance common case: plain fall-through instructions.
        if op is Opcode.EXIT or op is Opcode.BAR or op is Opcode.BRA:
            self._advance(inst, warp, top, exec_mask)
        else:
            top.pc += 1

    def _advance(
        self,
        inst: Instruction,
        warp: WarpState,
        top: _StackEntry,
        exec_mask: np.ndarray,
    ) -> None:
        if inst.op is Opcode.EXIT:
            if exec_mask.any():
                for entry in warp.stack:
                    entry.mask = entry.mask & ~exec_mask
                    entry.alive = bool(entry.mask.any())
            if not any(e.alive for e in warp.stack):
                warp.done = True
                return
            top.pc += 1
            return
        if inst.op is Opcode.BAR:
            warp.at_barrier = True
            top.pc += 1
            return
        if inst.op is Opcode.BRA:
            taken = exec_mask  # guard already applied: guarded lanes take it
            active = top.mask
            not_taken = active & ~taken
            if not taken.any():
                top.pc += 1
            elif not not_taken.any():
                top.pc = inst.target
            else:
                if inst.reconv is None:
                    raise FunctionalError(
                        f"divergent branch at pc {top.pc} without reconvergence"
                    )
                fall_pc = top.pc + 1
                top.pc = inst.reconv  # current entry becomes the join point
                warp.stack.append(_StackEntry(fall_pc, inst.reconv, not_taken))
                warp.stack.append(_StackEntry(inst.target, inst.reconv, taken))
            return
        top.pc += 1

    # ------------------------------------------------------------------
    # instruction semantics
    # ------------------------------------------------------------------

    def _read(self, operand, warp: WarpState):
        if isinstance(operand, Reg):
            return warp.regs[:, operand.index]
        if isinstance(operand, Pred):
            return warp.preds[:, operand.index]
        if isinstance(operand, SReg):
            launch = warp.launch
            kind = operand.kind
            if kind is Special.TID:
                return warp.tid
            if kind is Special.CTAID:
                return warp.block_id
            if kind is Special.NTID:
                return launch.block_dim
            if kind is Special.NCTAID:
                return launch.grid_dim
            if kind is Special.LANE:
                return warp.lane
            if kind is Special.WARPID:
                return warp.warp_id
            raise FunctionalError(f"unknown special register {kind}")
        if isinstance(operand, Param):
            try:
                return warp.launch.params[operand.index]
            except IndexError:
                raise FunctionalError(
                    f"kernel reads param[{operand.index}] but launch has "
                    f"{len(warp.launch.params)} params"
                ) from None
        # Imm
        return operand.value

    def _write_reg(self, dest: Reg, warp: WarpState, mask: np.ndarray, value) -> None:
        if mask is _FULL_MASK:  # no blend needed: every lane writes
            warp.regs[:, dest.index] = value
            return
        col = warp.regs[:, dest.index]
        warp.regs[:, dest.index] = np.where(mask, value, col)

    def _write_pred(self, dest: Pred, warp: WarpState, mask: np.ndarray, value) -> None:
        if mask is _FULL_MASK:
            warp.preds[:, dest.index] = value
            return
        col = warp.preds[:, dest.index]
        warp.preds[:, dest.index] = np.where(mask, value, col)

    _CMP = {
        "lt": np.less,
        "le": np.less_equal,
        "gt": np.greater,
        "ge": np.greater_equal,
        "eq": np.equal,
        "ne": np.not_equal,
    }

    def execute(
        self,
        inst: Instruction,
        warp: WarpState,
        mask: np.ndarray,
        shared: SparseMemory,
    ):
        """Apply ``inst``'s semantics for lanes in ``mask``.

        Returns the tuple of byte addresses accessed (memory instructions
        with at least one active lane) or ``None``.

        Dispatch runs on a per-static-instruction execution plan
        (:func:`_plan`: a small kind integer plus the resolved ufunc),
        computed once and cached on the instruction — the same memoization
        idea as the timing decode cache (docs/PERFORMANCE.md)."""
        srcs = inst.srcs
        kind, fn = _plan(inst)

        # The dispatch chain is ordered by dynamic frequency (arithmetic,
        # then memory); register source operands — the overwhelmingly common
        # kind — read inline instead of through ``_read``.
        regs = warp.regs
        if kind == _K_BINOP:
            o = srcs[0]
            a = regs[:, o.index] if type(o) is Reg else self._read(o, warp)
            o = srcs[1]
            b = regs[:, o.index] if type(o) is Reg else self._read(o, warp)
            self._write_reg(inst.dest, warp, mask, fn(a, b))
            return None
        if kind == _K_MAD:
            o = srcs[0]
            a = regs[:, o.index] if type(o) is Reg else self._read(o, warp)
            o = srcs[1]
            b = regs[:, o.index] if type(o) is Reg else self._read(o, warp)
            o = srcs[2]
            c = regs[:, o.index] if type(o) is Reg else self._read(o, warp)
            val = a * b + c
            if inst.op is Opcode.IMAD:
                val = np.floor(val + 0.5 * np.sign(val))
            self._write_reg(inst.dest, warp, mask, val)
            return None
        if kind == _K_LD:
            mem = self.memory if inst.op is Opcode.LD_GLOBAL else shared
            base = self._read(srcs[0], warp)
            addrs = self._lane_addresses(base, inst, mask)
            if addrs:
                width = inst.width
                try:
                    vals = mem.load_many(addrs, width)
                except AttributeError:
                    vals = [mem.load(a, width) for a in addrs]
                if mask is _FULL_MASK:
                    warp.regs[:, inst.dest.index] = vals
                else:
                    warp.regs[mask, inst.dest.index] = vals
                return tuple(addrs)
            return None
        if kind == _K_ST:
            mem = self.memory if inst.op is Opcode.ST_GLOBAL else shared
            base = self._read(srcs[0], warp)
            value = _warp_f64(self._read(srcs[1], warp))
            addrs = self._lane_addresses(base, inst, mask)
            if addrs:
                width = inst.width
                vals = (value if mask is _FULL_MASK else value[mask]).tolist()
                try:
                    mem.store_many(addrs, vals, width)
                except AttributeError:
                    for addr, v in zip(addrs, vals):
                        mem.store(addr, v, width)
                return tuple(addrs)
            return None
        if kind == _K_SFU:
            a = self._read(srcs[0], warp)
            if fn is None:  # FDIV: the only two-source SFU op
                b = self._read(srcs[1], warp)
                with np.errstate(divide="ignore", invalid="ignore"):
                    val = np.where(np.asarray(b) != 0, a / np.where(b == 0, 1, b), 0.0)
            else:
                val = fn(np.asarray(a, dtype=float))
            self._write_reg(inst.dest, warp, mask, val)
            return None
        if kind == _K_MOV:
            val = self._read(srcs[0], warp)
            if isinstance(inst.dest, Pred):
                self._write_pred(inst.dest, warp, mask, val)
            else:
                self._write_reg(inst.dest, warp, mask, val)
            return None
        if kind == _K_CVT:
            val = self._read(srcs[0], warp)
            if inst.op is Opcode.F2I:
                val = np.trunc(val)
            self._write_reg(inst.dest, warp, mask, val)
            return None
        if kind == _K_SEL:
            p = self._read(srcs[0], warp)
            a = self._read(srcs[1], warp)
            b = self._read(srcs[2], warp)
            self._write_reg(inst.dest, warp, mask, np.where(p, a, b))
            return None
        if kind == _K_SETP:
            a = self._read(srcs[0], warp)
            b = self._read(srcs[1], warp)
            if inst.cmp not in self._CMP:
                raise FunctionalError(f"bad comparison {inst.cmp!r}")
            self._write_pred(inst.dest, warp, mask, self._CMP[inst.cmp](a, b))
            return None
        if kind == _K_ATOM:
            base = self._read(srcs[0], warp)
            value = _warp_f64(self._read(srcs[1], warp))
            addrs = self._lane_addresses(base, inst, mask)
            atom = inst.atom or "add"
            vals = (value if mask is _FULL_MASK else value[mask]).tolist()
            olds = [
                self.memory.atomic(addr, atom, v)
                for addr, v in zip(addrs, vals)
            ]
            if inst.dest is not None and addrs:
                if mask is _FULL_MASK:
                    warp.regs[:, inst.dest.index] = olds
                else:
                    warp.regs[mask, inst.dest.index] = olds
            return tuple(addrs) if addrs else None
        if kind == _K_MALLOC:
            if self.heap is None:
                raise FunctionalError("MALLOC executed but no device heap attached")
            size = self._read(srcs[0], warp)
            size = np.broadcast_to(np.asarray(size, dtype=float), (WARP_SIZE,))
            ptrs = warp.regs[:, inst.dest.index].copy()
            for lane in np.flatnonzero(mask):
                ptrs[lane] = self.heap.malloc(warp.global_warp_id, int(size[lane]))
            warp.regs[:, inst.dest.index] = ptrs
            return None
        if kind == _K_FREE:
            if self.heap is None:
                raise FunctionalError("FREE executed but no device heap attached")
            ptr = self._read(srcs[0], warp)
            ptr = np.broadcast_to(np.asarray(ptr, dtype=float), (WARP_SIZE,))
            for lane in np.flatnonzero(mask):
                self.heap.free(warp.global_warp_id, int(ptr[lane]))
            return None
        if kind == _K_TRAP:
            if mask.any():
                raise TrapRaised(
                    f"trap in block {warp.block_id} warp {warp.warp_id}"
                )
            return None
        if kind == _K_CTRL:
            return None
        raise FunctionalError(f"unimplemented opcode {inst.op}")

    def _lane_addresses(self, base, inst: Instruction, mask: np.ndarray) -> list:
        # truncation toward zero, exactly like the per-lane int() it replaces
        arr = _warp_f64(base)
        if mask is not _FULL_MASK:
            arr = arr[mask]
        return (arr.astype(np.int64) + inst.offset).tolist()


_INT_BINOPS = {
    Opcode.IADD: np.add,
    Opcode.ISUB: np.subtract,
    Opcode.IMUL: np.multiply,
    Opcode.IMIN: np.minimum,
    Opcode.IMAX: np.maximum,
    Opcode.SHL: lambda a, b: np.asarray(a, dtype=np.int64) << np.asarray(b, dtype=np.int64),
    Opcode.SHR: lambda a, b: np.asarray(a, dtype=np.int64) >> np.asarray(b, dtype=np.int64),
    Opcode.AND: lambda a, b: np.asarray(a, dtype=np.int64) & np.asarray(b, dtype=np.int64),
    Opcode.OR: lambda a, b: np.asarray(a, dtype=np.int64) | np.asarray(b, dtype=np.int64),
    Opcode.XOR: lambda a, b: np.asarray(a, dtype=np.int64) ^ np.asarray(b, dtype=np.int64),
}

_FLOAT_BINOPS = {
    Opcode.FADD: np.add,
    Opcode.FSUB: np.subtract,
    Opcode.FMUL: np.multiply,
    Opcode.FMIN: np.minimum,
    Opcode.FMAX: np.maximum,
}

_SFU_OPS = {
    Opcode.FDIV: None,  # handled inline (two sources)
    Opcode.FSQRT: lambda a: np.sqrt(np.abs(a)),
    Opcode.FRSQRT: lambda a: 1.0 / np.sqrt(np.maximum(np.abs(a), 1e-30)),
    Opcode.FSIN: np.sin,
    Opcode.FCOS: np.cos,
    Opcode.FEXP: lambda a: np.exp(np.clip(a, -80, 80)),
    Opcode.FLOG: lambda a: np.log(np.maximum(np.abs(a), 1e-30)),
}

_F64 = np.dtype(np.float64)
_WSHAPE = (WARP_SIZE,)


def _warp_f64(val) -> np.ndarray:
    """A ``(WARP_SIZE,)`` float64 vector of ``val``.

    Register-column reads already have that exact shape and dtype — the
    common case — so they pass through untouched; scalars and predicate
    vectors take the original asarray+broadcast path (same values)."""
    if type(val) is np.ndarray and val.dtype == _F64 and val.shape == _WSHAPE:
        return val
    return np.broadcast_to(np.asarray(val, dtype=float), _WSHAPE)


# Execution-plan kinds.  ``_plan`` classifies a static instruction once —
# resolving the opcode's category and its ufunc — and caches the result on
# the instruction object, so the hot ``execute`` path dispatches on a small
# integer instead of re-testing enum-dict membership per dynamic record.
_K_BINOP = 0
_K_MAD = 1
_K_SFU = 2
_K_MOV = 3
_K_CVT = 4
_K_SEL = 5
_K_SETP = 6
_K_LD = 7
_K_ST = 8
_K_ATOM = 9
_K_MALLOC = 10
_K_FREE = 11
_K_TRAP = 12
_K_CTRL = 13
_K_UNKNOWN = 14


def _classify(op) -> tuple:
    # Same category order as the original chained membership tests (no
    # opcode appears in more than one table, so order is cosmetic).
    if op in _INT_BINOPS:
        return (_K_BINOP, _INT_BINOPS[op])
    if op in _FLOAT_BINOPS:
        return (_K_BINOP, _FLOAT_BINOPS[op])
    if op is Opcode.IMAD or op is Opcode.FFMA:
        return (_K_MAD, None)
    if op in _SFU_OPS:
        return (_K_SFU, _SFU_OPS[op])
    if op is Opcode.MOV:
        return (_K_MOV, None)
    if op is Opcode.I2F or op is Opcode.F2I:
        return (_K_CVT, None)
    if op is Opcode.SEL:
        return (_K_SEL, None)
    if op is Opcode.ISETP or op is Opcode.FSETP:
        return (_K_SETP, None)
    if op is Opcode.LD_GLOBAL or op is Opcode.LD_SHARED:
        return (_K_LD, None)
    if op is Opcode.ST_GLOBAL or op is Opcode.ST_SHARED:
        return (_K_ST, None)
    if op is Opcode.ATOM_GLOBAL:
        return (_K_ATOM, None)
    if op is Opcode.MALLOC:
        return (_K_MALLOC, None)
    if op is Opcode.FREE:
        return (_K_FREE, None)
    if op is Opcode.TRAP:
        return (_K_TRAP, None)
    if op in (Opcode.BRA, Opcode.BAR, Opcode.EXIT, Opcode.NOP):
        return (_K_CTRL, None)
    return (_K_UNKNOWN, None)


def _plan(inst: Instruction) -> tuple:
    """Memoized ``(kind, fn)`` execution plan for a static instruction.

    Safe to cache on the instruction: opcodes are immutable after kernel
    construction (same contract as the timing-side ``inst._dec`` cache).
    """
    try:
        return inst._ek
    except AttributeError:
        ek = _classify(inst.op)
        inst._ek = ek
        return ek
