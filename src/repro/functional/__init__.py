"""Execution-driven functional SIMT simulator and dynamic traces."""

from .interpreter import (
    WARP_SIZE,
    FunctionalError,
    Interpreter,
    Launch,
    TrapRaised,
    WarpState,
)
from .trace import BlockTrace, KernelTrace, TraceInst, WarpTrace

__all__ = [
    "WARP_SIZE",
    "FunctionalError",
    "Interpreter",
    "Launch",
    "TrapRaised",
    "WarpState",
    "BlockTrace",
    "KernelTrace",
    "TraceInst",
    "WarpTrace",
]
