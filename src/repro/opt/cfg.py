"""Control-flow graph over kernel instruction streams.

The paper's toolchain compiles CUDA through LLVM to the custom ISA; this
package is the reproduction's (much smaller) compiler layer.  It builds a
basic-block CFG from a :class:`~repro.isa.program.Kernel`, which the
analyses (liveness) and transformations (dead-code elimination, constant
folding, WAR-eliminating register renaming) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.isa import Instruction, Kernel, Opcode


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    index: int
    start: int  # pc of the first instruction
    end: int  # pc one past the last instruction
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def pcs(self) -> range:
        return range(self.start, self.end)


class Cfg:
    """Control-flow graph of a kernel."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.blocks: List[BasicBlock] = []
        self._block_of_pc: Dict[int, int] = {}
        self._build()

    def _leaders(self) -> List[int]:
        instructions = self.kernel.instructions
        leaders: Set[int] = {0}
        for pc, inst in enumerate(instructions):
            if inst.op is Opcode.BRA:
                if inst.target is not None:
                    leaders.add(inst.target)
                if inst.reconv is not None:
                    leaders.add(inst.reconv)
                if pc + 1 < len(instructions):
                    leaders.add(pc + 1)
            elif inst.op is Opcode.EXIT and pc + 1 < len(instructions):
                leaders.add(pc + 1)
        return sorted(l for l in leaders if l < len(instructions))

    def _build(self) -> None:
        instructions = self.kernel.instructions
        leaders = self._leaders()
        bounds = leaders + [len(instructions)]
        for i, start in enumerate(leaders):
            block = BasicBlock(index=i, start=start, end=bounds[i + 1])
            self.blocks.append(block)
            for pc in block.pcs():
                self._block_of_pc[pc] = i
        # edges
        for block in self.blocks:
            last = instructions[block.end - 1]
            if last.op is Opcode.BRA:
                if last.target is not None and last.target < len(instructions):
                    block.successors.append(self._block_of_pc[last.target])
                # guarded (or divergent) branches fall through too
                if (last.guard is not None or last.reconv is not None) and (
                    block.end < len(instructions)
                ):
                    block.successors.append(self._block_of_pc[block.end])
            elif last.op is Opcode.EXIT:
                # predicated EXIT falls through for surviving lanes
                if last.guard is not None and block.end < len(instructions):
                    block.successors.append(self._block_of_pc[block.end])
            elif block.end < len(instructions):
                block.successors.append(self._block_of_pc[block.end])
        for block in self.blocks:
            block.successors = sorted(set(block.successors))
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.index)

    def block_of(self, pc: int) -> BasicBlock:
        return self.blocks[self._block_of_pc[pc]]

    def instruction(self, pc: int) -> Instruction:
        return self.kernel.instructions[pc]

    def __len__(self) -> int:
        return len(self.blocks)
