"""Backward liveness analysis over the kernel CFG.

Computes, per basic block, the sets of general-purpose registers live on
entry/exit, and per-pc "live-after" sets within blocks.  Predicate
registers are tracked in the same universe with an offset so a single
dataflow handles both files.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.isa import Instruction

from .cfg import Cfg

#: predicate registers are tracked at indices >= PRED_BASE
PRED_BASE = 1 << 20


def uses_defs(inst: Instruction) -> Tuple[Set[int], Set[int]]:
    """(use, def) register sets of one instruction (GPRs + offset preds)."""
    uses = set(inst.reg_srcs())
    uses.update(PRED_BASE + p for p in inst.pred_srcs())
    defs = set(inst.reg_dests())
    defs.update(PRED_BASE + p for p in inst.pred_dests())
    if inst.guard is not None:
        # a guarded write merges with the old value: the dest is also a use
        uses |= defs
    return uses, defs


class Liveness:
    """Fixed-point backward liveness over a :class:`~repro.opt.cfg.Cfg`."""

    def __init__(self, cfg: Cfg) -> None:
        self.cfg = cfg
        n = len(cfg)
        self.live_in: List[Set[int]] = [set() for _ in range(n)]
        self.live_out: List[Set[int]] = [set() for _ in range(n)]
        self._gen: List[Set[int]] = [set() for _ in range(n)]
        self._kill: List[Set[int]] = [set() for _ in range(n)]
        self._compute_local()
        self._solve()

    def _compute_local(self) -> None:
        for block in self.cfg.blocks:
            gen: Set[int] = set()
            kill: Set[int] = set()
            for pc in block.pcs():
                uses, defs = uses_defs(self.cfg.instruction(pc))
                gen |= uses - kill
                kill |= defs
            self._gen[block.index] = gen
            self._kill[block.index] = kill

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for block in reversed(self.cfg.blocks):
                out: Set[int] = set()
                for succ in block.successors:
                    out |= self.live_in[succ]
                new_in = self._gen[block.index] | (out - self._kill[block.index])
                if out != self.live_out[block.index] or (
                    new_in != self.live_in[block.index]
                ):
                    self.live_out[block.index] = out
                    self.live_in[block.index] = new_in
                    changed = True

    def live_after(self, pc: int) -> Set[int]:
        """Registers live immediately after the instruction at ``pc``."""
        block = self.cfg.block_of(pc)
        live = set(self.live_out[block.index])
        for p in range(block.end - 1, pc, -1):
            uses, defs = uses_defs(self.cfg.instruction(p))
            live -= defs
            live |= uses
        return live

    def dead_defs(self) -> List[int]:
        """pcs whose definitions are never used (candidates for DCE)."""
        out = []
        for block in self.cfg.blocks:
            for pc in block.pcs():
                inst = self.cfg.instruction(pc)
                if inst.info.is_memory or inst.info.is_control:
                    continue  # side effects / control: never dead
                _, defs = uses_defs(inst)
                if defs and not (defs & self.live_after(pc)):
                    out.append(pc)
        return out
