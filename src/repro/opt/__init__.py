"""Compiler layer: CFG, liveness, and transformation passes over kernels."""

from .cfg import BasicBlock, Cfg
from .liveness import Liveness, uses_defs
from .passes import (
    constant_folding,
    count_memory_war_hazards,
    dead_code_elimination,
    optimize,
    rename_war_registers,
)

__all__ = [
    "BasicBlock",
    "Cfg",
    "Liveness",
    "uses_defs",
    "constant_folding",
    "count_memory_war_hazards",
    "dead_code_elimination",
    "optimize",
    "rename_war_registers",
]
