"""Kernel transformation passes.

Three classic passes over the mini-ISA, mirroring what the paper's LLVM
backend would do — plus one pass specific to this paper's trade space:

``rename_war_registers``
    Eliminates WAR hazards on the *address registers of global-memory
    instructions* by renaming the overwriting definition to a fresh
    register.  The replay-queue scheme (Approach 2) pays for exactly these
    hazards (sources are released only after the last TLB check); renaming
    trades register pressure — and therefore potentially occupancy — for
    that stall, which is the software-side ablation of the paper's
    hardware operand log.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.isa import Imm, Instruction, Kernel, Opcode, Pred, Reg

from .cfg import Cfg
from .liveness import Liveness, uses_defs


def _clone_kernel(kernel: Kernel) -> Kernel:
    return Kernel(
        name=kernel.name,
        instructions=[dataclasses.replace(i) for i in kernel.instructions],
        regs_per_thread=kernel.regs_per_thread,
        smem_bytes_per_block=kernel.smem_bytes_per_block,
    )


# ---------------------------------------------------------------------------
# dead code elimination
# ---------------------------------------------------------------------------

def dead_code_elimination(kernel: Kernel) -> Tuple[Kernel, int]:
    """Remove side-effect-free instructions whose results are never used.

    Returns ``(new_kernel, removed_count)``.  Branch targets are remapped.
    Iterates to a fixed point (removing one dead def can kill another).
    """
    current = _clone_kernel(kernel)
    removed_total = 0
    while True:
        cfg = Cfg(current)
        dead = set(Liveness(cfg).dead_defs())
        if not dead:
            break
        removed_total += len(dead)
        current = _remove_pcs(current, dead)
    current.validate()
    return current, removed_total


def _remove_pcs(kernel: Kernel, dead: Set[int]) -> Kernel:
    n = len(kernel.instructions)
    new_pc_of = {}
    new_pc = 0
    for pc in range(n):
        new_pc_of[pc] = new_pc
        if pc not in dead:
            new_pc += 1
    end_pc = new_pc  # mapping for targets one past the end

    def remap(pc: Optional[int]) -> Optional[int]:
        if pc is None:
            return None
        return new_pc_of.get(pc, end_pc)

    insts = []
    for pc, inst in enumerate(kernel.instructions):
        if pc in dead:
            continue
        inst = dataclasses.replace(
            inst, target=remap(inst.target), reconv=remap(inst.reconv)
        )
        insts.append(inst)
    return Kernel(
        name=kernel.name,
        instructions=insts,
        regs_per_thread=kernel.regs_per_thread,
        smem_bytes_per_block=kernel.smem_bytes_per_block,
    )


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

_FOLDABLE = {
    Opcode.IADD: lambda a, b: a + b,
    Opcode.ISUB: lambda a, b: a - b,
    Opcode.IMUL: lambda a, b: a * b,
    Opcode.IMIN: min,
    Opcode.IMAX: max,
    Opcode.SHL: lambda a, b: int(a) << int(b),
    Opcode.SHR: lambda a, b: int(a) >> int(b),
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FMIN: min,
    Opcode.FMAX: max,
}


def constant_folding(kernel: Kernel) -> Tuple[Kernel, int]:
    """Fold binary ALU operations whose sources are all immediates into a
    ``MOV Imm``.  Returns ``(new_kernel, folded_count)``."""
    current = _clone_kernel(kernel)
    folded = 0
    for pc, inst in enumerate(current.instructions):
        fold = _FOLDABLE.get(inst.op)
        if fold is None or inst.guard is not None:
            continue
        if len(inst.srcs) == 2 and all(isinstance(s, Imm) for s in inst.srcs):
            value = fold(inst.srcs[0].value, inst.srcs[1].value)
            current.instructions[pc] = dataclasses.replace(
                inst, op=Opcode.MOV, srcs=(Imm(value),)
            )
            folded += 1
    current.validate()
    return current, folded


# ---------------------------------------------------------------------------
# WAR-eliminating register renaming
# ---------------------------------------------------------------------------

def count_memory_war_hazards(kernel: Kernel) -> int:
    """WAR hazards where the pending reader is a global-memory instruction —
    the hazards the replay-queue scheme turns into issue stalls."""
    count = 0
    cfg = Cfg(kernel)
    for block in cfg.blocks:
        pending_mem_srcs: Dict[int, int] = {}  # reg -> pc of memory reader
        for pc in block.pcs():
            inst = cfg.instruction(pc)
            for dest in inst.reg_dests():
                if dest in pending_mem_srcs:
                    count += 1
                    del pending_mem_srcs[dest]
            if inst.info.can_fault:
                for src in inst.reg_srcs():
                    pending_mem_srcs[src] = pc
        # block boundary clears the window (issue distance is large)
    return count


def rename_war_registers(
    kernel: Kernel, extra_regs: int = 16
) -> Tuple[Kernel, int]:
    """Rename definitions that overwrite a register still needed as a
    global-memory instruction's source, using up to ``extra_regs`` fresh
    registers.  Renaming is per basic block and only when the renamed
    value's live range is contained in the block (safe without SSA).

    Returns ``(new_kernel, renamed_count)``.  The new kernel's
    ``regs_per_thread`` grows by the registers actually used — the register
    pressure the paper's operand log avoids paying.
    """
    current = _clone_kernel(kernel)
    cfg = Cfg(current)
    live = Liveness(cfg)
    base_reg = current.regs_per_thread
    next_fresh = base_reg
    max_fresh = base_reg + extra_regs
    renamed = 0

    for block in cfg.blocks:
        pcs = list(block.pcs())
        mem_src_live: Set[int] = set()  # regs sourced by a recent memory op
        for i, pc in enumerate(pcs):
            inst = cfg.instruction(pc)
            conflict = [
                d for d in inst.reg_dests()
                if d in mem_src_live
            ]
            if (
                conflict
                and next_fresh < max_fresh
                and inst.guard is None
                and not inst.info.is_control
            ):
                old = conflict[0]
                # live range must be contained in the block: the renamed
                # value must not be live out of the block
                if old not in live.live_out[block.index] or _redefined_later(
                    cfg, pcs[i + 1:], old
                ):
                    new = next_fresh
                    if _rename_from(cfg, current, pcs[i:], old, new):
                        next_fresh += 1
                        renamed += 1
                        inst = cfg.instruction(pc)  # re-fetch: dest renamed
            mem_src_live -= set(inst.reg_dests())
            if inst.info.can_fault:
                mem_src_live |= set(inst.reg_srcs())
    current.regs_per_thread = max(base_reg, next_fresh)
    current.validate()
    return current, renamed


def _redefined_later(cfg: Cfg, pcs, reg: int) -> bool:
    for pc in pcs:
        inst = cfg.instruction(pc)
        if reg in inst.reg_dests() and inst.guard is None:
            return True
    return False


def _rename_from(cfg: Cfg, kernel: Kernel, pcs, old: int, new: int) -> bool:
    """Rename the def of ``old`` at ``pcs[0]`` and its uses up to (not
    including) the next redefinition.  Returns False if unsafe."""
    first = kernel.instructions[pcs[0]]
    kernel.instructions[pcs[0]] = _replace_dest(first, old, new)
    for pc in pcs[1:]:
        inst = kernel.instructions[pc]
        if old in inst.reg_srcs():
            kernel.instructions[pc] = _replace_srcs(inst, old, new)
            inst = kernel.instructions[pc]
        if old in inst.reg_dests() and inst.guard is None:
            return True  # redefinition: live range closed
    return True


def _replace_dest(inst: Instruction, old: int, new: int) -> Instruction:
    dest = Reg(new) if isinstance(inst.dest, Reg) and inst.dest.index == old \
        else inst.dest
    return dataclasses.replace(inst, dest=dest)


def _replace_srcs(inst: Instruction, old: int, new: int) -> Instruction:
    srcs = tuple(
        Reg(new) if isinstance(s, Reg) and s.index == old else s
        for s in inst.srcs
    )
    return dataclasses.replace(inst, srcs=srcs)


def optimize(kernel: Kernel, rename_extra_regs: int = 16) -> Kernel:
    """The default pipeline: fold -> DCE -> WAR renaming."""
    kernel, _ = constant_folding(kernel)
    kernel, _ = dead_code_elimination(kernel)
    kernel, _ = rename_war_registers(kernel, extra_regs=rename_extra_regs)
    return kernel
