"""Use case 1: thread-block switching on page faults (paper Section 4.1).

Each SM gets a *local scheduler* that tracks active blocks (context on chip)
and off-chip blocks (context in a pre-allocated GPU memory area).  When a
fault is reported, the fill unit also tells the SM the fault's position in
the global pending-fault queue; if the position is above a threshold (the
fault will take a while to resolve), the local scheduler context-switches the
faulting block out and brings something else in: an off-chip block whose
faults have all been resolved, or — limited to ``max_extra_blocks`` per SM —
a fresh pending block from the global scheduler.

Context save/restore moves the block's register-file slice, shared memory
partition and scheme state (replay-queue entries / operand-log partition)
through DRAM; the *ideal* variant models 1-cycle save/restore, the
configuration the paper uses to show the scheduler avoids wasteful switches.
"""

from __future__ import annotations

from typing import List, Optional

from repro.telemetry.events import EV_BLOCK_SWITCH_IN, EV_BLOCK_SWITCH_OUT
from repro.timing.engine import EventQueue
from repro.timing.sm import BlockRT, SmPipeline


class LocalScheduler:
    """Per-SM context-switch policy engine."""

    def __init__(
        self,
        sm: SmPipeline,
        config,
        events: EventQueue,
        dram,
        ideal: bool = False,
    ) -> None:
        self.sm = sm
        self.config = config
        self.events = events
        self.dram = dram
        self.ideal = ideal
        self.extra_fetched = 0

    # ------------------------------------------------------------------
    # fault notification (from the SM's global-memory path)
    # ------------------------------------------------------------------

    def on_fault(
        self,
        sm: SmPipeline,
        block: BlockRT,
        warp,
        tinst,
        detect_time: float,
        resolved_time: float,
        position: int,
    ) -> None:
        """Schedule a switch decision at the fault's detection time."""
        self.events.schedule(
            detect_time,
            lambda t, b=block, p=position: self._decide(b, p, t),
        )

    def _decide(self, block: BlockRT, position: int, now: float) -> None:
        if block.state != BlockRT.ACTIVE:
            return  # already switching / switched
        if position < self.config.block_switch_threshold:
            return  # fault will resolve soon: not worth a switch
        if not self._replacement_available(now):
            return  # nothing to run instead: switching would only add cost
        self._switch_out(block, now)

    def _replacement_available(self, now: float) -> bool:
        sm = self.sm
        if any(not b.unresolved_at(now) for b in sm.offchip):
            return True
        if (
            sm.block_source.pending > 0
            and self.extra_fetched < self.config.max_extra_blocks
        ):
            return True
        return False

    # ------------------------------------------------------------------
    # switch out
    # ------------------------------------------------------------------

    def _switch_cost(self, block: BlockRT, start: float) -> float:
        if self.ideal:
            return start + 1
        # Context bytes are divided by the experiment's time scale so the
        # switch-cost : fault-cost ratio matches the unscaled system (the
        # fault constants are divided by the same factor).
        nbytes = self.sm.context_bytes(block) / self.config.time_scale
        done = self.dram.reserve_bandwidth(start, nbytes)
        return done + self.config.context_switch_fixed

    def _switch_out(self, block: BlockRT, now: float) -> None:
        """Squash the block's faulted instructions and save its context
        off chip; wake-ups are armed for each pending fault resolution."""
        sm = self.sm
        sm.squash_faulted(block, now)
        block.state = BlockRT.SAVING
        sm._rebuild_warp_list()
        save_start = max(now, block.drain_time)  # drain in-flight work first
        save_done = self._switch_cost(block, save_start)
        sm.stats.block_switch_outs += 1
        if sm.tel is not None:
            sm.tel.tracer.emit_span(
                EV_BLOCK_SWITCH_OUT, now, save_done - now, sm._tid,
                {"block": block.block_id, "kernel": block.kernel_id,
                 "context_bytes": sm.context_bytes(block)},
            )
        self.events.schedule(
            save_done, lambda t, b=block: self._finish_switch_out(b, t)
        )
        # Arrange a wake-up when each of the block's faults resolves, so a
        # free slot can restore it as soon as it becomes runnable.
        for resolve_time in set(block.pending_groups.values()):
            if resolve_time > now:
                self.events.schedule(
                    resolve_time, lambda t, b=block: self._on_resolved(b, t)
                )

    def _finish_switch_out(self, block: BlockRT, now: float) -> None:
        sm = self.sm
        block.state = BlockRT.OFFCHIP
        sm.blocks.remove(block)
        sm.offchip.append(block)
        sm.free_slots += 1
        sm._rebuild_warp_list()
        self.on_slot_free(now)

    def _on_resolved(self, block: BlockRT, now: float) -> None:
        if block.state == BlockRT.OFFCHIP and self.sm.free_slots > 0:
            self.on_slot_free(now)

    # ------------------------------------------------------------------
    # slot filling (also the SM's refill path while this scheduler is on)
    # ------------------------------------------------------------------

    def on_slot_free(self, now: float) -> None:
        sm = self.sm
        while sm.free_slots > 0:
            block = self._ready_offchip(now)
            if block is not None:
                self._restore(block, now)
                continue
            if (
                sm.block_source.pending > 0
                and (not sm.offchip or self.extra_fetched < self.config.max_extra_blocks)
            ):
                btrace = sm.block_source.next_block(sm.sm_id)
                if btrace is None:
                    return
                if sm.offchip:
                    self.extra_fetched += 1
                    sm.stats.extra_blocks_fetched += 1
                sm.launch_block(btrace, now)
                continue
            return  # nothing runnable: wait for a fault resolution

    def _ready_offchip(self, now: float) -> Optional[BlockRT]:
        for block in self.sm.offchip:
            if block.state == BlockRT.OFFCHIP and not block.unresolved_at(now):
                return block
        return None

    def _restore(self, block: BlockRT, now: float) -> None:
        """Bring a runnable off-chip block's context back on chip."""
        sm = self.sm
        block.state = BlockRT.RESTORING
        sm.free_slots -= 1
        restore_done = self._switch_cost(block, now)
        sm.stats.block_switch_ins += 1
        if sm.tel is not None:
            sm.tel.tracer.emit_span(
                EV_BLOCK_SWITCH_IN, now, restore_done - now, sm._tid,
                {"block": block.block_id, "kernel": block.kernel_id},
            )
        self.events.schedule(
            restore_done, lambda t, b=block: self._finish_restore(b, t)
        )

    def _finish_restore(self, block: BlockRT, now: float) -> None:
        sm = self.sm
        sm.offchip.remove(block)
        block.state = BlockRT.ACTIVE
        sm.blocks.append(block)
        for warp in block.warps:
            warp.fetch_ready = max(warp.fetch_ready, now)
        sm._rebuild_warp_list()
        sm.wake()
