"""Preemption-latency analysis (paper Section 2.4).

"A low context switch latency is the key to achieve good fairness and
responsiveness in GPU multiprogramming ... the need for all the in-flight
faults to be serviced before the context switch can happen increases the
latency of context switching significantly."

This module measures exactly that: a preemption request (e.g. the OS wants
to schedule another process) arrives at time T while a kernel is running
under demand paging.  A *non-preemptible* pipeline (baseline stall-on-fault)
must wait until every in-flight fault resolves before the SM can be drained
and saved; a preemptible pipeline squashes the faulted instructions (they
are replayable from the saved context) and only drains the normal in-flight
work.

The analysis piggybacks on the timing simulator: we interrupt a running
simulation at the request time and compute, per SM, when its state could be
saved off-chip under each policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.schemes import PipelineScheme

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system.gpu import GpuSimulator


@dataclass
class PreemptionReport:
    """Per-SM and aggregate context-switch latency at one request time."""

    request_time: float
    #: per-SM time at which the SM could begin saving state (drain done)
    drain_ready: List[float] = field(default_factory=list)
    #: per-SM context bytes that would be saved
    context_bytes: List[int] = field(default_factory=list)
    preemptible: bool = True

    @property
    def latencies(self) -> List[float]:
        return [t - self.request_time for t in self.drain_ready]

    @property
    def worst_latency(self) -> float:
        return max(self.latencies) if self.latencies else 0.0

    @property
    def mean_latency(self) -> float:
        lat = self.latencies
        return sum(lat) / len(lat) if lat else 0.0


def measure_preemption_latency(
    sim: "GpuSimulator", request_time: float
) -> Dict[str, PreemptionReport]:
    """Run ``sim`` until ``request_time``, then compute the context-switch
    latency under both policies.

    Returns reports keyed by ``"preemptible"`` (faulted instructions are
    squashed and replayed later — drain covers only normal in-flight work)
    and ``"stall-on-fault"`` (every parked fault must resolve first).

    The simulator is consumed: it is advanced to ``request_time`` and left
    there.
    """
    _advance_to(sim, request_time)

    preemptible = PreemptionReport(request_time=request_time, preemptible=True)
    stalled = PreemptionReport(request_time=request_time, preemptible=False)

    for sm in sim.sms:
        drain_normal = request_time
        drain_faulted = request_time
        ctx = 0
        for block in sm.blocks:
            # normal in-flight work: the block's scheduled commits
            drain_normal = max(drain_normal, min(block.drain_time, 1e30))
            ctx += sm.context_bytes(block)
            # parked faulted instructions: resolution + replay completion
            for rec in block.faulted_inflight:
                commit_ev = rec[2]
                if not commit_ev.cancelled and not commit_ev.fired:
                    drain_faulted = max(drain_faulted, commit_ev.time)
        preemptible.drain_ready.append(max(drain_normal, request_time))
        preemptible.context_bytes.append(ctx)
        stalled.drain_ready.append(
            max(drain_normal, drain_faulted, request_time)
        )
        stalled.context_bytes.append(ctx)

    return {"preemptible": preemptible, "stall-on-fault": stalled}


def _advance_to(sim: "GpuSimulator", stop_time: float) -> None:
    """Advance a :class:`GpuSimulator` to ``stop_time`` (or completion)."""
    import math

    # initial batch (same breadth-first fill as GpuSimulator.run)
    for _ in range(sim.sms[0].occupancy):
        for sm in sim.sms:
            if sm.free_slots > 0:
                btrace = sim.tb_scheduler.next_block(sm.sm_id)
                if btrace is None:
                    break
                sm.launch_block(btrace, 0.0)

    cycle = 0.0
    events = sim.events
    sms = sim.sms
    while sim.blocks_remaining > 0 and cycle < stop_time:
        events.run_until(cycle)
        if sim.blocks_remaining <= 0:
            break
        awake = False
        for sm in sms:
            if not sm.sleeping or sm.next_ready_cycle <= cycle:
                sm.try_issue(cycle)
                awake = awake or not sm.sleeping
        if awake:
            cycle += 1
        else:
            nxt = events.next_time
            wake = min(sm.next_ready_cycle for sm in sms)
            if nxt is None and wake == math.inf:
                break
            if nxt is None or wake < nxt:
                nxt = wake
            cycle = min(stop_time, max(cycle + 1, math.ceil(nxt)))


def preemption_latency_experiment(
    workload,
    scheme: PipelineScheme,
    interconnect,
    config,
    request_fraction: float = 0.3,
) -> Dict[str, float]:
    """Convenience wrapper: run ``workload`` under demand paging, request
    preemption part-way through, and report worst-case latencies.

    Returns ``{"preemptible": cycles, "stall-on-fault": cycles,
    "request_time": t}``.
    """
    from repro.system.gpu import GpuSimulator

    probe = GpuSimulator(
        kernel=workload.kernel,
        trace=workload.trace(),
        address_space=workload.make_address_space(),
        config=config,
        scheme=scheme,
        paging="demand",
        interconnect=interconnect,
    )
    total = probe.run().cycles

    sim = GpuSimulator(
        kernel=workload.kernel,
        trace=workload.trace(),
        address_space=workload.make_address_space(),
        config=config,
        scheme=scheme,
        paging="demand",
        interconnect=interconnect,
    )
    request_time = total * request_fraction
    reports = measure_preemption_latency(sim, request_time)
    return {
        "preemptible": reports["preemptible"].worst_latency,
        "stall-on-fault": reports["stall-on-fault"].worst_latency,
        "request_time": request_time,
    }
