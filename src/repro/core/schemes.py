"""The paper's three preemptible-exception pipeline schemes (Section 3).

Each scheme is a strategy object the SM pipeline consults at the points where
the designs differ:

============================  ==========================================
hook                          what it controls
============================  ==========================================
``fetch_disable_until``       warp-disable window after a global-memory
                              instruction issues (Approach 1)
``source_release_time``       when source-operand scoreboards of a
                              global-memory instruction are released
                              (Approach 2's conservative release)
``log_bytes_needed``          operand-log space the instruction occupies
                              until its last TLB check (Approach 3)
``context_extra_bytes``       replay-queue / operand-log state that joins
                              the thread-block context on a switch
``preemptible``               whether faulted thread blocks can be
                              context switched (use cases 1 and 2)
============================  ==========================================

The baseline (stall-on-fault) SM takes none of these restrictions but cannot
preempt a faulted warp.
"""

from __future__ import annotations

from typing import Optional

#: one operand-log entry: 8B source address x 32 lanes (paper Section 5.2)
LOAD_LOG_BYTES = 256
#: stores log source data and destination address: 2 entries
STORE_LOG_BYTES = 512
#: one replay-queue slot: a pre-decoded instruction, no operand data
REPLAY_QUEUE_ENTRY_BYTES = 16


class PipelineScheme:
    """Interface + baseline behaviour (stall-on-fault pipeline)."""

    name = "baseline"
    preemptible = False
    log_bytes = 0
    #: warp-disable anchor: None (no disable), "commit" or "lastcheck"
    disable_anchor = None
    #: hot-path hint (docs/PERFORMANCE.md): must be True iff
    #: ``source_release_time(oprd_time, x) == oprd_time`` for every ``x``.
    #: When True the SM releases global-memory source scoreboards inline at
    #: operand read instead of via a heap event; a subclass that overrides
    #: ``source_release_time`` with a later release MUST set this False
    #: (see :class:`ReplayQueue`) or replayed instructions may read
    #: clobbered sources.
    immediate_source_release = True
    #: extend the scheme to arithmetic exceptions (paper Sections 3.1/3.2:
    #: "this scheme is also applicable to other types of exceptions, such
    #: as divide-by-zero, by treating the instructions that may trigger the
    #: exception as code barriers" / "source operands of instructions that
    #: can possibly cause an exception must be released only after making
    #: sure that they will not raise an exception")
    cover_arithmetic = False

    def fetch_disable_until(
        self, completion: float, last_check_ok: float
    ) -> Optional[float]:
        """Return the time until which the issuing warp's fetch stays
        disabled after a global-memory instruction, or ``None``."""
        return None

    def source_release_time(self, oprd_time: float, last_check_ok: float) -> float:
        """When the source-operand scoreboards of a global-memory
        instruction are released (baseline: at operand read)."""
        return oprd_time

    def log_bytes_needed(self, is_store: bool) -> int:
        """Operand-log bytes this instruction occupies (0 = no log)."""
        return 0

    def context_extra_bytes(self, block) -> int:
        """Scheme state saved with the thread-block context on a switch."""
        return 0

    def telemetry_tags(self) -> dict:
        """Scheme configuration recorded as run metadata in telemetry
        output (the ``otherData`` block of a Chrome trace and the
        ``metadata`` block of a counter dump)."""
        return {
            "scheme": self.name,
            "preemptible": self.preemptible,
            "disable_anchor": self.disable_anchor,
            "log_bytes": self.log_bytes,
            "cover_arithmetic": self.cover_arithmetic,
        }

    def __repr__(self) -> str:
        return f"<scheme {self.name}>"


class BaselineStallOnFault(PipelineScheme):
    """The conventional GPU: full ILP, faults stall in the pipeline and the
    faulting thread block cannot be preempted."""

    name = "baseline"
    preemptible = False


class WarpDisableCommit(PipelineScheme):
    """Approach 1 (``wd-commit``): a global-memory instruction acts as an
    instruction barrier for its warp — fetch is disabled until it commits.
    No hardware added; at most one in-flight instruction per warp can fault,
    and it is always the youngest, so squash + replay is trivial.

    With ``cover_arithmetic=True`` the barrier also covers potentially
    excepting arithmetic (divide-by-zero on the SFU divide)."""

    name = "wd-commit"
    preemptible = True
    disable_anchor = "commit"

    def __init__(self, cover_arithmetic: bool = False) -> None:
        self.cover_arithmetic = cover_arithmetic

    def fetch_disable_until(self, completion, last_check_ok):
        return completion


class WarpDisableLastCheck(PipelineScheme):
    """Approach 1 optimized (``wd-lastcheck``): re-enable the warp right
    after the last coalesced request of the instruction passed its TLB check
    — the earliest point where the instruction is guaranteed not to fault."""

    name = "wd-lastcheck"
    preemptible = True
    disable_anchor = "lastcheck"

    def __init__(self, cover_arithmetic: bool = False) -> None:
        self.cover_arithmetic = cover_arithmetic

    def fetch_disable_until(self, completion, last_check_ok):
        return last_check_ok


class ReplayQueue(PipelineScheme):
    """Approach 2: younger instructions flow freely; issued global-memory
    instructions sit in a replay queue until commit (fixing *sparse replay*),
    and their source scoreboards are released only after the last TLB check
    (fixing *RAW on replay*) instead of at operand read."""

    name = "replay-queue"
    preemptible = True
    immediate_source_release = False  # held until the last TLB check

    def __init__(self, cover_arithmetic: bool = False) -> None:
        self.cover_arithmetic = cover_arithmetic

    def source_release_time(self, oprd_time, last_check_ok):
        return max(oprd_time, last_check_ok)

    def context_extra_bytes(self, block) -> int:
        # The queue contents (in-flight global-memory instructions) are part
        # of the context; no operand data is held.
        return len(block.faulted_inflight) * REPLAY_QUEUE_ENTRY_BYTES


class OperandLog(ReplayQueue):
    """Approach 3: baseline scoreboarding is restored — source operands of
    global-memory instructions are copied to a per-SM SRAM log at operand
    read, so a replayed instruction reads sources from the log.  The log is
    partitioned among the resident thread blocks at launch; an instruction
    that cannot get a log entry stalls at issue.  Entries are released once
    the instruction passes its last TLB check."""

    name = "operand-log"
    preemptible = True
    immediate_source_release = True  # the log preserves replay data

    def __init__(self, log_kbytes: int = 16, cover_arithmetic: bool = False) -> None:
        if log_kbytes <= 0:
            raise ValueError("log size must be positive")
        super().__init__(cover_arithmetic=cover_arithmetic)
        self.log_kbytes = log_kbytes
        self.log_bytes = log_kbytes * 1024
        self.name = f"operand-log-{log_kbytes}kb"

    def source_release_time(self, oprd_time, last_check_ok):
        return oprd_time  # baseline release: the log preserves replay data

    def log_bytes_needed(self, is_store: bool) -> int:
        return STORE_LOG_BYTES if is_store else LOAD_LOG_BYTES

    def context_extra_bytes(self, block) -> int:
        # The block's log partition is saved/restored with its context.
        return block.log_capacity

    def telemetry_tags(self) -> dict:
        """Operand-log metadata: the base tags plus the SRAM log size."""
        tags = super().telemetry_tags()
        tags["log_kbytes"] = self.log_kbytes
        return tags


def make_scheme(name: str, **kwargs) -> PipelineScheme:
    """Factory: ``baseline``, ``wd-commit``, ``wd-lastcheck``,
    ``replay-queue``, ``operand-log`` (+ ``log_kbytes=``)."""
    table = {
        "baseline": BaselineStallOnFault,
        "wd-commit": WarpDisableCommit,
        "wd-lastcheck": WarpDisableLastCheck,
        "replay-queue": ReplayQueue,
        "operand-log": OperandLog,
    }
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; choose from {sorted(table)}")
    return cls(**kwargs)
