"""Area and power model of the operand log (paper Table 2).

The paper models the operand log as a single-ported SRAM in 40nm with CACTI
6.5, applies a 1.5x factor for control logic, and reports overheads against
published baselines: a 16mm^2 SM / 561mm^2 GPU (16 SMs) from Rogers et al.
[40] and 5.7W SM / 130W GPU from Gebhart et al. [15].  Power assumes the
worst case of one log write per cycle at 1 GHz (leakage + dynamic).

CACTI itself is not available offline, so we use a first-order linear SRAM
model (periphery constant + per-KB array cost) with coefficients calibrated
to CACTI 6.5's 40nm outputs; the model reproduces the paper's Table 2 to
within rounding."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

#: control-logic overhead factor applied on top of the raw SRAM estimates
CONTROL_LOGIC_FACTOR = 1.5

#: 40nm single-ported SRAM: area = periphery + slope * KB  (mm^2)
SRAM_AREA_PERIPHERY_MM2 = 0.0640
SRAM_AREA_PER_KB_MM2 = 0.005867

#: worst-case power (leakage + one access/cycle @ 1GHz):
#: power = periphery + slope * KB  (W)
SRAM_POWER_PERIPHERY_W = 0.0494
SRAM_POWER_PER_KB_W = 0.00247

#: published baselines the paper compares against
SM_AREA_MM2 = 16.0
GPU_AREA_MM2 = 561.0
SM_POWER_W = 5.7
GPU_POWER_W = 130.0
NUM_SMS = 16


@dataclass(frozen=True)
class LogOverheads:
    """Operand-log overheads for one log size (one Table 2 row)."""

    log_kbytes: int
    area_mm2: float
    power_w: float
    sm_area_pct: float
    gpu_area_pct: float
    sm_power_pct: float
    gpu_power_pct: float


def log_area_mm2(log_kbytes: int) -> float:
    """Operand-log area (mm^2) including the control-logic factor."""
    if log_kbytes <= 0:
        raise ValueError("log size must be positive")
    raw = SRAM_AREA_PERIPHERY_MM2 + SRAM_AREA_PER_KB_MM2 * log_kbytes
    return raw * CONTROL_LOGIC_FACTOR


def log_power_w(log_kbytes: int) -> float:
    """Worst-case operand-log power (W) including the control factor."""
    if log_kbytes <= 0:
        raise ValueError("log size must be positive")
    raw = SRAM_POWER_PERIPHERY_W + SRAM_POWER_PER_KB_W * log_kbytes
    return raw * CONTROL_LOGIC_FACTOR


def overheads(log_kbytes: int) -> LogOverheads:
    """All four Table 2 percentages for one log size."""
    area = log_area_mm2(log_kbytes)
    power = log_power_w(log_kbytes)
    return LogOverheads(
        log_kbytes=log_kbytes,
        area_mm2=area,
        power_w=power,
        sm_area_pct=100.0 * area / SM_AREA_MM2,
        gpu_area_pct=100.0 * area * NUM_SMS / GPU_AREA_MM2,
        sm_power_pct=100.0 * power / SM_POWER_W,
        gpu_power_pct=100.0 * power * NUM_SMS / GPU_POWER_W,
    )


def table2(sizes: Iterable[int] = (8, 16, 20, 32)) -> List[LogOverheads]:
    """Regenerate paper Table 2 (operand logging overheads)."""
    return [overheads(kb) for kb in sizes]


def format_table2(rows: Iterable[LogOverheads] = None) -> str:
    """Render Table 2 the way the paper prints it."""
    rows = list(rows) if rows is not None else table2()
    lines = ["Log Size | SM Area | GPU Area | SM Power | GPU Power"]
    for r in rows:
        lines.append(
            f"{r.log_kbytes:>5d} KB | {r.sm_area_pct:6.2f}% | "
            f"{r.gpu_area_pct:7.2f}% | {r.sm_power_pct:7.2f}% | "
            f"{r.gpu_power_pct:8.2f}%"
        )
    return "\n".join(lines)
