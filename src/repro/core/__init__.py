"""The paper's contribution: preemptible-exception schemes, the block
switching local scheduler (use case 1), GPU-local fault handling (use case 2,
implemented in :mod:`repro.system.faults`), and the operand-log area/power
model."""

from .area_power import LogOverheads, format_table2, overheads, table2
from .local_scheduler import LocalScheduler
from .preemption import (
    PreemptionReport,
    measure_preemption_latency,
    preemption_latency_experiment,
)
from .schemes import (
    LOAD_LOG_BYTES,
    STORE_LOG_BYTES,
    BaselineStallOnFault,
    OperandLog,
    PipelineScheme,
    ReplayQueue,
    WarpDisableCommit,
    WarpDisableLastCheck,
    make_scheme,
)

__all__ = [
    "LogOverheads",
    "format_table2",
    "overheads",
    "table2",
    "LocalScheduler",
    "PreemptionReport",
    "measure_preemption_latency",
    "preemption_latency_experiment",
    "LOAD_LOG_BYTES",
    "STORE_LOG_BYTES",
    "BaselineStallOnFault",
    "OperandLog",
    "PipelineScheme",
    "ReplayQueue",
    "WarpDisableCommit",
    "WarpDisableLastCheck",
    "make_scheme",
]
