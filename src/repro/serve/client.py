"""Client side of the serve wire protocol (docs/SERVING.md).

:class:`ServeClient` speaks the NDJSON framing from
:mod:`repro.serve.wire` over a unix socket (address is a path) or
loopback TCP (address is a ``(host, port)`` tuple).  It performs the
version handshake on connect, exposes one method per wire op, and
rehydrates structured rejection payloads into the *typed*
:class:`~repro.serve.core.ServeRejection` subclasses by their ``code``
— so wire callers catch :class:`~repro.serve.core.QueueFull` etc.
exactly like in-process callers do.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional, Tuple, Union

from .core import (
    QueueFull,
    ServeRejection,
    ServiceUnavailable,
    TenantQuarantined,
    UnknownTenant,
)
from .wire import (
    MAX_FRAME_BYTES,
    WIRE_PROTOCOL_VERSION,
    WireError,
    encode_frame,
    read_frame,
)

#: rejection ``code`` -> typed exception class (docs/SERVING.md
#: "Rejection codes"); unknown codes fall back to the base class
REJECTION_TYPES = {
    cls.code: cls
    for cls in (
        ServeRejection, UnknownTenant, QueueFull,
        TenantQuarantined, ServiceUnavailable,
    )
}


def rejection_from_wire(data: Dict) -> ServeRejection:
    """The typed exception for one wire rejection payload."""
    cls = REJECTION_TYPES.get(data.get("code"), ServeRejection)
    return cls(data.get("tenant", "?"), data.get("detail", ""))


class ServeClient:
    """One connection to a :class:`~repro.serve.wire.ServeDaemon`.

    Not thread-safe — one client per thread (the protocol is a strict
    request/response alternation per connection).  Usable as a context
    manager; ``connect()`` is implicit on first use."""

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        *,
        timeout: float = 30.0,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        #: the server's hello payload after a successful handshake
        self.server_info: Optional[Dict] = None

    # -- lifecycle ------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.address)
        self._sock = sock
        self._rfile = sock.makefile("rb", buffering=MAX_FRAME_BYTES)
        self._wfile = sock.makefile("wb")
        hello = self._call({
            "op": "hello", "protocol": WIRE_PROTOCOL_VERSION,
        })
        if not hello.get("ok"):
            err = hello.get("error") or {}
            self.close()
            raise WireError(
                f"handshake refused: [{err.get('code')}] "
                f"{err.get('detail')}"
            )
        self.server_info = hello
        return self

    def close(self) -> None:
        for f in (self._rfile, self._wfile):
            if f is not None:
                try:
                    f.close()
                except OSError:
                    pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._rfile = None
        self._wfile = None
        self.server_info = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- framing --------------------------------------------------------

    def _call(self, payload: Dict) -> Dict:
        if self._sock is None:
            self.connect()
        self._wfile.write(encode_frame(payload))
        self._wfile.flush()
        frame = read_frame(self._rfile)
        if frame is None:
            raise WireError("server closed the connection")
        return frame

    @staticmethod
    def _expect_ok(frame: Dict) -> Dict:
        """Raise the typed rejection or a :class:`WireError` on a
        negative response; return the frame otherwise."""
        if frame.get("ok"):
            return frame
        rejected = frame.get("rejected")
        if rejected is not None:
            raise rejection_from_wire(rejected)
        err = frame.get("error") or {}
        raise WireError(
            f"[{err.get('code', 'error')}] {err.get('detail', frame)}"
        )

    # -- ops ------------------------------------------------------------

    def ping(self) -> Dict:
        return self._expect_ok(self._call({"op": "ping"}))

    def register(
        self, tenant: str, **policy: Union[int, float]
    ) -> Dict:
        """Register ``tenant`` with optional policy overrides
        (``weight=2``, ``priority=1``, ``max_streams=4``, ...)."""
        return self._expect_ok(self._call({
            "op": "register", "tenant": tenant, "policy": policy,
        }))

    def submit(self, tenant: str, spec: Dict) -> str:
        """Enqueue one spec; returns the request id.  Immediate sheds
        (unknown tenant, draining daemon) raise their typed
        rejection."""
        frame = self._expect_ok(self._call({
            "op": "submit", "tenant": tenant, "spec": spec,
        }))
        return frame["id"]

    def poll(self, request_id: str) -> str:
        """``"pending"`` or ``"done"``."""
        frame = self._expect_ok(self._call({
            "op": "poll", "id": request_id,
        }))
        return frame["status"]

    def result(self, request_id: str, wait: float = 30.0) -> Optional[Dict]:
        """The serialized ServeResult, or ``None`` while still pending
        after ``wait`` seconds.  Raises the typed rejection when the
        request was shed."""
        frame = self._expect_ok(self._call({
            "op": "result", "id": request_id, "wait": wait,
        }))
        if frame["status"] == "pending":
            return None
        return frame["result"]

    def request(
        self, tenant: str, spec: Dict, wait: float = 60.0
    ) -> Dict:
        """Submit and block for the outcome (one closed-loop turn)."""
        rid = self.submit(tenant, spec)
        result = self.result(rid, wait=wait)
        if result is None:
            raise WireError(
                f"request {rid} still pending after {wait}s"
            )
        return result

    def stats(self) -> Dict:
        return self._expect_ok(self._call({"op": "stats"}))["stats"]

    def shutdown(self, drain: bool = True) -> Dict:
        """Ask the daemon to drain and exit."""
        return self._expect_ok(self._call({
            "op": "shutdown", "drain": drain,
        }))
