"""Multi-tenant control plane: admission, budgets, breakers, telemetry.

:class:`ServiceCore` is the *synchronous* heart of ``repro.serve``
(docs/ROBUSTNESS.md "Serving").  It owns no clock and performs no I/O:
every decision is a pure function of the call sequence and the ``now``
timestamps (simulated cycles) the caller passes in.  That split is what
makes the serving layer testable and bit-reproducible — the asyncio
shell (:class:`repro.serve.service.GpuService`) and the deterministic
virtual-time driver (:class:`repro.serve.loadgen.VirtualTimeDriver`)
drive the *same* core, so the containment experiment committed in
``BENCH_serve.json`` replays identically for a given seed.

Per tenant the core enforces:

**Admission control** — a *stream quota* (``max_streams`` concurrent
in-flight kernels) plus a bounded wait queue (``max_queue_depth``).
Work beyond both is shed with a structured :class:`QueueFull`, never
parked unbounded.

**Fault containment** — a fault budget fed by the per-kernel fault
tallies the simulator already produces
(:class:`repro.system.StreamKernelResult.faults_raised`), and a hang
budget fed by watchdog trips.  A :class:`CircuitBreaker` per tenant
trips to OPEN (quarantine) when either budget is exceeded inside its
sliding window; submissions from a quarantined tenant are rejected with
:class:`TenantQuarantined` while other tenants' in-flight kernels keep
running.  After a cooldown the breaker goes HALF_OPEN and admits a
bounded number of probes; a clean probe closes it again.

**Weighted-fair execution grants** — the shared GPU pool is granted in
deficit-round-robin order over per-tenant pending queues
(:class:`~repro.serve.fair.DeficitRoundRobin`): strict priority
classes first, then weight-proportional shares within a class, instead
of the PR 7 FIFO a backlogged tenant could convoy.  Both the
virtual-time driver and the asyncio shell route GPU grants through
:meth:`ServiceCore.queue_for_execution` /
:meth:`ServiceCore.next_for_execution`.

**Cache partitioning** — when a
:class:`~repro.serve.cache.PartitionedResultCache` is attached
(:meth:`ServiceCore.attach_cache`), registering a tenant carves out its
private partition (share = ``cache_share`` or the fair-queue weight)
and binds the ``serve.tenant[<t>].cache.*`` gauges.

**Telemetry** — ``serve.tenant[<t>].{submits,faults,rejections,
cache_hits,p99_cycles}`` rollups plus the ``serve.slo.*`` service-level
counters (docs/OBSERVABILITY.md; the authoritative name list is
``repro.serve.metrics.SERVE_COUNTERS``).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.counters import CounterRegistry

from .cache import PartitionedResultCache
from .fair import DeficitRoundRobin


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]); 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


# ---------------------------------------------------------------------------
# structured rejections
# ---------------------------------------------------------------------------

class ServeRejection(Exception):
    """A submission the service refused — structured, never a hang.

    Carries the machine-readable ``code`` plus a per-class ``reason``
    phrase and the instance ``tenant``/``detail`` (``to_dict``), so
    clients — including wire clients, which reconstruct the typed
    exception from the code (docs/SERVING.md "Rejection codes") — can
    classify sheds without parsing messages.  Every subclass MUST carry
    a distinct ``code`` and a distinct ``reason``: earlier revisions
    let unknown-tenant and queue-depth sheds surface the same generic
    reason string, which made wire-side triage guesswork
    (``tests/test_serve.py`` asserts distinctness)."""

    code = "rejected"
    reason = "request rejected"

    def __init__(self, tenant: str, detail: str) -> None:
        self.tenant = tenant
        self.detail = detail
        super().__init__(
            f"[{self.code}] {self.reason} — tenant {tenant!r}: {detail}"
        )

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "reason": self.reason,
            "tenant": self.tenant,
            "detail": self.detail,
        }


class UnknownTenant(ServeRejection):
    """Submission from a tenant that was never registered."""

    code = "unknown-tenant"
    reason = "tenant is not registered with the service"


class QueueFull(ServeRejection):
    """Stream quota and wait queue both exhausted: the request is shed."""

    code = "queue-full"
    reason = "stream quota and wait queue are both exhausted"


class TenantQuarantined(ServeRejection):
    """The tenant's circuit breaker is open (fault/hang budget blown)."""

    code = "quarantined"
    reason = "tenant circuit breaker is open"


class ServiceUnavailable(ServeRejection):
    """The service refused before tenant admission — e.g. a draining
    wire daemon sheds new submissions while in-flight work finishes."""

    code = "unavailable"
    reason = "service is not accepting new submissions"


# ---------------------------------------------------------------------------
# policy + breaker
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant limits and budgets (times/windows in simulated cycles).

    Defaults describe a small interactive tenant on the bundled micro
    workloads at ``DEFAULT_TIME_SCALE``; the load generator and tests
    override them freely."""

    #: concurrent in-flight kernels (the stream quota)
    max_streams: int = 2
    #: admitted-but-waiting requests beyond the quota before shedding
    max_queue_depth: int = 8
    #: faults tolerated inside ``breaker_window`` before quarantine.
    #: Page faults are normal traffic under demand paging (a clean micro
    #: kernel raises hundreds), so the budget must sit well above the
    #: tenant's legitimate fault rate — it exists to catch storms, not
    #: paging.
    fault_budget: int = 100_000
    #: watchdog-detected hangs (or exhausted timeouts) tolerated inside
    #: ``breaker_window`` before quarantine
    hang_budget: int = 1
    #: sliding budget window, in cycles
    breaker_window: float = 500_000.0
    #: OPEN -> HALF_OPEN after this many cycles of quarantine
    cooldown: float = 1_000_000.0
    #: probe submissions admitted while HALF_OPEN
    half_open_probes: int = 1
    #: deficit-round-robin share of the shared GPU pool (>= 1); a
    #: weight-2 tenant drains its pending queue twice as fast as a
    #: weight-1 tenant while both are backlogged
    weight: int = 1
    #: strict priority class for execution grants — higher classes are
    #: served before lower ones regardless of weight
    priority: int = 0
    #: share of the partitioned result cache; ``None`` inherits
    #: ``weight`` so fair tenants get fair cache real estate by default
    cache_share: Optional[int] = None


class CircuitBreaker:
    """Per-tenant quarantine latch: CLOSED -> OPEN -> HALF_OPEN -> ...

    CLOSED admits everything while the fault/hang tallies stay within
    budget.  Exceeding either budget trips to OPEN: every submission is
    rejected until ``cooldown`` cycles pass, then HALF_OPEN admits up to
    ``half_open_probes`` probes — a clean completion closes the breaker
    and clears the tallies, another budget violation re-trips it.  All
    transitions are driven by the caller's ``now`` (simulated cycles),
    so breaker behaviour is bit-reproducible under the virtual-time
    driver."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, policy: TenantPolicy) -> None:
        self.policy = policy
        self.state = self.CLOSED
        self.opened_at: Optional[float] = None
        #: times the breaker tripped (quarantine count)
        self.opens = 0
        self._faults: List[Tuple[float, int]] = []  # (time, count)
        self._hangs: List[float] = []
        self._probes_left = 0

    # -- window bookkeeping --------------------------------------------

    def _prune(self, now: float) -> None:
        window = self.policy.breaker_window
        self._faults = [
            (t, n) for t, n in self._faults if now - t <= window
        ]
        self._hangs = [t for t in self._hangs if now - t <= window]

    def fault_tally(self, now: float) -> int:
        """Faults recorded inside the current window."""
        self._prune(now)
        return sum(n for _, n in self._faults)

    def hang_tally(self, now: float) -> int:
        """Hangs recorded inside the current window."""
        self._prune(now)
        return len(self._hangs)

    # -- transitions ----------------------------------------------------

    def _trip(self, now: float) -> None:
        self.state = self.OPEN
        self.opened_at = now
        self.opens += 1

    def state_at(self, now: float) -> str:
        """Current state, resolving an expired cooldown to HALF_OPEN."""
        if (
            self.state == self.OPEN
            and now - self.opened_at >= self.policy.cooldown
        ):
            self.state = self.HALF_OPEN
            self._probes_left = self.policy.half_open_probes
        return self.state

    def allow(self, now: float) -> bool:
        """May a submission proceed right now?  Consumes one probe while
        HALF_OPEN (the bounded trickle that tests recovery)."""
        state = self.state_at(now)
        if state == self.OPEN:
            return False
        if state == self.HALF_OPEN:
            if self._probes_left <= 0:
                return False
            self._probes_left -= 1
        return True

    def record_faults(self, count: int, now: float) -> None:
        """Fold one completed kernel's fault tally into the window; trips
        the breaker when the budget is exceeded."""
        if count <= 0:
            return
        self._faults.append((now, count))
        if self.fault_tally(now) > self.policy.fault_budget:
            self._trip(now)

    def record_hang(self, now: float) -> None:
        """Record a watchdog trip (or exhausted timeout); trips the
        breaker when the hang budget is exceeded — and immediately while
        HALF_OPEN (a failed probe re-quarantines)."""
        self._hangs.append(now)
        if (
            self.state == self.HALF_OPEN
            or self.hang_tally(now) > self.policy.hang_budget
        ):
            self._trip(now)

    def record_success(self, now: float) -> None:
        """A clean completion: while HALF_OPEN this closes the breaker
        and clears the window tallies."""
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            self._faults.clear()
            self._hangs.clear()


# ---------------------------------------------------------------------------
# per-tenant state + the core
# ---------------------------------------------------------------------------

@dataclass
class TenantState:
    """Everything the core tracks about one tenant."""

    tenant: str
    policy: TenantPolicy
    breaker: CircuitBreaker
    inflight: int = 0  #: kernels occupying a stream slot right now
    queued: int = 0  #: admitted requests waiting for a stream slot
    submits: int = 0
    rejections: int = 0
    faults: int = 0
    hangs: int = 0
    cache_hits: int = 0
    completions: int = 0
    failures: int = 0
    retries: int = 0
    #: per-request service latencies in simulated cycles; cache hits
    #: are served instantly and contribute 0.0 samples, so the p99
    #: tracks the executed tail
    latencies_cycles: List[float] = field(default_factory=list)

    def p99_cycles(self) -> float:
        return percentile(self.latencies_cycles, 0.99)

    def p50_cycles(self) -> float:
        return percentile(self.latencies_cycles, 0.50)


#: SLO counter leaves registered up front (docs/OBSERVABILITY.md)
SLO_LEAVES = (
    "submitted", "admitted", "rejected", "completed", "failed",
    "retries", "quarantines", "cache_hits", "cache_misses", "hangs",
)


class ServiceCore:
    """The tenant-granular control plane (module docstring).

    Thread-safe: the asyncio shell completes work on executor threads.
    Every method taking ``now`` expects simulated cycles — the caller
    owns the clock."""

    def __init__(
        self, cache: Optional[PartitionedResultCache] = None
    ) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}
        self._exec = DeficitRoundRobin()
        self._cache: Optional[PartitionedResultCache] = None
        self.counters = CounterRegistry()
        self.counters.metadata.update(service="repro.serve")
        for leaf in SLO_LEAVES:
            self.counters.counter(f"serve.slo.{leaf}")
        if cache is not None:
            self.attach_cache(cache)

    # -- registration ---------------------------------------------------

    def attach_cache(self, cache: PartitionedResultCache) -> None:
        """Bind the partitioned result cache (idempotent for the same
        instance).  Partitions and ``serve.tenant[<t>].cache.*`` gauges
        are carved out for already-registered tenants and for every
        tenant registered afterwards."""
        with self._lock:
            if self._cache is cache:
                return
            if self._cache is not None:
                raise ValueError(
                    "a different PartitionedResultCache is already "
                    "attached to this core"
                )
            self._cache = cache
            for tenant, state in self._tenants.items():
                self._bind_cache_partition(tenant, state)

    def _bind_cache_partition(
        self, tenant: str, state: TenantState
    ) -> None:
        """Carve the tenant's partition + gauges (lock held)."""
        share = state.policy.cache_share
        if share is None:
            share = state.policy.weight
        part = self._cache.register_tenant(tenant, share=share)
        prefix = f"serve.tenant[{tenant}].cache"
        reg = self.counters
        reg.gauge(f"{prefix}.hits", lambda p=part: p.hits)
        reg.gauge(f"{prefix}.misses", lambda p=part: p.misses)
        reg.gauge(f"{prefix}.evictions", lambda p=part: p.evictions)
        reg.gauge(f"{prefix}.entries", lambda p=part: len(p))
        reg.gauge(f"{prefix}.capacity", lambda p=part: p.capacity)

    def register_tenant(
        self, tenant: str, policy: Optional[TenantPolicy] = None
    ) -> TenantState:
        """Register ``tenant`` (idempotent) and bind its telemetry
        rollups: ``serve.tenant[<t>].{submits,faults,rejections,
        cache_hits,p99_cycles,...}``."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None:
                return state
            state = TenantState(
                tenant=tenant,
                policy=policy or TenantPolicy(),
                breaker=CircuitBreaker(policy or TenantPolicy()),
            )
            self._tenants[tenant] = state
            self._exec.register(
                tenant,
                weight=state.policy.weight,
                priority=state.policy.priority,
            )
            prefix = f"serve.tenant[{tenant}]"
            reg = self.counters
            for leaf in (
                "submits", "faults", "rejections", "cache_hits",
                "hangs", "completions", "failures", "retries",
            ):
                reg.gauge(
                    f"{prefix}.{leaf}",
                    (lambda s=state, n=leaf: getattr(s, n)),
                )
            reg.gauge(f"{prefix}.p99_cycles", state.p99_cycles)
            reg.gauge(
                f"{prefix}.quarantines", lambda s=state: s.breaker.opens
            )
            reg.gauge(
                f"{prefix}.queue_depth", lambda s=state: s.queued
            )
            reg.gauge(
                f"{prefix}.exec_queued",
                lambda q=self._exec, t=tenant: q.depth(t),
            )
            if self._cache is not None:
                self._bind_cache_partition(tenant, state)
            return state

    def tenant(self, tenant: str) -> TenantState:
        """The tenant's state; raises :class:`UnknownTenant`."""
        state = self._tenants.get(tenant)
        if state is None:
            raise UnknownTenant(
                tenant,
                f"no registration for tenant {tenant!r}; call "
                f"register_tenant (or the wire 'register' op) first",
            )
        return state

    def tenants(self) -> List[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenants)

    # -- weighted-fair execution grants ---------------------------------

    def queue_for_execution(self, tenant: str, token: Any) -> None:
        """Park a slot-holding request until a shared GPU frees up; it
        will be released by :meth:`next_for_execution` in weighted-fair
        order rather than global FIFO."""
        with self._lock:
            self.tenant(tenant)
            self._exec.push(tenant, token)

    def next_for_execution(self) -> Optional[Tuple[str, Any]]:
        """The next ``(tenant, token)`` to grant a freed GPU to — strict
        priority classes first, deficit-round-robin by weight within a
        class — or ``None`` when nothing is pending."""
        with self._lock:
            return self._exec.pop()

    def execution_backlog(self, tenant: str) -> int:
        """Requests parked in the tenant's execution queue."""
        with self._lock:
            return self._exec.depth(tenant)

    def execution_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant fair-queue state (weight/priority/depth/deficit)."""
        with self._lock:
            return self._exec.snapshot()

    # -- admission ------------------------------------------------------

    def check_admission(self, tenant: str, now: float) -> None:
        """Gate one submission: counts it, rejects (with a structured
        error) when the tenant is unknown or quarantined.  Runs before
        the cache lookup, so a quarantined tenant cannot even be served
        from cache — quarantine means *no service*."""
        with self._lock:
            state = self.tenant(tenant)
            state.submits += 1
            self.counters.counter("serve.slo.submitted").add(1)
            if not state.breaker.allow(now):
                self._reject(state)
                raise TenantQuarantined(
                    tenant,
                    f"circuit breaker {state.breaker.state} "
                    f"(faults={state.breaker.fault_tally(now)}/"
                    f"{state.policy.fault_budget}, "
                    f"hangs={state.breaker.hang_tally(now)}/"
                    f"{state.policy.hang_budget})",
                )

    def acquire_slot(self, tenant: str, now: float) -> str:
        """Claim capacity for an admitted request: ``"run"`` when a
        stream slot is free, ``"queued"`` when it must wait; sheds with
        :class:`QueueFull` when quota and queue are both exhausted."""
        with self._lock:
            state = self.tenant(tenant)
            if state.inflight < state.policy.max_streams:
                state.inflight += 1
                self.counters.counter("serve.slo.admitted").add(1)
                return "run"
            if state.queued >= state.policy.max_queue_depth:
                self._reject(state)
                raise QueueFull(
                    tenant,
                    f"{state.inflight} in flight (quota "
                    f"{state.policy.max_streams}) and "
                    f"{state.queued} queued (limit "
                    f"{state.policy.max_queue_depth})",
                )
            state.queued += 1
            self.counters.counter("serve.slo.admitted").add(1)
            return "queued"

    def promote(self, tenant: str) -> None:
        """Move one queued request into a freed stream slot."""
        with self._lock:
            state = self.tenant(tenant)
            state.queued -= 1
            state.inflight += 1

    def quarantined(self, tenant: str, now: float) -> bool:
        """Is the tenant's breaker OPEN right now?  Callers holding
        admitted-but-unstarted work for the tenant use this to shed it
        (quarantine drops the backlog too, not just new submissions)."""
        with self._lock:
            state = self.tenant(tenant)
            return state.breaker.state_at(now) == CircuitBreaker.OPEN

    def shed_queued(self, tenant: str) -> None:
        """Drop one admitted-but-unstarted request of a quarantined
        tenant: releases its queue slot and counts a structured
        rejection."""
        with self._lock:
            state = self.tenant(tenant)
            state.queued -= 1
            self._reject(state)

    def _reject(self, state: TenantState) -> None:
        state.rejections += 1
        self.counters.counter("serve.slo.rejected").add(1)

    # -- outcomes -------------------------------------------------------

    def record_cache_hit(self, tenant: str) -> None:
        """An admitted submission was served from the result cache (no
        stream slot consumed)."""
        with self._lock:
            state = self.tenant(tenant)
            state.cache_hits += 1
            state.latencies_cycles.append(0.0)
            self.counters.counter("serve.slo.cache_hits").add(1)

    def record_cache_miss(self) -> None:
        with self._lock:
            self.counters.counter("serve.slo.cache_misses").add(1)

    def complete(
        self,
        tenant: str,
        now: float,
        *,
        latency_cycles: float,
        faults: int = 0,
        retries: int = 0,
    ) -> None:
        """One executed request finished cleanly: release its stream
        slot, record the latency sample, and feed the kernel's fault
        tally to the breaker (this is where a fault storm eventually
        trips quarantine)."""
        with self._lock:
            state = self.tenant(tenant)
            state.inflight -= 1
            state.completions += 1
            state.faults += faults
            state.retries += retries
            state.latencies_cycles.append(latency_cycles)
            ctr = self.counters.counter
            ctr("serve.slo.completed").add(1)
            ctr("serve.slo.retries").add(retries)
            opens_before = state.breaker.opens
            state.breaker.record_faults(faults, now)
            state.breaker.record_success(now)
            if state.breaker.opens > opens_before:
                ctr("serve.slo.quarantines").add(1)

    def fail(
        self,
        tenant: str,
        now: float,
        *,
        hang: bool,
        retries: int = 0,
    ) -> None:
        """One executed request exhausted its attempts: release the slot
        and feed the breaker (a hang counts against the hang budget)."""
        with self._lock:
            state = self.tenant(tenant)
            state.inflight -= 1
            state.failures += 1
            state.retries += retries
            ctr = self.counters.counter
            ctr("serve.slo.failed").add(1)
            ctr("serve.slo.retries").add(retries)
            if hang:
                state.hangs += 1
                ctr("serve.slo.hangs").add(1)
                opens_before = state.breaker.opens
                state.breaker.record_hang(now)
                if state.breaker.opens > opens_before:
                    ctr("serve.slo.quarantines").add(1)

    # -- reporting ------------------------------------------------------

    def tenant_summary(self, tenant: str) -> Dict:
        """JSON-able rollup of one tenant (deterministic field order)."""
        state = self.tenant(tenant)
        return {
            "tenant": tenant,
            "weight": state.policy.weight,
            "priority": state.policy.priority,
            "submits": state.submits,
            "completions": state.completions,
            "failures": state.failures,
            "rejections": state.rejections,
            "retries": state.retries,
            "faults": state.faults,
            "hangs": state.hangs,
            "cache_hits": state.cache_hits,
            "p50_cycles": state.p50_cycles(),
            "p99_cycles": state.p99_cycles(),
            "breaker": state.breaker.state,
            "quarantines": state.breaker.opens,
        }

    def summary(self) -> Dict:
        """JSON-able rollup of the whole service."""
        return {
            "tenants": {
                t: self.tenant_summary(t) for t in self.tenants()
            },
            "slo": {
                leaf: self.counters.value(f"serve.slo.{leaf}")
                for leaf in SLO_LEAVES
            },
        }
