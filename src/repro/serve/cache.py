"""Content-addressed result cache for the serving layer.

Every submission is a plain JSON-able *spec* dict and every simulation
is a pure function of its spec (the whole repo is built on that
determinism), so results are cacheable by content address: the key is
:func:`repro.harness.hashing.content_hash` over the spec — the same
canonical-JSON sha256 scheme the campaign checkpoints use
(``cells/<key>.<hash>.json``), so a spec tweak *anywhere* changes the
key and can never serve a stale result.

:class:`ResultCache` is a bounded LRU.  A hit returns the exact dict a
cold run produced (bit-identical tables — the acceptance criterion in
BENCH_serve.json), costs the tenant no stream slot, and counts into
``serve.tenant[<t>].cache_hits``.

:class:`PartitionedResultCache` divides one capacity budget into
per-tenant LRU partitions (shares proportional to the tenant policy's
``cache_share``, which defaults to its fair-queue weight).  Isolation
is structural: a tenant's misses insert only into its own partition, so
one tenant churning through a huge spec space can *never* evict another
tenant's working set — the property the fairness experiment asserts as
"zero storm-induced evictions" and exports through the
``serve.tenant[<t>].cache.*`` gauges.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.harness.hashing import content_hash

#: default retained entries; micro-workload results are ~200B dicts
DEFAULT_CAPACITY = 1024


class ResultCache:
    """Bounded LRU of ``spec-hash -> result dict``; thread-safe."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._store: "OrderedDict[str, Dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(spec: Dict) -> str:
        """The content address of one submission spec."""
        return content_hash(spec)

    def get(self, key: str) -> Optional[Dict]:
        """The cached result, or ``None``; a hit refreshes recency."""
        with self._lock:
            value = self._store.get(key)
            if value is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: Dict) -> None:
        """Insert (or refresh) one result, evicting the LRU entry past
        capacity."""
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict:
        """JSON-able counters for reports."""
        return {
            "entries": len(self._store),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PartitionedResultCache:
    """Per-tenant LRU partitions over one shared capacity budget.

    Each registered tenant owns a private :class:`ResultCache` sized
    ``max(1, floor(total * share / sum_shares))``.  Re-registration
    rebalances partition capacities; a shrunken partition trims lazily
    on its next ``put`` (the LRU loop already evicts past capacity).

    The aggregate ``stats()`` keeps the flat ``ResultCache`` schema
    (``entries``/``capacity``/``hits``/``misses``/``evictions``/
    ``hit_rate``) so reports stay drop-in compatible, and nests the
    per-tenant partition stats under ``"tenants"``.
    """

    def __init__(self, total_capacity: int = DEFAULT_CAPACITY) -> None:
        if total_capacity < 1:
            raise ValueError("total_capacity must be positive")
        self.total_capacity = total_capacity
        self._lock = threading.Lock()
        self._partitions: "OrderedDict[str, ResultCache]" = OrderedDict()
        self._shares: Dict[str, int] = {}

    key = staticmethod(ResultCache.key)

    def register_tenant(self, tenant: str, share: int = 1) -> ResultCache:
        """Create (or return) the tenant's partition and rebalance all
        partition capacities to the new share distribution."""
        if share < 1:
            raise ValueError("share must be >= 1")
        with self._lock:
            if tenant not in self._partitions:
                self._partitions[tenant] = ResultCache(capacity=1)
                self._shares[tenant] = int(share)
                self._rebalance()
            return self._partitions[tenant]

    def _rebalance(self) -> None:
        total_shares = sum(self._shares.values())
        for tenant, part in self._partitions.items():
            part.capacity = max(
                1,
                self.total_capacity * self._shares[tenant] // total_shares,
            )

    def partition(self, tenant: str) -> ResultCache:
        """The tenant's private partition; raises ``KeyError``."""
        part = self._partitions.get(tenant)
        if part is None:
            raise KeyError(f"no cache partition for tenant {tenant!r}")
        return part

    def get(self, tenant: str, key: str) -> Optional[Dict]:
        return self.partition(tenant).get(key)

    def put(self, tenant: str, key: str, value: Dict) -> None:
        self.partition(tenant).put(key, value)

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions.values())

    @property
    def hits(self) -> int:
        return sum(p.hits for p in self._partitions.values())

    @property
    def misses(self) -> int:
        return sum(p.misses for p in self._partitions.values())

    @property
    def evictions(self) -> int:
        return sum(p.evictions for p in self._partitions.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict:
        """Aggregate counters plus per-tenant partition stats."""
        return {
            "entries": len(self),
            "capacity": self.total_capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "tenants": {
                t: p.stats() for t, p in sorted(self._partitions.items())
            },
        }
