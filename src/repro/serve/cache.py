"""Content-addressed result cache for the serving layer.

Every submission is a plain JSON-able *spec* dict and every simulation
is a pure function of its spec (the whole repo is built on that
determinism), so results are cacheable by content address: the key is
:func:`repro.harness.hashing.content_hash` over the spec — the same
canonical-JSON sha256 scheme the campaign checkpoints use
(``cells/<key>.<hash>.json``), so a spec tweak *anywhere* changes the
key and can never serve a stale result.

The cache is a bounded LRU.  A hit returns the exact dict a cold run
produced (bit-identical tables — the acceptance criterion in
BENCH_serve.json), costs the tenant no stream slot, and counts into
``serve.tenant[<t>].cache_hits``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.harness.hashing import content_hash

#: default retained entries; micro-workload results are ~200B dicts
DEFAULT_CAPACITY = 1024


class ResultCache:
    """Bounded LRU of ``spec-hash -> result dict``; thread-safe."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._store: "OrderedDict[str, Dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(spec: Dict) -> str:
        """The content address of one submission spec."""
        return content_hash(spec)

    def get(self, key: str) -> Optional[Dict]:
        """The cached result, or ``None``; a hit refreshes recency."""
        with self._lock:
            value = self._store.get(key)
            if value is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: Dict) -> None:
        """Insert (or refresh) one result, evicting the LRU entry past
        capacity."""
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict:
        """JSON-able counters for reports."""
        return {
            "entries": len(self._store),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
