"""The serving data plane: one submission spec -> one simulated kernel.

:func:`execute_request` is a *module-level, picklable* pure function so
the asyncio service can run it through
:func:`repro.harness.isolation.run_experiment_isolated` (forked child,
wall-clock timeout, structured failure capture) exactly like any other
harness experiment — a tenant's wedged or crashing kernel can never
take the service process down.

A spec is a plain JSON-able dict (that is what makes it content-
addressable for the :class:`repro.serve.cache.ResultCache`):

``workload``        required; any registered workload name
``scheme``          exception-handling scheme (default ``replay-queue``)
``paging``          ``demand`` | ``prefetch-neighborhood`` (default demand)
``interconnect``    default ``nvlink``
``time_scale``      default :data:`DEFAULT_TIME_SCALE`
``seed``            chaos seed (default 0); bumped by reseed-retries
``chaos_intensity`` > 0 enables a seeded :class:`ChaosEngine` at that
                    intensity (``fault.storm`` et al.), plus sanitizer
``cycle_budget``    watchdog no-progress window override
``hang``            truthy => raise a deterministic
                    :class:`SimulationHang` *instead of simulating* —
                    the containment experiment's synthetic wedged
                    tenant, indistinguishable to the service from a
                    real watchdog trip

The result dict carries timing, the per-kernel fault tally that feeds
the tenant's fault budget, and a state digest
(:func:`repro.harness.chaos_campaign.architectural_digest` content-
hashed) so cache hits are checkable against cold runs bit-for-bit.
"""

from __future__ import annotations

from typing import Dict

from repro.chaos import (
    ChaosConfig, ChaosEngine, HangDiagnostic, SimulationHang, Watchdog,
)
from repro.core import make_scheme
from repro.harness.experiments import DEFAULT_TIME_SCALE
from repro.harness.hashing import content_hash
from repro.system import GPUConfig, GpuSimulator, INTERCONNECTS
from repro.workloads import get_workload

#: spec keys the executor understands (anything else is rejected so a
#: typo'd knob cannot silently produce — and cache — the wrong run)
SPEC_KEYS = frozenset((
    "workload", "scheme", "paging", "interconnect", "time_scale",
    "seed", "chaos_intensity", "cycle_budget", "hang",
))


def _synthetic_hang(spec: Dict) -> SimulationHang:
    budget = float(spec.get("cycle_budget") or 0.0)
    return SimulationHang(
        HangDiagnostic(
            cycle=budget,
            cycle_budget=budget,
            blocks_remaining=1,
            committed=0,
            warp_states={"injected": []},
        )
    )


def execute_request(spec: Dict) -> Dict:
    """Run one submission; pure function of ``spec`` (module docstring).

    Raises ``SimulationHang`` on a watchdog trip (real or injected via
    ``hang``), ``KeyError``/``ValueError`` on malformed specs; any
    exception crosses the isolation boundary as a structured
    :class:`~repro.harness.isolation.ExperimentFailure`.
    """
    unknown = set(spec) - SPEC_KEYS
    if unknown:
        raise ValueError(
            f"unknown spec key(s) {sorted(unknown)}; "
            f"accepted: {sorted(SPEC_KEYS)}"
        )
    if spec.get("hang"):
        raise _synthetic_hang(spec)

    time_scale = float(spec.get("time_scale", DEFAULT_TIME_SCALE))
    seed = int(spec.get("seed", 0))
    intensity = float(spec.get("chaos_intensity", 0.0))
    wl = get_workload(spec["workload"])
    cfg = GPUConfig().time_scaled(time_scale)
    ic = INTERCONNECTS[spec.get("interconnect", "nvlink")].scaled(time_scale)
    chaos = (
        ChaosEngine(ChaosConfig(seed=seed).scaled(intensity))
        if intensity > 0
        else None
    )
    budget = spec.get("cycle_budget")
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        config=cfg,
        scheme=make_scheme(spec.get("scheme", "replay-queue")),
        interconnect=ic,
        paging=spec.get("paging", "demand"),
        chaos=chaos,
        watchdog=Watchdog(budget) if budget is not None else Watchdog(),
        sanitize=chaos is not None,
    )
    result = sim.run()

    from repro.harness.chaos_campaign import architectural_digest

    digest = architectural_digest(sim)
    return {
        "workload": spec["workload"],
        "scheme": spec.get("scheme", "replay-queue"),
        "seed": seed,
        "cycles": result.cycles,
        "instructions": result.dynamic_instructions,
        "faults_raised": (
            result.fault_stats.faults_raised if result.fault_stats else 0
        ),
        "injections": chaos.total_injections if chaos is not None else 0,
        "state_digest": content_hash(
            [sorted(digest[0]), digest[1], digest[2]]
        ),
    }
