"""The socket front-end: NDJSON frames over unix-socket or loopback TCP.

This is the serving analogue of :mod:`repro.harness.distproto` and
follows the same conventions — a ``WIRE_PROTOCOL_VERSION`` both sides
refuse to mismatch, canonical-JSON bodies, structured error payloads —
but swaps HTTP request/response for a persistent stream of
**newline-delimited JSON frames** (one JSON object per ``\\n``-terminated
line, at most :data:`MAX_FRAME_BYTES` each), which fits a chatty
submit/poll/result session far better than one HTTP round-trip per op.

A connection opens with a handshake::

    C: {"op": "hello", "protocol": 1}
    S: {"ok": true, "protocol": 1, "server": "repro.serve", "tenants": [...]}

then carries any number of ops (docs/SERVING.md has the full reference):

``register``
    register a tenant with optional :class:`~repro.serve.core
    .TenantPolicy` overrides (``weight``, ``priority``, quotas...).
``submit``
    enqueue one spec; returns a request id immediately.  The execution
    runs in the daemon's asyncio shell; rejections that need tenant
    state (queue-full, quarantined) surface when the result is fetched,
    while unknown-tenant and draining-shutdown sheds are immediate.
``poll`` / ``result``
    request status by id; ``result`` optionally blocks up to ``wait``
    seconds and returns the serialized ServeResult, or the structured
    rejection dict (``code``/``reason``/``tenant``/``detail``) the
    client rehydrates into a typed :class:`~repro.serve.core
    .ServeRejection`.
``stats``
    the core summary + cache partition stats + fair-queue snapshot.
``shutdown``
    begin a clean drain: new submits are shed with
    :class:`~repro.serve.core.ServiceUnavailable`, in-flight requests
    finish (bounded by ``drain_timeout``), then the listener, asyncio
    loop and its executor threads are torn down — no orphans.

:class:`ServeDaemon` hosts a :class:`~repro.serve.service.GpuService`
on a background asyncio loop; each connection is handled by a
``ThreadingMixIn`` daemon thread that bridges into the loop with
``asyncio.run_coroutine_threadsafe``.  All traffic is counted into the
``serve.wire.*`` counters (``repro.serve.metrics.SERVE_COUNTERS``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import json
import os
import socketserver
import threading
from typing import Dict, Optional, Tuple, Union

from .core import ServeRejection, ServiceUnavailable, TenantPolicy, UnknownTenant
from .service import GpuService, ServeResult

#: bumped on any incompatible wire change; both sides refuse mismatches
WIRE_PROTOCOL_VERSION = 1

#: one frame (a single NDJSON line, newline included) may not exceed
#: this; the reader enforces it before parsing, so a garbage client
#: cannot balloon the daemon's memory
MAX_FRAME_BYTES = 1 << 20

#: counter leaves under ``serve.wire.*`` (see repro.serve.metrics)
WIRE_COUNTER_LEAVES = (
    "connections", "disconnects", "frames_in", "frames_out",
    "submits", "rejections", "results", "errors",
    "malformed", "oversized", "version_mismatch",
)


class WireError(Exception):
    """A malformed, truncated or version-mismatched wire exchange."""


class MalformedFrame(WireError):
    """A complete line arrived but is not a JSON object."""


class FrameTooLarge(WireError):
    """A line exceeded :data:`MAX_FRAME_BYTES` before its newline."""


def register_wire_counters(registry) -> None:
    """Pre-register every ``serve.wire.*`` counter (idempotent)."""
    for leaf in WIRE_COUNTER_LEAVES:
        registry.counter(f"serve.wire.{leaf}")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_frame(payload: Dict) -> bytes:
    """One canonical-JSON line; raises :class:`FrameTooLarge`."""
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode() + b"\n"
    if len(blob) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"frame of {len(blob)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return blob


def decode_frame(line: bytes) -> Dict:
    """Parse one complete line; raises :class:`MalformedFrame` unless
    it decodes to a JSON object."""
    try:
        data = json.loads(line.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise MalformedFrame(f"frame is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise MalformedFrame(
            f"frame must be a JSON object, got {type(data).__name__}"
        )
    return data


def read_frame(rfile) -> Optional[Dict]:
    """Read one frame from a buffered byte stream.

    Returns ``None`` on a clean EOF (connection closed at a frame
    boundary); raises :class:`FrameTooLarge` when a line exceeds the
    limit, :class:`WireError` when the peer disconnected mid-frame and
    :class:`MalformedFrame` on bad JSON."""
    line = rfile.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"frame exceeds {MAX_FRAME_BYTES} bytes before its newline"
        )
    if not line.endswith(b"\n"):
        raise WireError("peer disconnected mid-frame (no trailing newline)")
    return decode_frame(line)


def check_version(payload: Dict, side: str) -> None:
    """Refuse to interoperate across protocol versions (distproto
    convention)."""
    version = payload.get("protocol")
    if version != WIRE_PROTOCOL_VERSION:
        raise WireError(
            f"{side} speaks wire protocol {version!r}, "
            f"this build speaks {WIRE_PROTOCOL_VERSION}"
        )


#: wire-settable TenantPolicy fields -> coercion
_POLICY_FIELDS = {
    "max_streams": int,
    "max_queue_depth": int,
    "fault_budget": int,
    "hang_budget": int,
    "breaker_window": float,
    "cooldown": float,
    "half_open_probes": int,
    "weight": int,
    "priority": int,
    "cache_share": int,
}


def policy_from_wire(data: Dict) -> TenantPolicy:
    """A :class:`TenantPolicy` from wire overrides; raises
    :class:`WireError` on unknown fields or uncoercible values."""
    unknown = sorted(set(data) - set(_POLICY_FIELDS))
    if unknown:
        raise WireError(f"unknown policy fields: {unknown}")
    kwargs = {}
    for name, value in data.items():
        try:
            kwargs[name] = _POLICY_FIELDS[name](value)
        except (TypeError, ValueError) as exc:
            raise WireError(f"bad policy field {name}={value!r}: {exc}")
    return TenantPolicy(**kwargs)


def result_to_wire(res: ServeResult) -> Dict:
    """Serialize one admitted outcome (rejections travel separately as
    their ``to_dict`` under the ``rejected`` key)."""
    failure = None
    if res.failure is not None:
        failure = {
            "kind": res.failure.kind,
            "message": res.failure.message,
            "attempts": res.attempts,
        }
    return {
        "tenant": res.tenant,
        "key": res.key,
        "cached": res.cached,
        "attempts": res.attempts,
        "ok": res.ok,
        "value": res.value,
        "failure": failure,
    }


def _error(code: str, detail: str) -> Dict:
    return {"ok": False, "error": {"code": code, "detail": detail}}


# ---------------------------------------------------------------------------
# the daemon
# ---------------------------------------------------------------------------

class _UnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True
    #: don't join handler threads in server_close: a handler blocked
    #: reading from a still-connected client would wedge shutdown; the
    #: daemon threads exit on their client's EOF instead
    block_on_close = False


class _TcpServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    daemon_threads = True
    allow_reuse_address = True
    block_on_close = False


class ServeDaemon:
    """Host a :class:`GpuService` behind the NDJSON socket protocol.

    Exactly one of ``path`` (unix socket) or ``port`` (loopback TCP;
    0 picks an ephemeral port, read it back from ``address``) must be
    given.  ``start()`` spins up the asyncio loop thread and the
    threading socket server; ``shutdown()`` drains and tears everything
    down.  Usable as a context manager."""

    def __init__(
        self,
        service: GpuService,
        *,
        path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        drain_timeout: float = 30.0,
    ) -> None:
        if (path is None) == (port is None):
            raise ValueError("exactly one of path= or port= is required")
        self.service = service
        self.core = service.core
        self.path = path
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        register_wire_counters(self.core.counters)
        self._loop = asyncio.new_event_loop()
        self._loop_thread: Optional[threading.Thread] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._server: Optional[socketserver.BaseServer] = None
        self._requests: Dict[str, concurrent.futures.Future] = {}
        self._req_lock = threading.Lock()
        self._next_id = 0
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._finished = threading.Event()

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> Union[str, Tuple[str, int]]:
        """Where clients connect: the socket path, or ``(host, port)``."""
        if self.path is not None:
            return self.path
        return (self.host, self.port)

    def start(self) -> "ServeDaemon":
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="serve-loop", daemon=True
        )
        self._loop_thread.start()
        daemon = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # noqa: D102 - bridge
                daemon._handle(self)

        if self.path is not None:
            if os.path.exists(self.path):
                os.unlink(self.path)
            self._server = _UnixServer(self.path, Handler)
        else:
            self._server = _TcpServer((self.host, self.port), Handler)
            self.port = self._server.server_address[1]
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            name="serve-wire",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, settle in-flight work, tear down cleanly.

        ``drain=True`` waits (up to ``drain_timeout``) for in-flight
        requests; ``drain=False`` cancels them.  Either way the socket
        server, the asyncio loop and the loop's default executor are
        all shut down, so no threads or children outlive the call."""
        if self._stopped.is_set():
            self._finished.wait(self.drain_timeout + 10.0)
            return
        self._stopped.set()
        self._draining.set()
        try:
            with self._req_lock:
                pending = [
                    f for f in self._requests.values() if not f.done()
                ]
            if drain:
                concurrent.futures.wait(
                    pending, timeout=self.drain_timeout
                )
            else:
                for fut in pending:
                    fut.cancel()
                concurrent.futures.wait(pending, timeout=1.0)
            if self._server is not None:
                self._server.shutdown()
                self._server.server_close()
                if self._serve_thread is not None:
                    self._serve_thread.join(timeout=5.0)
            if self.path is not None and os.path.exists(self.path):
                os.unlink(self.path)
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=5.0)
            if not self._loop.is_running():
                # reap the default executor's worker threads before
                # closing
                self._loop.run_until_complete(
                    self._loop.shutdown_default_executor()
                )
                self._loop.close()
        finally:
            self._finished.set()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon has fully shut down (the foreground
        ``python -m repro.harness serve`` mode parks here); returns
        whether it stopped within ``timeout``."""
        return self._finished.wait(timeout)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def pending_requests(self) -> int:
        with self._req_lock:
            return sum(
                1 for f in self._requests.values() if not f.done()
            )

    # -- connection handling --------------------------------------------

    def _ctr(self, leaf: str):
        return self.core.counters.counter(f"serve.wire.{leaf}")

    def _send(self, handler, payload: Dict) -> None:
        handler.wfile.write(encode_frame(payload))
        handler.wfile.flush()
        self._ctr("frames_out").add(1)

    def _handle(self, handler) -> None:
        self._ctr("connections").add(1)
        clean = False
        try:
            frame = read_frame(handler.rfile)
            if frame is None:
                clean = True
                return
            self._ctr("frames_in").add(1)
            if frame.get("op") != "hello":
                self._ctr("errors").add(1)
                self._send(handler, _error(
                    "handshake-required",
                    "first frame must be op=hello with a protocol field",
                ))
                return
            if frame.get("protocol") != WIRE_PROTOCOL_VERSION:
                self._ctr("version_mismatch").add(1)
                self._send(handler, _error(
                    "version-mismatch",
                    f"client speaks wire protocol "
                    f"{frame.get('protocol')!r}, server speaks "
                    f"{WIRE_PROTOCOL_VERSION}",
                ))
                return
            self._send(handler, {
                "ok": True,
                "protocol": WIRE_PROTOCOL_VERSION,
                "server": "repro.serve",
                "tenants": self.core.tenants(),
            })
            while True:
                frame = read_frame(handler.rfile)
                if frame is None:
                    clean = True
                    return
                self._ctr("frames_in").add(1)
                self._send(handler, self._dispatch(frame))
        except FrameTooLarge as exc:
            self._ctr("oversized").add(1)
            self._try_send(handler, _error("frame-too-large", str(exc)))
        except MalformedFrame as exc:
            self._ctr("malformed").add(1)
            self._try_send(handler, _error("malformed-frame", str(exc)))
        except (WireError, ConnectionError, OSError, ValueError):
            pass  # disconnect mid-frame / send failure: counted below
        finally:
            if not clean:
                self._ctr("disconnects").add(1)

    def _try_send(self, handler, payload: Dict) -> None:
        try:
            self._send(handler, payload)
        except (ConnectionError, OSError, ValueError):
            pass

    # -- op dispatch -----------------------------------------------------

    def _dispatch(self, frame: Dict) -> Dict:
        op = frame.get("op")
        handlers = {
            "ping": self._op_ping,
            "register": self._op_register,
            "submit": self._op_submit,
            "poll": self._op_poll,
            "result": self._op_result,
            "stats": self._op_stats,
            "shutdown": self._op_shutdown,
        }
        fn = handlers.get(op)
        if fn is None:
            self._ctr("errors").add(1)
            return _error(
                "unknown-op",
                f"op {op!r} is not one of {sorted(handlers)}",
            )
        return fn(frame)

    def _op_ping(self, frame: Dict) -> Dict:
        return {"ok": True, "draining": self.draining}

    def _op_register(self, frame: Dict) -> Dict:
        tenant = frame.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            self._ctr("errors").add(1)
            return _error("bad-request", "register needs a tenant name")
        try:
            policy = policy_from_wire(frame.get("policy") or {})
        except WireError as exc:
            self._ctr("errors").add(1)
            return _error("bad-policy", str(exc))
        state = self.service.register_tenant(tenant, policy)
        return {
            "ok": True,
            "tenant": tenant,
            "policy": dataclasses.asdict(state.policy),
        }

    def _op_submit(self, frame: Dict) -> Dict:
        tenant = frame.get("tenant")
        spec = frame.get("spec")
        if not isinstance(tenant, str) or not isinstance(spec, dict):
            self._ctr("errors").add(1)
            return _error(
                "bad-request", "submit needs a tenant and a spec object"
            )
        self._ctr("submits").add(1)
        if self.draining:
            self._ctr("rejections").add(1)
            rej = ServiceUnavailable(
                tenant, "daemon is draining for shutdown"
            )
            return {"ok": False, "status": "rejected",
                    "rejected": rej.to_dict()}
        try:
            self.core.tenant(tenant)  # surface unknown-tenant eagerly
        except UnknownTenant as rej:
            self._ctr("rejections").add(1)
            return {"ok": False, "status": "rejected",
                    "rejected": rej.to_dict()}
        fut = asyncio.run_coroutine_threadsafe(
            self.service.submit(tenant, spec), self._loop
        )
        with self._req_lock:
            self._next_id += 1
            rid = f"r{self._next_id:06d}"
            self._requests[rid] = fut
        return {"ok": True, "id": rid}

    def _lookup(self, frame: Dict):
        rid = frame.get("id")
        with self._req_lock:
            fut = self._requests.get(rid)
        if fut is None:
            self._ctr("errors").add(1)
            return rid, None, _error(
                "unknown-id", f"no pending request with id {rid!r}"
            )
        return rid, fut, None

    def _op_poll(self, frame: Dict) -> Dict:
        rid, fut, err = self._lookup(frame)
        if err is not None:
            return err
        status = "done" if fut.done() else "pending"
        return {"ok": True, "id": rid, "status": status}

    def _op_result(self, frame: Dict) -> Dict:
        rid, fut, err = self._lookup(frame)
        if err is not None:
            return err
        try:
            wait = float(frame.get("wait", 30.0))
        except (TypeError, ValueError):
            self._ctr("errors").add(1)
            return _error("bad-request", "wait must be a number")
        try:
            res = fut.result(timeout=max(0.0, wait))
        except ServeRejection as rej:
            self._pop(rid)
            self._ctr("rejections").add(1)
            return {"ok": False, "id": rid, "status": "rejected",
                    "rejected": rej.to_dict()}
        except concurrent.futures.TimeoutError:
            return {"ok": True, "id": rid, "status": "pending"}
        except concurrent.futures.CancelledError:
            self._pop(rid)
            self._ctr("errors").add(1)
            return _error("cancelled", f"request {rid} was cancelled")
        except Exception as exc:  # noqa: BLE001 - wire boundary
            self._pop(rid)
            self._ctr("errors").add(1)
            return _error(
                "execution-error", f"{type(exc).__name__}: {exc}"
            )
        self._pop(rid)
        self._ctr("results").add(1)
        return {"ok": True, "id": rid, "status": "done",
                "result": result_to_wire(res)}

    def _pop(self, rid: str) -> None:
        with self._req_lock:
            self._requests.pop(rid, None)

    def _op_stats(self, frame: Dict) -> Dict:
        return {
            "ok": True,
            "stats": {
                "summary": self.core.summary(),
                "cache": self.service.cache.stats(),
                "exec_queue": self.core.execution_snapshot(),
                "wire": {
                    leaf: self.core.counters.value(f"serve.wire.{leaf}")
                    for leaf in WIRE_COUNTER_LEAVES
                },
                "pending_requests": self.pending_requests(),
                "draining": self.draining,
            },
        }

    def _op_shutdown(self, frame: Dict) -> Dict:
        drain = bool(frame.get("drain", True))
        self._draining.set()  # shed new submits immediately
        threading.Thread(
            target=self.shutdown, kwargs={"drain": drain},
            name="serve-shutdown", daemon=True,
        ).start()
        return {"ok": True, "draining": drain}
