"""Synthetic open-loop load + the bit-reproducible virtual-time driver.

The asyncio shell measures real wall-clock throughput, but wall clock
is exactly what a committed benchmark must *not* depend on.  So the
containment experiment in ``BENCH_serve.json`` runs on
:class:`VirtualTimeDriver`: a discrete-event executor that drives the
very same :class:`~repro.serve.core.ServiceCore` /
:class:`~repro.serve.cache.ResultCache` against an arrival schedule
whose times are *simulated cycles* drawn from a seeded RNG.  Service
time for a request is the simulated cycle count its kernel takes
(memoized — the executor is a pure function of its spec); latency is
completion time minus arrival time, so queueing delay is included.
Same seed => identical schedule, identical decisions, identical report
digest.

The driver models the shared-GPU contention that makes containment a
real property: ``num_gpus`` execution slots are shared by *all*
tenants, so one tenant's watchdog-budget-burning hang storm inflates
everyone's queueing delay — until its circuit breaker quarantines it.
:func:`containment_experiment` runs the same schedule twice (storm
tenant clean vs. under ``fault.storm`` chaos + injected hangs) and
reports whether the steady tenants' p99 stayed within bound.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.chaos import SimulationHang
from repro.chaos.watchdog import DEFAULT_CYCLE_BUDGET
from repro.harness.hashing import content_hash

from .cache import ResultCache
from .core import ServeRejection, ServiceCore, TenantPolicy
from .executor import execute_request
from .service import reseeded

#: time scale the serving benchmarks run the micro workloads at
SERVE_TIME_SCALE = 8.0

#: watchdog budget on the storm tenant's chaos specs — sized so a hung
#: attempt burns about as many GPU-cycles as a clean thrash kernel at
#: SERVE_TIME_SCALE; a misbehaving tenant is then contained by its
#: breaker, not by accidentally costing less than honest work
DEFAULT_STORM_CYCLE_BUDGET = 12_000.0


# ---------------------------------------------------------------------------
# open-loop arrivals
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Arrival:
    """One scheduled submission (time in simulated cycles)."""

    time: float
    tenant: str
    seq: int  #: per-tenant sequence number (tie-breaker)
    spec: Dict


def open_loop_arrivals(
    seed: int,
    tenant: str,
    menu: Sequence[Dict],
    count: int,
    mean_gap_cycles: float,
    repeat_rate: float = 0.35,
) -> List[Arrival]:
    """Seeded Poisson arrivals for one tenant.

    Gaps are exponential with the given mean; each submission either
    repeats an earlier spec (probability ``repeat_rate`` — this is what
    exercises the result cache) or takes the next menu item round-robin.
    Seeding mixes the tenant name in, so tenants' streams are
    independent yet jointly reproducible.
    """
    rng = random.Random(f"{seed}/{tenant}")
    arrivals: List[Arrival] = []
    history: List[Dict] = []
    t = 0.0
    for i in range(count):
        t += rng.expovariate(1.0 / mean_gap_cycles)
        if history and rng.random() < repeat_rate:
            spec = rng.choice(history)
        else:
            spec = dict(menu[i % len(menu)])
        history.append(spec)
        arrivals.append(Arrival(time=t, tenant=tenant, seq=i, spec=spec))
    return arrivals


def merge_arrivals(*streams: List[Arrival]) -> List[Arrival]:
    """Interleave per-tenant streams into one deterministic schedule."""
    merged = [a for stream in streams for a in stream]
    merged.sort(key=lambda a: (a.time, a.tenant, a.seq))
    return merged


# ---------------------------------------------------------------------------
# the virtual-time driver
# ---------------------------------------------------------------------------

@dataclass
class _Job:
    """In-flight bookkeeping for one admitted request."""

    tenant: str
    seq: int
    spec: Dict
    key: str
    t_arrive: float
    t_start: float = 0.0
    cycles: float = 0.0
    attempts: int = 0
    value: Optional[Dict] = None
    hang: bool = False


class VirtualTimeDriver:
    """Discrete-event executor of an arrival schedule (module docstring).

    Admission, quotas, budgets and breakers are the ``ServiceCore``'s;
    the driver adds the physics: per-tenant stream slots feed a shared
    pool of ``num_gpus`` execution slots, service time is simulated
    cycles, hung attempts burn the spec's watchdog ``cycle_budget``
    before the (reseeded, cycle-costed) retry — mirroring the asyncio
    shell's retry-with-backoff, with backoff measured in cycles.
    """

    def __init__(
        self,
        core: ServiceCore,
        cache: Optional[ResultCache] = None,
        *,
        num_gpus: int = 2,
        max_attempts: int = 2,
        backoff_cycles: float = 2_000.0,
        executor: Callable[[Dict], Dict] = execute_request,
    ) -> None:
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        self.core = core
        self.cache = cache or ResultCache()
        self.num_gpus = num_gpus
        self.max_attempts = max_attempts
        self.backoff_cycles = backoff_cycles
        self.executor = executor
        #: spec-hash -> ("ok", result) | ("hang", cost_cycles); the
        #: executor is pure, so each unique spec is simulated once
        self._memo: Dict[str, tuple] = {}

    # -- pure-function execution (memoized) -----------------------------

    def _execute(self, spec: Dict) -> tuple:
        key = content_hash(spec)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        try:
            value = self.executor(spec)
        except SimulationHang:
            out = (
                "hang",
                float(spec.get("cycle_budget") or DEFAULT_CYCLE_BUDGET),
            )
        else:
            out = ("ok", value)
        self._memo[key] = out
        return out

    def _service(self, job: _Job) -> None:
        """Fill in the job's total service cycles across retry attempts
        (hung attempts cost the watchdog budget, retries are reseeded
        and pay exponential backoff in cycles)."""
        spec = dict(job.spec)
        total = 0.0
        attempts = 0
        while True:
            attempts += 1
            outcome = self._execute(spec)
            if outcome[0] == "ok":
                value = outcome[1]
                job.cycles = total + float(value["cycles"])
                job.attempts = attempts
                job.value = value
                return
            total += outcome[1]
            if attempts >= self.max_attempts:
                job.cycles = total
                job.attempts = attempts
                job.hang = True
                return
            total += self.backoff_cycles * 2 ** (attempts - 1)
            spec = reseeded(spec, attempts)

    # -- event loop -----------------------------------------------------

    def run(self, arrivals: Sequence[Arrival], label: str = "virtual") -> Dict:
        """Execute the schedule to completion; returns the JSON-able
        report (with a ``digest`` over its deterministic content)."""
        events: List[tuple] = []  # (time, order, kind, payload)
        order = 0
        for a in sorted(arrivals, key=lambda a: (a.time, a.tenant, a.seq)):
            heapq.heappush(events, (a.time, order, "arrive", a))
            order += 1
        gpu_free = self.num_gpus
        gpu_queue: deque = deque()  # holds a stream slot, waits for a GPU
        stream_wait: Dict[str, deque] = {}  # admitted, waits for a slot
        rejections: Dict[str, Dict[str, int]] = {}
        cached_served = 0
        makespan = 0.0

        def start_on_gpu(now: float, job: _Job) -> None:
            nonlocal gpu_free, order
            if gpu_free <= 0:
                gpu_queue.append(job)
                return
            gpu_free -= 1
            job.t_start = now
            self._service(job)
            heapq.heappush(
                events, (now + job.cycles, order, "complete", job)
            )
            order += 1

        while events:
            now, _, kind, payload = heapq.heappop(events)
            makespan = max(makespan, now)
            if kind == "arrive":
                cached_served += self._arrive(
                    now, payload, stream_wait, rejections, start_on_gpu
                )
                continue
            # completion: settle the job, then hand its GPU + stream
            # slot to the next waiters (deterministic FIFO order)
            job = payload
            gpu_free += 1
            if job.hang:
                self.core.fail(
                    job.tenant, now, hang=True, retries=job.attempts - 1
                )
            else:
                self.cache.put(job.key, job.value)
                self.core.complete(
                    job.tenant,
                    now,
                    latency_cycles=now - job.t_arrive,
                    faults=int(job.value.get("faults_raised", 0)),
                    retries=job.attempts - 1,
                )
            waiters = stream_wait.get(job.tenant)
            if waiters and self.core.quarantined(job.tenant, now):
                # quarantine sheds the tenant's admitted backlog too —
                # already-running kernels finish, queued ones do not
                while waiters:
                    waiters.popleft()
                    self.core.shed_queued(job.tenant)
                    counts = rejections.setdefault(job.tenant, {})
                    counts["quarantined"] = counts.get("quarantined", 0) + 1
            if waiters:
                self.core.promote(job.tenant)
                start_on_gpu(now, waiters.popleft())
            while gpu_free > 0 and gpu_queue:
                start_on_gpu(now, gpu_queue.popleft())

        summary = self.core.summary()
        report = {
            "label": label,
            "num_gpus": self.num_gpus,
            "max_attempts": self.max_attempts,
            "backoff_cycles": self.backoff_cycles,
            "makespan_cycles": makespan,
            "unique_specs_simulated": len(self._memo),
            "cache": self.cache.stats(),
            "cached_served": cached_served,
            "rejections": {
                t: dict(sorted(codes.items()))
                for t, codes in sorted(rejections.items())
            },
            "tenants": summary["tenants"],
            "slo": summary["slo"],
        }
        report["digest"] = content_hash(report)
        return report

    def _arrive(
        self,
        now: float,
        arrival: Arrival,
        stream_wait: Dict[str, deque],
        rejections: Dict[str, Dict[str, int]],
        start_on_gpu,
    ) -> int:
        """Admission for one arrival; returns 1 when served from cache."""
        tenant = arrival.tenant
        try:
            self.core.check_admission(tenant, now)
        except ServeRejection as rej:
            counts = rejections.setdefault(tenant, {})
            counts[rej.code] = counts.get(rej.code, 0) + 1
            return 0
        key = self.cache.key(arrival.spec)
        if self.cache.get(key) is not None:
            self.core.record_cache_hit(tenant)
            return 1
        self.core.record_cache_miss()
        job = _Job(
            tenant=tenant,
            seq=arrival.seq,
            spec=arrival.spec,
            key=key,
            t_arrive=now,
        )
        try:
            disposition = self.core.acquire_slot(tenant, now)
        except ServeRejection as rej:
            counts = rejections.setdefault(tenant, {})
            counts[rej.code] = counts.get(rej.code, 0) + 1
            return 0
        if disposition == "queued":
            stream_wait.setdefault(tenant, deque()).append(job)
        else:
            start_on_gpu(now, job)
        return 0


# ---------------------------------------------------------------------------
# the containment experiment
# ---------------------------------------------------------------------------

def steady_menu(
    time_scale: float = SERVE_TIME_SCALE,
    seed_pool: int = 16,
    base_seed: int = 0,
) -> List[Dict]:
    """Clean interactive specs for a well-behaved tenant.

    Each (workload, scheme) pair appears with ``seed_pool`` distinct
    seeds so the spec space is wide enough that the result cache sees a
    realistic hit rate instead of memoizing the whole menu after one
    pass; ``base_seed`` keeps different tenants' spec spaces disjoint.
    The seed does not change a clean run's result — it only changes the
    content address.
    """
    menu: List[Dict] = []
    for s in range(seed_pool):
        for workload, scheme in (
            ("saxpy", "replay-queue"),
            ("stream-sum", "replay-queue"),
            ("saxpy", "wd-commit"),
        ):
            menu.append({
                "workload": workload,
                "scheme": scheme,
                "time_scale": time_scale,
                "seed": base_seed + s,
            })
    return menu


def storm_menu(
    chaotic: bool,
    time_scale: float = SERVE_TIME_SCALE,
    cycle_budget: float = DEFAULT_STORM_CYCLE_BUDGET,
    slots: int = 18,
    hang_every: int = 3,
) -> List[Dict]:
    """Specs for the misbehaving tenant.

    ``slots`` distinct seeds keep the baseline storm tenant actually
    *executing* (not cache-resident), so both runs carry comparable
    storm load and the p99 comparison isolates the chaos, not the
    cache.

    ``chaotic=False`` is the baseline: the same workloads, clean.
    ``chaotic=True`` turns on a heavy ``fault.storm``-scaled chaos
    engine and makes every ``hang_every``-th menu slot a deterministic
    injected hang (watchdog semantics), so the tenant blows its hang
    budget and must be quarantined.
    """
    menu: List[Dict] = []
    for i in range(slots):
        spec = {
            "workload": "tlb-thrash",
            "scheme": "replay-queue",
            "time_scale": time_scale,
            "seed": i,
        }
        if chaotic:
            spec["chaos_intensity"] = 3.0
            spec["cycle_budget"] = cycle_budget
            if i % hang_every == hang_every - 1:
                spec["hang"] = True
        menu.append(spec)
    return menu


def steady_policy() -> TenantPolicy:
    """Generous budgets: demand paging makes faults normal traffic, so
    a clean tenant must never graze its breaker."""
    return TenantPolicy(
        max_streams=2,
        max_queue_depth=12,
        fault_budget=200_000,
        hang_budget=2,
        breaker_window=3_000_000.0,
        cooldown=5_000_000.0,
    )


def storm_policy() -> TenantPolicy:
    """Tight budgets for the chaos tenant: zero tolerated hangs (the
    first watchdog-confirmed hang quarantines) and a cooldown longer
    than the experiment horizon, so containment kicks in before the
    storm can inflate anyone else's tail."""
    return TenantPolicy(
        max_streams=2,
        max_queue_depth=12,
        fault_budget=20_000,
        hang_budget=0,
        breaker_window=3_000_000.0,
        cooldown=50_000_000.0,
    )


def containment_run(
    seed: int,
    chaotic: bool,
    *,
    steady_tenants: int = 2,
    requests_per_tenant: int = 120,
    storm_requests: int = 60,
    mean_gap_cycles: float = 30_000.0,
    num_gpus: int = 2,
    storm_cycle_budget: float = DEFAULT_STORM_CYCLE_BUDGET,
    executor: Callable[[Dict], Dict] = execute_request,
) -> Dict:
    """One virtual-time service run: ``steady_tenants`` clean tenants
    plus one storm tenant (clean when ``chaotic`` is False)."""
    core = ServiceCore()
    names = [f"steady-{i}" for i in range(steady_tenants)]
    for name in names:
        core.register_tenant(name, steady_policy())
    core.register_tenant("storm", storm_policy())
    streams = [
        open_loop_arrivals(
            seed, name, steady_menu(base_seed=100 * (i + 1)),
            requests_per_tenant, mean_gap_cycles,
        )
        for i, name in enumerate(names)
    ]
    streams.append(
        open_loop_arrivals(
            seed, "storm",
            storm_menu(chaotic, cycle_budget=storm_cycle_budget),
            storm_requests, mean_gap_cycles, repeat_rate=0.2,
        )
    )
    driver = VirtualTimeDriver(
        core, num_gpus=num_gpus, executor=executor
    )
    label = "chaotic" if chaotic else "baseline"
    return driver.run(merge_arrivals(*streams), label=label)


def containment_experiment(
    seed: int = 0,
    *,
    p99_bound: float = 1.5,
    executor: Callable[[Dict], Dict] = execute_request,
    **kwargs,
) -> Dict:
    """The BENCH_serve.json containment experiment.

    Runs the identical seeded arrival schedule twice — storm tenant
    clean, then storm tenant under ``fault.storm`` chaos + injected
    hangs — and checks the acceptance criteria: the storm tenant ends
    quarantined with structured rejections, and every steady tenant's
    p99 latency stays within ``p99_bound`` x its no-chaos baseline.
    """
    baseline = containment_run(seed, False, executor=executor, **kwargs)
    chaotic = containment_run(seed, True, executor=executor, **kwargs)
    steady = [t for t in sorted(baseline["tenants"]) if t != "storm"]
    per_tenant = {}
    contained = True
    for name in steady:
        base_p99 = baseline["tenants"][name]["p99_cycles"]
        chaos_p99 = chaotic["tenants"][name]["p99_cycles"]
        ratio = chaos_p99 / base_p99 if base_p99 else 0.0
        ok = ratio <= p99_bound
        contained = contained and ok
        per_tenant[name] = {
            "baseline_p99_cycles": base_p99,
            "chaotic_p99_cycles": chaos_p99,
            "ratio": ratio,
            "within_bound": ok,
        }
    storm = chaotic["tenants"]["storm"]
    quarantined = (
        storm["quarantines"] >= 1
        and chaotic["rejections"].get("storm", {}).get("quarantined", 0) > 0
    )
    return {
        "seed": seed,
        "p99_bound": p99_bound,
        "contained": contained and quarantined,
        "steady": per_tenant,
        "storm_quarantines": storm["quarantines"],
        "storm_breaker": storm["breaker"],
        "storm_rejections": chaotic["rejections"].get("storm", {}),
        "baseline": baseline,
        "chaotic": chaotic,
    }
