"""Synthetic load (open- and closed-loop) + the virtual-time driver.

The asyncio shell measures real wall-clock throughput, but wall clock
is exactly what a committed benchmark must *not* depend on.  So the
experiments in ``BENCH_serve.json`` run on :class:`VirtualTimeDriver`:
a discrete-event executor that drives the very same
:class:`~repro.serve.core.ServiceCore` /
:class:`~repro.serve.cache.PartitionedResultCache` against load whose
times are *simulated cycles* drawn from seeded RNGs.  Service time for
a request is the simulated cycle count its kernel takes (memoized —
the executor is a pure function of its spec); latency is completion
time minus arrival time, so queueing delay is included.  Same seed =>
identical schedule, identical decisions, identical report digest.

Two load shapes feed the driver:

- **open-loop** (:func:`open_loop_arrivals`): a precomputed Poisson
  schedule that keeps submitting regardless of service state — the
  right model for aggregate internet traffic and the containment
  experiment;
- **closed-loop** (:class:`ClosedLoopClient`): each simulated client
  waits for its previous request to finish (complete, hit cache or be
  shed), thinks for a seeded-exponential time, then submits the next —
  the right model for interactive sessions, and the shape the fairness
  experiment needs (a closed-loop storm tenant with zero think time is
  an *infinite* demand source that a FIFO grant queue lets convoy).

The driver models the shared-GPU contention that makes containment and
fairness real properties: ``num_gpus`` execution slots are shared by
*all* tenants.  Freed slots are granted through the core's
deficit-round-robin queue (``fair=True``, the default) or the legacy
global FIFO (``fair=False`` — kept as the counterfactual the fairness
experiment measures against).  :func:`containment_experiment` shows a
misbehaving tenant gets quarantined; :func:`fairness_experiment` shows
a *well-behaved but greedy* storm tenant is held to its weight: steady
tenants' p99 stays within bound and their cache partitions see zero
storm-induced evictions.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.chaos import SimulationHang
from repro.chaos.watchdog import DEFAULT_CYCLE_BUDGET
from repro.harness.hashing import content_hash

from .cache import PartitionedResultCache
from .core import ServeRejection, ServiceCore, TenantPolicy
from .executor import execute_request
from .service import reseeded

#: time scale the serving benchmarks run the micro workloads at
SERVE_TIME_SCALE = 8.0

#: watchdog budget on the storm tenant's chaos specs — sized so a hung
#: attempt burns about as many GPU-cycles as a clean thrash kernel at
#: SERVE_TIME_SCALE; a misbehaving tenant is then contained by its
#: breaker, not by accidentally costing less than honest work
DEFAULT_STORM_CYCLE_BUDGET = 12_000.0


# ---------------------------------------------------------------------------
# open-loop arrivals
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Arrival:
    """One scheduled submission (time in simulated cycles)."""

    time: float
    tenant: str
    seq: int  #: per-tenant sequence number (tie-breaker)
    spec: Dict


def open_loop_arrivals(
    seed: int,
    tenant: str,
    menu: Sequence[Dict],
    count: int,
    mean_gap_cycles: float,
    repeat_rate: float = 0.35,
) -> List[Arrival]:
    """Seeded Poisson arrivals for one tenant.

    Gaps are exponential with the given mean; each submission either
    repeats an earlier spec (probability ``repeat_rate`` — this is what
    exercises the result cache) or takes the next menu item round-robin.
    Seeding mixes the tenant name in, so tenants' streams are
    independent yet jointly reproducible.
    """
    rng = random.Random(f"{seed}/{tenant}")
    arrivals: List[Arrival] = []
    history: List[Dict] = []
    t = 0.0
    for i in range(count):
        t += rng.expovariate(1.0 / mean_gap_cycles)
        if history and rng.random() < repeat_rate:
            spec = rng.choice(history)
        else:
            spec = dict(menu[i % len(menu)])
        history.append(spec)
        arrivals.append(Arrival(time=t, tenant=tenant, seq=i, spec=spec))
    return arrivals


def merge_arrivals(*streams: List[Arrival]) -> List[Arrival]:
    """Interleave per-tenant streams into one deterministic schedule."""
    merged = [a for stream in streams for a in stream]
    merged.sort(key=lambda a: (a.time, a.tenant, a.seq))
    return merged


# ---------------------------------------------------------------------------
# closed-loop clients
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClosedLoopClient:
    """One simulated interactive session: think, submit, wait, repeat.

    The client keeps exactly one request outstanding.  After each
    request settles (completion, cache hit or structured shed) it draws
    an exponential think time with mean ``think_mean_cycles`` (0 means
    no think time — a greedy session that resubmits instantly) and
    submits the next spec: a repeat of an earlier one with probability
    ``repeat_rate``, otherwise the next menu item round-robin.  All
    randomness is seeded per ``(seed, tenant, client_id)``, so a fleet
    of clients is jointly bit-reproducible under the virtual-time
    driver."""

    tenant: str
    client_id: int
    menu: Sequence[Dict]
    requests: int
    think_mean_cycles: float
    seed: int
    repeat_rate: float = 0.0
    start_time: float = 0.0


class _ClientSession:
    """Runtime state of one :class:`ClosedLoopClient` inside a run."""

    def __init__(self, client: ClosedLoopClient) -> None:
        self.client = client
        self.rng = random.Random(
            f"{client.seed}/{client.tenant}/{client.client_id}"
        )
        self.issued = 0
        self.settled = 0
        self.history: List[Dict] = []

    def think(self) -> float:
        mean = self.client.think_mean_cycles
        if mean <= 0:
            return 0.0
        return self.rng.expovariate(1.0 / mean)

    def done(self) -> bool:
        return self.issued >= self.client.requests

    def next_spec(self) -> Dict:
        c = self.client
        if self.history and self.rng.random() < c.repeat_rate:
            spec = self.rng.choice(self.history)
        else:
            spec = dict(c.menu[self.issued % len(c.menu)])
        self.history.append(spec)
        self.issued += 1
        return spec


# ---------------------------------------------------------------------------
# the virtual-time driver
# ---------------------------------------------------------------------------

@dataclass
class _Job:
    """In-flight bookkeeping for one admitted request."""

    tenant: str
    seq: int
    spec: Dict
    key: str
    t_arrive: float
    t_start: float = 0.0
    cycles: float = 0.0
    attempts: int = 0
    value: Optional[Dict] = None
    hang: bool = False
    session: Optional[_ClientSession] = None  #: closed-loop origin


class VirtualTimeDriver:
    """Discrete-event executor of an arrival schedule (module docstring).

    Admission, quotas, budgets and breakers are the ``ServiceCore``'s;
    the driver adds the physics: per-tenant stream slots feed a shared
    pool of ``num_gpus`` execution slots, service time is simulated
    cycles, hung attempts burn the spec's watchdog ``cycle_budget``
    before the (reseeded, cycle-costed) retry — mirroring the asyncio
    shell's retry-with-backoff, with backoff measured in cycles.
    """

    def __init__(
        self,
        core: ServiceCore,
        cache: Optional[PartitionedResultCache] = None,
        *,
        num_gpus: int = 2,
        max_attempts: int = 2,
        backoff_cycles: float = 2_000.0,
        fair: bool = True,
        executor: Callable[[Dict], Dict] = execute_request,
    ) -> None:
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        self.core = core
        # explicit None test: an empty cache is falsy (it has __len__)
        self.cache = cache if cache is not None else PartitionedResultCache()
        self.core.attach_cache(self.cache)
        self.num_gpus = num_gpus
        self.max_attempts = max_attempts
        self.backoff_cycles = backoff_cycles
        #: grant freed GPUs in the core's weighted-fair DRR order; the
        #: False path is the legacy global FIFO, kept as the measured
        #: counterfactual in the fairness experiment
        self.fair = fair
        self.executor = executor
        #: spec-hash -> ("ok", result) | ("hang", cost_cycles); the
        #: executor is pure, so each unique spec is simulated once
        self._memo: Dict[str, tuple] = {}

    # -- pure-function execution (memoized) -----------------------------

    def _execute(self, spec: Dict) -> tuple:
        key = content_hash(spec)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        try:
            value = self.executor(spec)
        except SimulationHang:
            out = (
                "hang",
                float(spec.get("cycle_budget") or DEFAULT_CYCLE_BUDGET),
            )
        else:
            out = ("ok", value)
        self._memo[key] = out
        return out

    def _service(self, job: _Job) -> None:
        """Fill in the job's total service cycles across retry attempts
        (hung attempts cost the watchdog budget, retries are reseeded
        and pay exponential backoff in cycles)."""
        spec = dict(job.spec)
        total = 0.0
        attempts = 0
        while True:
            attempts += 1
            outcome = self._execute(spec)
            if outcome[0] == "ok":
                value = outcome[1]
                job.cycles = total + float(value["cycles"])
                job.attempts = attempts
                job.value = value
                return
            total += outcome[1]
            if attempts >= self.max_attempts:
                job.cycles = total
                job.attempts = attempts
                job.hang = True
                return
            total += self.backoff_cycles * 2 ** (attempts - 1)
            spec = reseeded(spec, attempts)

    # -- event loop -----------------------------------------------------

    def run(
        self,
        arrivals: Sequence[Arrival] = (),
        label: str = "virtual",
        *,
        clients: Sequence[ClosedLoopClient] = (),
    ) -> Dict:
        """Execute the open-loop schedule and/or the closed-loop client
        fleet to completion; returns the JSON-able report (with a
        ``digest`` over its deterministic content)."""
        events: List[tuple] = []  # (time, order, kind, payload)
        order = 0

        def push_event(time: float, kind: str, payload) -> None:
            nonlocal order
            heapq.heappush(events, (time, order, kind, payload))
            order += 1

        for a in sorted(arrivals, key=lambda a: (a.time, a.tenant, a.seq)):
            push_event(a.time, "arrive", a)
        sessions = [_ClientSession(c) for c in clients]
        for session in sessions:
            push_event(
                session.client.start_time + session.think(),
                "client", session,
            )
        gpu_free = self.num_gpus
        gpu_queue: deque = deque()  # legacy FIFO path (fair=False)
        stream_wait: Dict[str, deque] = {}  # admitted, waits for a slot
        rejections: Dict[str, Dict[str, int]] = {}
        cached_served = 0
        makespan = 0.0

        def start_on_gpu(now: float, job: _Job) -> None:
            nonlocal gpu_free
            if gpu_free <= 0:
                # holds a stream slot, waits for a GPU grant
                if self.fair:
                    self.core.queue_for_execution(job.tenant, job)
                else:
                    gpu_queue.append(job)
                return
            gpu_free -= 1
            job.t_start = now
            self._service(job)
            push_event(now + job.cycles, "complete", job)

        def next_waiting_job() -> Optional[_Job]:
            if self.fair:
                granted = self.core.next_for_execution()
                return None if granted is None else granted[1]
            return gpu_queue.popleft() if gpu_queue else None

        def session_settled(now: float, session: _ClientSession) -> None:
            """One closed-loop request settled: think, then resubmit."""
            session.settled += 1
            if not session.done():
                push_event(now + session.think(), "client", session)

        while events:
            now, _, kind, payload = heapq.heappop(events)
            makespan = max(makespan, now)
            if kind == "arrive":
                cached_served += self._submit(
                    now, payload.tenant, payload.seq, payload.spec, None,
                    stream_wait, rejections, start_on_gpu,
                ) or 0
                continue
            if kind == "client":
                session = payload
                seq = session.issued
                spec = session.next_spec()
                outcome = self._submit(
                    now, session.client.tenant, seq, spec, session,
                    stream_wait, rejections, start_on_gpu,
                )
                if outcome is not None:
                    # shed or served from cache: settled immediately
                    cached_served += outcome
                    session_settled(now, session)
                continue
            # completion: settle the job, then hand its GPU + stream
            # slot to the next waiters (weighted-fair grant order)
            job = payload
            gpu_free += 1
            if job.hang:
                self.core.fail(
                    job.tenant, now, hang=True, retries=job.attempts - 1
                )
            else:
                self.cache.put(job.tenant, job.key, job.value)
                self.core.complete(
                    job.tenant,
                    now,
                    latency_cycles=now - job.t_arrive,
                    faults=int(job.value.get("faults_raised", 0)),
                    retries=job.attempts - 1,
                )
            if job.session is not None:
                session_settled(now, job.session)
            waiters = stream_wait.get(job.tenant)
            if waiters and self.core.quarantined(job.tenant, now):
                # quarantine sheds the tenant's admitted backlog too —
                # already-running kernels finish, queued ones do not
                while waiters:
                    shed = waiters.popleft()
                    self.core.shed_queued(job.tenant)
                    counts = rejections.setdefault(job.tenant, {})
                    counts["quarantined"] = counts.get("quarantined", 0) + 1
                    if shed.session is not None:
                        session_settled(now, shed.session)
            if waiters:
                self.core.promote(job.tenant)
                start_on_gpu(now, waiters.popleft())
            while gpu_free > 0:
                waiting = next_waiting_job()
                if waiting is None:
                    break
                start_on_gpu(now, waiting)

        summary = self.core.summary()
        closed_loop: Dict[str, Dict[str, int]] = {}
        for session in sessions:
            per = closed_loop.setdefault(
                session.client.tenant,
                {"clients": 0, "issued": 0, "settled": 0, "target": 0},
            )
            per["clients"] += 1
            per["issued"] += session.issued
            per["settled"] += session.settled
            per["target"] += session.client.requests
        report = {
            "label": label,
            "num_gpus": self.num_gpus,
            "fair": self.fair,
            "max_attempts": self.max_attempts,
            "backoff_cycles": self.backoff_cycles,
            "makespan_cycles": makespan,
            "unique_specs_simulated": len(self._memo),
            "cache": self.cache.stats(),
            "cached_served": cached_served,
            "closed_loop": {
                t: closed_loop[t] for t in sorted(closed_loop)
            },
            "rejections": {
                t: dict(sorted(codes.items()))
                for t, codes in sorted(rejections.items())
            },
            "tenants": summary["tenants"],
            "slo": summary["slo"],
        }
        report["digest"] = content_hash(report)
        return report

    def _submit(
        self,
        now: float,
        tenant: str,
        seq: int,
        spec: Dict,
        session: Optional[_ClientSession],
        stream_wait: Dict[str, deque],
        rejections: Dict[str, Dict[str, int]],
        start_on_gpu,
    ) -> Optional[int]:
        """Admission for one submission.  Returns ``1`` for a cache hit,
        ``0`` for a shed, ``None`` when the request went in flight (its
        settlement arrives as a later ``complete`` event)."""
        try:
            self.core.check_admission(tenant, now)
        except ServeRejection as rej:
            counts = rejections.setdefault(tenant, {})
            counts[rej.code] = counts.get(rej.code, 0) + 1
            return 0
        key = self.cache.key(spec)
        if self.cache.get(tenant, key) is not None:
            self.core.record_cache_hit(tenant)
            return 1
        self.core.record_cache_miss()
        job = _Job(
            tenant=tenant,
            seq=seq,
            spec=spec,
            key=key,
            t_arrive=now,
            session=session,
        )
        try:
            disposition = self.core.acquire_slot(tenant, now)
        except ServeRejection as rej:
            counts = rejections.setdefault(tenant, {})
            counts[rej.code] = counts.get(rej.code, 0) + 1
            return 0
        if disposition == "queued":
            stream_wait.setdefault(tenant, deque()).append(job)
        else:
            start_on_gpu(now, job)
        return None


# ---------------------------------------------------------------------------
# the containment experiment
# ---------------------------------------------------------------------------

def steady_menu(
    time_scale: float = SERVE_TIME_SCALE,
    seed_pool: int = 16,
    base_seed: int = 0,
) -> List[Dict]:
    """Clean interactive specs for a well-behaved tenant.

    Each (workload, scheme) pair appears with ``seed_pool`` distinct
    seeds so the spec space is wide enough that the result cache sees a
    realistic hit rate instead of memoizing the whole menu after one
    pass; ``base_seed`` keeps different tenants' spec spaces disjoint.
    The seed does not change a clean run's result — it only changes the
    content address.
    """
    menu: List[Dict] = []
    for s in range(seed_pool):
        for workload, scheme in (
            ("saxpy", "replay-queue"),
            ("stream-sum", "replay-queue"),
            ("saxpy", "wd-commit"),
        ):
            menu.append({
                "workload": workload,
                "scheme": scheme,
                "time_scale": time_scale,
                "seed": base_seed + s,
            })
    return menu


def storm_menu(
    chaotic: bool,
    time_scale: float = SERVE_TIME_SCALE,
    cycle_budget: float = DEFAULT_STORM_CYCLE_BUDGET,
    slots: int = 18,
    hang_every: int = 3,
) -> List[Dict]:
    """Specs for the misbehaving tenant.

    ``slots`` distinct seeds keep the baseline storm tenant actually
    *executing* (not cache-resident), so both runs carry comparable
    storm load and the p99 comparison isolates the chaos, not the
    cache.

    ``chaotic=False`` is the baseline: the same workloads, clean.
    ``chaotic=True`` turns on a heavy ``fault.storm``-scaled chaos
    engine and makes every ``hang_every``-th menu slot a deterministic
    injected hang (watchdog semantics), so the tenant blows its hang
    budget and must be quarantined.
    """
    menu: List[Dict] = []
    for i in range(slots):
        spec = {
            "workload": "tlb-thrash",
            "scheme": "replay-queue",
            "time_scale": time_scale,
            "seed": i,
        }
        if chaotic:
            spec["chaos_intensity"] = 3.0
            spec["cycle_budget"] = cycle_budget
            if i % hang_every == hang_every - 1:
                spec["hang"] = True
        menu.append(spec)
    return menu


def steady_policy() -> TenantPolicy:
    """Generous budgets: demand paging makes faults normal traffic, so
    a clean tenant must never graze its breaker."""
    return TenantPolicy(
        max_streams=2,
        max_queue_depth=12,
        fault_budget=200_000,
        hang_budget=2,
        breaker_window=3_000_000.0,
        cooldown=5_000_000.0,
    )


def storm_policy() -> TenantPolicy:
    """Tight budgets for the chaos tenant: zero tolerated hangs (the
    first watchdog-confirmed hang quarantines) and a cooldown longer
    than the experiment horizon, so containment kicks in before the
    storm can inflate anyone else's tail."""
    return TenantPolicy(
        max_streams=2,
        max_queue_depth=12,
        fault_budget=20_000,
        hang_budget=0,
        breaker_window=3_000_000.0,
        cooldown=50_000_000.0,
    )


def containment_run(
    seed: int,
    chaotic: bool,
    *,
    steady_tenants: int = 2,
    requests_per_tenant: int = 120,
    storm_requests: int = 60,
    mean_gap_cycles: float = 30_000.0,
    num_gpus: int = 2,
    storm_cycle_budget: float = DEFAULT_STORM_CYCLE_BUDGET,
    executor: Callable[[Dict], Dict] = execute_request,
) -> Dict:
    """One virtual-time service run: ``steady_tenants`` clean tenants
    plus one storm tenant (clean when ``chaotic`` is False)."""
    core = ServiceCore()
    names = [f"steady-{i}" for i in range(steady_tenants)]
    for name in names:
        core.register_tenant(name, steady_policy())
    core.register_tenant("storm", storm_policy())
    streams = [
        open_loop_arrivals(
            seed, name, steady_menu(base_seed=100 * (i + 1)),
            requests_per_tenant, mean_gap_cycles,
        )
        for i, name in enumerate(names)
    ]
    streams.append(
        open_loop_arrivals(
            seed, "storm",
            storm_menu(chaotic, cycle_budget=storm_cycle_budget),
            storm_requests, mean_gap_cycles, repeat_rate=0.2,
        )
    )
    driver = VirtualTimeDriver(
        core, num_gpus=num_gpus, executor=executor
    )
    label = "chaotic" if chaotic else "baseline"
    return driver.run(merge_arrivals(*streams), label=label)


def containment_experiment(
    seed: int = 0,
    *,
    p99_bound: float = 1.5,
    executor: Callable[[Dict], Dict] = execute_request,
    **kwargs,
) -> Dict:
    """The BENCH_serve.json containment experiment.

    Runs the identical seeded arrival schedule twice — storm tenant
    clean, then storm tenant under ``fault.storm`` chaos + injected
    hangs — and checks the acceptance criteria: the storm tenant ends
    quarantined with structured rejections, and every steady tenant's
    p99 latency stays within ``p99_bound`` x its no-chaos baseline.
    """
    baseline = containment_run(seed, False, executor=executor, **kwargs)
    chaotic = containment_run(seed, True, executor=executor, **kwargs)
    steady = [t for t in sorted(baseline["tenants"]) if t != "storm"]
    per_tenant = {}
    contained = True
    for name in steady:
        base_p99 = baseline["tenants"][name]["p99_cycles"]
        chaos_p99 = chaotic["tenants"][name]["p99_cycles"]
        ratio = chaos_p99 / base_p99 if base_p99 else 0.0
        ok = ratio <= p99_bound
        contained = contained and ok
        per_tenant[name] = {
            "baseline_p99_cycles": base_p99,
            "chaotic_p99_cycles": chaos_p99,
            "ratio": ratio,
            "within_bound": ok,
        }
    storm = chaotic["tenants"]["storm"]
    quarantined = (
        storm["quarantines"] >= 1
        and chaotic["rejections"].get("storm", {}).get("quarantined", 0) > 0
    )
    return {
        "seed": seed,
        "p99_bound": p99_bound,
        "contained": contained and quarantined,
        "steady": per_tenant,
        "storm_quarantines": storm["quarantines"],
        "storm_breaker": storm["breaker"],
        "storm_rejections": chaotic["rejections"].get("storm", {}),
        "baseline": baseline,
        "chaotic": chaotic,
    }


# ---------------------------------------------------------------------------
# the fairness experiment
# ---------------------------------------------------------------------------

def fair_steady_policy() -> TenantPolicy:
    """A steady interactive tenant paying for weight 2: twice the
    fair-queue share (and cache share) of the weight-1 storm tenant."""
    return replace(steady_policy(), weight=2)


def fair_storm_policy() -> TenantPolicy:
    """The greedy-but-clean storm tenant: weight 1, generous breaker
    budgets (it misbehaves by *volume*, not by faulting — containment
    via the breaker is the other experiment), and room to keep the
    shared pool saturated whenever fairness would let it."""
    return replace(
        steady_policy(), weight=1, max_streams=4, max_queue_depth=32
    )


def storm_flood_menu(
    client_id: int,
    slots: int = 25,
    time_scale: float = 12.0,
) -> List[Dict]:
    """Per-client unique clean specs for the greedy tenant: disjoint
    seed ranges per client keep every submission a cache miss, so the
    storm stays an execution load (and would flush a shared LRU —
    exactly what the partitioned cache must prevent).  Storm kernels
    run at a *high* time scale (``time_scale`` divides the simulated
    fault-service latency, so larger means shorter kernels): many
    short requests is the grant-slot hammering shape DRR must contain,
    and it keeps the non-preemptive residual a steady request can be
    stuck behind small."""
    return [
        {
            "workload": "saxpy",
            "scheme": "replay-queue",
            "time_scale": time_scale,
            "seed": 10_000 + 1_000 * client_id + s,
        }
        for s in range(slots)
    ]


def fairness_run(
    seed: int,
    storm: bool,
    *,
    fair: bool = True,
    steady_tenants: int = 2,
    clients_per_tenant: int = 3,
    requests_per_client: int = 25,
    think_mean_cycles: float = 45_000.0,
    storm_clients: int = 4,
    storm_requests_per_client: int = 25,
    num_gpus: int = 2,
    cache_capacity: int = 1024,
    executor: Callable[[Dict], Dict] = execute_request,
) -> Dict:
    """One closed-loop virtual-time run: ``steady_tenants`` weight-2
    interactive tenants, plus (when ``storm``) one weight-1 zero-think
    greedy tenant hammering unique specs."""
    cache = PartitionedResultCache(cache_capacity)
    core = ServiceCore(cache)
    names = [f"steady-{i}" for i in range(steady_tenants)]
    for name in names:
        core.register_tenant(name, fair_steady_policy())
    core.register_tenant("storm", fair_storm_policy())
    clients: List[ClosedLoopClient] = []
    for i, name in enumerate(names):
        menu = steady_menu(base_seed=100 * (i + 1))
        for c in range(clients_per_tenant):
            clients.append(ClosedLoopClient(
                tenant=name,
                client_id=c,
                menu=menu,
                requests=requests_per_client,
                think_mean_cycles=think_mean_cycles,
                seed=seed,
                repeat_rate=0.35,
            ))
    if storm:
        for c in range(storm_clients):
            clients.append(ClosedLoopClient(
                tenant="storm",
                client_id=c,
                menu=storm_flood_menu(c),
                requests=storm_requests_per_client,
                think_mean_cycles=0.0,
                seed=seed,
            ))
    driver = VirtualTimeDriver(
        core, cache, num_gpus=num_gpus, fair=fair, executor=executor
    )
    if not storm:
        label = "fair-baseline"
    else:
        label = "fair-storm" if fair else "fifo-storm"
    return driver.run(clients=clients, label=label)


def fairness_experiment(
    seed: int = 0,
    *,
    p99_bound: float = 1.5,
    executor: Callable[[Dict], Dict] = execute_request,
    **kwargs,
) -> Dict:
    """The BENCH_serve.json fairness experiment.

    Three closed-loop runs with the same seed: steady tenants alone
    (baseline), steady + greedy storm under weighted-fair grants, and
    the same contended load under the legacy FIFO (the counterfactual).
    Acceptance: under fair grants every steady tenant's p99 stays
    within ``p99_bound`` x its no-storm baseline, steady cache
    partitions show **zero storm-induced evictions**, and the storm
    tenant still completes work (bounded to its weight, not starved).
    The FIFO run's ratios are recorded for contrast but not gated —
    they show what the convoy does without DRR.
    """
    baseline = fairness_run(seed, False, executor=executor, **kwargs)
    contended = fairness_run(seed, True, fair=True, executor=executor,
                             **kwargs)
    fifo = fairness_run(seed, True, fair=False, executor=executor,
                        **kwargs)
    steady = [t for t in sorted(baseline["tenants"]) if t != "storm"]
    per_tenant = {}
    within = True
    isolated = True
    for name in steady:
        base_p99 = baseline["tenants"][name]["p99_cycles"]
        fair_p99 = contended["tenants"][name]["p99_cycles"]
        fifo_p99 = fifo["tenants"][name]["p99_cycles"]
        ratio = fair_p99 / base_p99 if base_p99 else 0.0
        fifo_ratio = fifo_p99 / base_p99 if base_p99 else 0.0
        ok = ratio <= p99_bound
        within = within and ok
        base_ev = baseline["cache"]["tenants"][name]["evictions"]
        storm_ev = contended["cache"]["tenants"][name]["evictions"]
        induced = storm_ev - base_ev
        isolated = isolated and induced == 0
        per_tenant[name] = {
            "baseline_p99_cycles": base_p99,
            "storm_p99_cycles": fair_p99,
            "fifo_p99_cycles": fifo_p99,
            "ratio": ratio,
            "fifo_ratio": fifo_ratio,
            "within_bound": ok,
            "storm_induced_evictions": induced,
        }
    storm_done = contended["tenants"]["storm"]["completions"]
    return {
        "seed": seed,
        "p99_bound": p99_bound,
        "fair": per_tenant,
        "fair_contained": within and isolated and storm_done > 0,
        "storm_completions": storm_done,
        "baseline": baseline,
        "contended": contended,
        "fifo": fifo,
    }
