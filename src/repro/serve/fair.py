"""Weighted-fair queueing for shared execution slots.

PR 7's serving layer granted the shared GPU pool in strict FIFO order:
whoever queued first ran first, so a single greedy tenant that keeps
its own (per-tenant) stream quota saturated could park a convoy of
requests in front of everyone else.  :class:`DeficitRoundRobin`
replaces that FIFO with the classic deficit-round-robin discipline
(Shreedhar & Varghese) extended with strict priority classes:

- every tenant belongs to a **priority class** (``priority``, higher
  classes are served strictly first — a latency-sensitive class can buy
  precedence the way the partial-protection literature prices
  protection levels);
- within a class, tenants share in proportion to their **weight**: each
  round a tenant's deficit counter is topped up by ``quantum * weight``
  and it may dequeue one request per unit of deficit, so a weight-2
  tenant drains twice as fast as a weight-1 tenant over any backlogged
  interval;
- unit cost is one request (service times are memoized simulated
  cycles, unknowable at grant time), so fairness is in *grant slots*,
  which is exactly the resource a storm tenant was able to monopolize.

The structure is pure bookkeeping — no clock, no randomness, no I/O —
and iteration order is registration order, so a schedule of
``push``/``pop`` calls is bit-reproducible.  Both the virtual-time
driver and the asyncio shell route their GPU grants through the same
instance owned by :class:`~repro.serve.core.ServiceCore`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple


class DeficitRoundRobin:
    """Priority classes strictly first; DRR by weight within a class."""

    def __init__(self, quantum: float = 1.0) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._order: List[str] = []
        self._weight: Dict[str, int] = {}
        self._priority: Dict[str, int] = {}
        self._queues: Dict[str, Deque[Any]] = {}
        self._deficit: Dict[str, float] = {}
        #: priority -> members in registration order
        self._classes: Dict[int, List[str]] = {}
        self._cursor: Dict[int, int] = {}
        #: has the tenant under the cursor been topped up this visit?
        self._topped: Dict[int, bool] = {}

    # -- registration ---------------------------------------------------

    def register(
        self, name: str, *, weight: int = 1, priority: int = 0
    ) -> None:
        """Add one queue (idempotent; weight/priority fixed at first
        registration)."""
        if name in self._weight:
            return
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self._order.append(name)
        self._weight[name] = int(weight)
        self._priority[name] = int(priority)
        self._queues[name] = deque()
        self._deficit[name] = 0.0
        members = self._classes.setdefault(int(priority), [])
        members.append(name)
        self._cursor.setdefault(int(priority), 0)
        self._topped.setdefault(int(priority), False)

    def registered(self, name: str) -> bool:
        return name in self._weight

    # -- queue ops ------------------------------------------------------

    def push(self, name: str, item: Any) -> None:
        """Enqueue one item for ``name`` (must be registered)."""
        self._queues[name].append(item)

    def depth(self, name: str) -> int:
        """Items currently queued for ``name`` (0 if unregistered)."""
        q = self._queues.get(name)
        return len(q) if q is not None else 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _advance(self, priority: int, members: List[str]) -> None:
        self._cursor[priority] = (self._cursor[priority] + 1) % len(members)
        self._topped[priority] = False

    def _pop_from_class(self, priority: int) -> Optional[Tuple[str, Any]]:
        members = self._classes[priority]
        if not any(self._queues[n] for n in members):
            return None
        while True:
            name = members[self._cursor[priority] % len(members)]
            queue = self._queues[name]
            if not queue:
                # an idle tenant carries no deficit into its next burst
                self._deficit[name] = 0.0
                self._advance(priority, members)
                continue
            if not self._topped[priority]:
                self._deficit[name] += self.quantum * self._weight[name]
                self._topped[priority] = True
            if self._deficit[name] >= 1.0:
                self._deficit[name] -= 1.0
                item = queue.popleft()
                if not queue:
                    self._deficit[name] = 0.0
                    self._advance(priority, members)
                return name, item
            self._advance(priority, members)

    def pop(self) -> Optional[Tuple[str, Any]]:
        """Dequeue the next ``(name, item)`` in weighted-fair order, or
        ``None`` when every queue is empty.  Higher priority classes are
        always drained first; within a class each tenant gets ``weight``
        consecutive grants per round while backlogged."""
        for priority in sorted(self._classes, reverse=True):
            out = self._pop_from_class(priority)
            if out is not None:
                return out
        return None

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-able per-queue state (deterministic key order)."""
        return {
            name: {
                "weight": self._weight[name],
                "priority": self._priority[name],
                "depth": len(self._queues[name]),
                "deficit": self._deficit[name],
            }
            for name in sorted(self._order)
        }
