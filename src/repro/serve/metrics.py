"""The authoritative name list for ``serve.*`` telemetry.

``tools/check_doc_links.py`` parses this tuple *textually* (the same
way it parses the harness ``SUBCOMMANDS`` tuple) and rejects any
``serve.*`` counter a doc names that is not listed here — so a counter
renamed in code but not in docs/OBSERVABILITY.md fails CI instead of
rotting.  The reverse direction is enforced at runtime by
``tests/test_serve.py``: a service with a registered tenant and a wire
front-end must register exactly these paths (with ``[*]`` standing for
the tenant index).

Keep this tuple a plain literal — one double-quoted string per line,
no computed entries — so the textual parse stays trivial.
"""

from __future__ import annotations

#: every counter/gauge path the serving layer registers; ``[*]``
#: matches any bracket index (tenant name) in the live registry
SERVE_COUNTERS = (
    # service-level (SLO) counters, registered up front by ServiceCore
    "serve.slo.submitted",
    "serve.slo.admitted",
    "serve.slo.rejected",
    "serve.slo.completed",
    "serve.slo.failed",
    "serve.slo.retries",
    "serve.slo.quarantines",
    "serve.slo.cache_hits",
    "serve.slo.cache_misses",
    "serve.slo.hangs",
    # per-tenant rollups, registered by register_tenant
    "serve.tenant[*].submits",
    "serve.tenant[*].faults",
    "serve.tenant[*].rejections",
    "serve.tenant[*].cache_hits",
    "serve.tenant[*].hangs",
    "serve.tenant[*].completions",
    "serve.tenant[*].failures",
    "serve.tenant[*].retries",
    "serve.tenant[*].p99_cycles",
    "serve.tenant[*].quarantines",
    # admission-queue gauges (stream-slot wait + fair execution queue)
    "serve.tenant[*].queue_depth",
    "serve.tenant[*].exec_queued",
    # per-tenant cache-partition gauges, bound by attach_cache
    "serve.tenant[*].cache.hits",
    "serve.tenant[*].cache.misses",
    "serve.tenant[*].cache.evictions",
    "serve.tenant[*].cache.entries",
    "serve.tenant[*].cache.capacity",
    # wire front-end counters, registered by ServeDaemon
    "serve.wire.connections",
    "serve.wire.disconnects",
    "serve.wire.frames_in",
    "serve.wire.frames_out",
    "serve.wire.submits",
    "serve.wire.rejections",
    "serve.wire.results",
    "serve.wire.errors",
    "serve.wire.malformed",
    "serve.wire.oversized",
    "serve.wire.version_mismatch",
)
