"""The asyncio serving shell: many tenants, shared simulated GPUs.

:class:`GpuService` is the long-lived front end over the synchronous
:class:`~repro.serve.core.ServiceCore` control plane.  One ``submit``
call per kernel request:

1. **admission** — quarantine gate, then cache lookup, then stream
   quota / queue depth (structured ``ServeRejection`` on shed, never an
   unbounded wait);
2. **execution** — the picklable :func:`repro.serve.executor
   .execute_request` runs via :func:`repro.harness.isolation
   .run_experiment_isolated` on a worker thread (forked child +
   wall-clock timeout), so a tenant's wedged kernel burns its own
   budget, not the service process;
3. **retry with backoff** — transient failures (the campaign runner's
   ``TRANSIENT_KINDS``: ``SimulationHang``, ``Timeout``,
   ``ChildCrash``) are retried up to ``max_attempts`` with exponential
   backoff and the runner's ``seed + 1000*attempt`` reseed rule;
   deterministic failures are returned immediately;
4. **accounting** — completions feed the tenant's latency reservoir and
   fault budget, failures its hang budget; either may trip the breaker
   and quarantine the tenant without touching anyone else's in-flight
   work.

The service clock (``now`` fed to breakers) is *virtual*: it advances
by each completed request's simulated cycles (or the hang budget on a
trip), which keeps breaker windows in the same unit — cycles — under
both this shell and the bit-reproducible
:class:`~repro.serve.loadgen.VirtualTimeDriver`.
"""

from __future__ import annotations

import asyncio
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.chaos.watchdog import DEFAULT_CYCLE_BUDGET
from repro.harness.isolation import ExperimentFailure, run_experiment_isolated

from .cache import PartitionedResultCache
from .core import (
    ServeRejection, ServiceCore, TenantPolicy, TenantQuarantined,
)
from .executor import execute_request

#: failure kinds worth a reseeded retry (mirrors the campaign runner)
TRANSIENT_KINDS = frozenset({"Timeout", "SimulationHang", "ChildCrash"})

#: hangs/timeouts count against the tenant's hang budget
HANG_KINDS = frozenset({"SimulationHang", "Timeout"})


@dataclass
class ServeResult:
    """Outcome of one ``submit`` that was admitted (rejections raise)."""

    tenant: str
    key: str  #: content address of the spec (the cache key)
    cached: bool
    attempts: int  #: executions performed (0 for a cache hit)
    value: Optional[Dict] = None
    failure: Optional[ExperimentFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def reseeded(spec: Dict, attempt: int) -> Dict:
    """The campaign runner's reseed rule applied to a submission spec."""
    fresh = dict(spec)
    fresh["seed"] = int(spec.get("seed", 0)) + 1000 * attempt
    return fresh


class GpuService:
    """Asyncio multi-tenant front end (module docstring).

    ``isolated=False`` executes requests in-process on the worker
    thread instead of a forked child — no timeout enforcement, but much
    faster; the unit tests use it, the benchmark uses the real path.
    """

    def __init__(
        self,
        core: Optional[ServiceCore] = None,
        cache: Optional[PartitionedResultCache] = None,
        *,
        timeout: Optional[float] = 60.0,
        max_attempts: int = 3,
        backoff_base: float = 0.02,
        backoff_cap: float = 1.0,
        isolated: bool = True,
        gpu_slots: Optional[int] = None,
        executor: Callable[[Dict], Dict] = execute_request,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if gpu_slots is not None and gpu_slots < 1:
            raise ValueError("gpu_slots must be positive")
        self.core = core or ServiceCore()
        # explicit None test: an empty cache is falsy (it has __len__)
        self.cache = cache if cache is not None else PartitionedResultCache()
        self.core.attach_cache(self.cache)
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.isolated = isolated
        self.executor = executor
        self._now = 0.0
        self._sems: Dict[str, asyncio.Semaphore] = {}
        #: optional shared GPU pool: when set, executions additionally
        #: contend for this many slots, granted in the core's
        #: weighted-fair (DRR + priority) order — the asyncio analogue
        #: of the virtual-time driver's ``num_gpus``
        self._gpu_free = gpu_slots

    # -- tenants --------------------------------------------------------

    def register_tenant(
        self, tenant: str, policy: Optional[TenantPolicy] = None
    ):
        """Register a tenant with the core and size its stream-quota
        semaphore."""
        state = self.core.register_tenant(tenant, policy)
        self._sems.setdefault(
            tenant, asyncio.Semaphore(state.policy.max_streams)
        )
        return state

    @property
    def now(self) -> float:
        """The service's virtual clock, in simulated cycles."""
        return self._now

    # -- execution ------------------------------------------------------

    def _run_once(self, name: str, spec: Dict):
        """One synchronous attempt (runs on a worker thread)."""
        if self.isolated:
            return run_experiment_isolated(
                name, self.executor, kwargs={"spec": spec},
                timeout=self.timeout,
            )
        try:
            return self.executor(spec)
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            return ExperimentFailure(
                name=name,
                kind=type(exc).__name__,
                message=str(exc),
                traceback_text=traceback.format_exc(),
                kwargs={"spec": spec},
            )

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))

    async def submit(self, tenant: str, spec: Dict) -> ServeResult:
        """Serve one kernel request; raises a structured
        :class:`~repro.serve.core.ServeRejection` when shed."""
        self.core.check_admission(tenant, self._now)
        key = self.cache.key(spec)
        hit = self.cache.get(tenant, key)
        if hit is not None:
            self.core.record_cache_hit(tenant)
            return ServeResult(
                tenant=tenant, key=key, cached=True, attempts=0, value=hit
            )
        self.core.record_cache_miss()
        disposition = self.core.acquire_slot(tenant, self._now)
        sem = self._sems[tenant]
        # acquire_slot already accounted a "run" slot, so the semaphore
        # has a free permit in that case; "queued" waits here (bounded
        # by max_queue_depth — excess was shed above with QueueFull).
        await sem.acquire()
        if disposition == "queued":
            # the tenant may have been quarantined while this request
            # waited; quarantine sheds the admitted backlog too
            if self.core.quarantined(tenant, self._now):
                self.core.shed_queued(tenant)
                sem.release()
                raise TenantQuarantined(
                    tenant, "quarantined while queued for a stream slot"
                )
            self.core.promote(tenant)
        try:
            await self._acquire_gpu(tenant)
            try:
                return await self._execute(tenant, key, spec)
            finally:
                self._release_gpu()
        finally:
            sem.release()

    # -- shared GPU pool (weighted-fair grants) -------------------------

    async def _acquire_gpu(self, tenant: str) -> None:
        """Claim a shared GPU slot; waits in the core's weighted-fair
        execution queue when the pool is exhausted.  No-op when the
        service was built without ``gpu_slots``."""
        if self._gpu_free is None:
            return
        if self._gpu_free > 0:
            self._gpu_free -= 1
            return
        grant = asyncio.get_running_loop().create_future()
        self.core.queue_for_execution(tenant, grant)
        await grant

    def _release_gpu(self) -> None:
        """Hand the freed slot to the next waiter in DRR order (skipping
        cancelled waiters), or return it to the pool."""
        if self._gpu_free is None:
            return
        while True:
            nxt = self.core.next_for_execution()
            if nxt is None:
                self._gpu_free += 1
                return
            grant = nxt[1]
            if not grant.done():
                grant.set_result(None)
                return

    async def _execute(
        self, tenant: str, key: str, spec: Dict
    ) -> ServeResult:
        name = f"serve/{tenant}/{key}"
        attempt_spec = dict(spec)
        attempts = 0
        while True:
            attempts += 1
            outcome = await asyncio.to_thread(
                self._run_once, name, attempt_spec
            )
            if not isinstance(outcome, ExperimentFailure):
                value = outcome
                self.cache.put(tenant, key, value)
                self._now += float(value.get("cycles", 0.0))
                self.core.complete(
                    tenant,
                    self._now,
                    latency_cycles=float(value.get("cycles", 0.0)),
                    faults=int(value.get("faults_raised", 0)),
                    retries=attempts - 1,
                )
                return ServeResult(
                    tenant=tenant, key=key, cached=False,
                    attempts=attempts, value=value,
                )
            transient = outcome.kind in TRANSIENT_KINDS
            if not transient or attempts >= self.max_attempts:
                hang = outcome.kind in HANG_KINDS
                self._now += float(
                    attempt_spec.get("cycle_budget") or DEFAULT_CYCLE_BUDGET
                )
                self.core.fail(
                    tenant, self._now, hang=hang, retries=attempts - 1
                )
                outcome.attempts = attempts
                return ServeResult(
                    tenant=tenant, key=key, cached=False,
                    attempts=attempts, failure=outcome,
                )
            await asyncio.sleep(self._backoff(attempts))
            attempt_spec = reseeded(attempt_spec, attempts)

    # -- batch helper ---------------------------------------------------

    async def drain(
        self, submissions: Iterable[Tuple[str, Dict]]
    ) -> List[Union[ServeResult, ServeRejection]]:
        """Submit everything concurrently; rejections come back as
        values (order matches the input), other exceptions propagate."""

        async def one(tenant: str, spec: Dict):
            try:
                return await self.submit(tenant, spec)
            except ServeRejection as rej:
                return rej

        return list(
            await asyncio.gather(
                *(one(tenant, spec) for tenant, spec in submissions)
            )
        )
