"""Multi-tenant fault-resilient serving layer over the simulator.

The paper's exception-handling schemes make GPU kernels safely
preemptible and restartable; ``repro.serve`` builds the system-level
consequence on top of the simulator: a long-lived service where many
tenants share simulated GPUs and one tenant's fault storm, hang or
crash is *contained* — shed with structured errors and quarantined by
a per-tenant circuit breaker — instead of taking the box down.

Layers (each documented in its module):

- :mod:`~repro.serve.core` — synchronous control plane: admission
  control (stream quotas + bounded queues), per-tenant fault/hang
  budgets, circuit breakers, ``serve.*`` telemetry;
- :mod:`~repro.serve.cache` — content-addressed result cache (same
  hashing as the campaign checkpoints);
- :mod:`~repro.serve.executor` — picklable pure data plane, one spec
  dict -> one simulated kernel;
- :mod:`~repro.serve.service` — the asyncio shell with crash-isolated
  execution and retry-with-backoff;
- :mod:`~repro.serve.loadgen` — seeded open-loop load and the
  bit-reproducible virtual-time driver behind ``BENCH_serve.json``
  (CLI: ``python -m repro.harness serve-bench``).
"""

from .cache import ResultCache
from .core import (
    CircuitBreaker,
    QueueFull,
    ServeRejection,
    ServiceCore,
    TenantPolicy,
    TenantQuarantined,
    TenantState,
    UnknownTenant,
)
from .executor import execute_request
from .loadgen import (
    Arrival,
    VirtualTimeDriver,
    containment_experiment,
    merge_arrivals,
    open_loop_arrivals,
)
from .service import GpuService, ServeResult

__all__ = [
    "Arrival",
    "CircuitBreaker",
    "GpuService",
    "QueueFull",
    "ResultCache",
    "ServeRejection",
    "ServeResult",
    "ServiceCore",
    "TenantPolicy",
    "TenantQuarantined",
    "TenantState",
    "UnknownTenant",
    "VirtualTimeDriver",
    "containment_experiment",
    "execute_request",
    "merge_arrivals",
    "open_loop_arrivals",
]
