"""Multi-tenant fault-resilient serving layer over the simulator.

The paper's exception-handling schemes make GPU kernels safely
preemptible and restartable; ``repro.serve`` builds the system-level
consequence on top of the simulator: a long-lived service where many
tenants share simulated GPUs and one tenant's fault storm, hang or
crash is *contained* — shed with structured errors and quarantined by
a per-tenant circuit breaker — instead of taking the box down.

Layers (each documented in its module):

- :mod:`~repro.serve.core` — synchronous control plane: admission
  control (stream quotas + bounded queues), weighted-fair execution
  grants, per-tenant fault/hang budgets, circuit breakers, ``serve.*``
  telemetry;
- :mod:`~repro.serve.fair` — the deficit-round-robin queue behind the
  fair grants (priority classes + per-tenant weights);
- :mod:`~repro.serve.cache` — content-addressed result cache (same
  hashing as the campaign checkpoints) and its tenant-partitioned
  variant (one tenant can never evict another's working set);
- :mod:`~repro.serve.executor` — picklable pure data plane, one spec
  dict -> one simulated kernel;
- :mod:`~repro.serve.service` — the asyncio shell with crash-isolated
  execution and retry-with-backoff;
- :mod:`~repro.serve.loadgen` — seeded open- and closed-loop load and
  the bit-reproducible virtual-time driver behind ``BENCH_serve.json``
  (CLI: ``python -m repro.harness serve-bench``);
- :mod:`~repro.serve.wire` / :mod:`~repro.serve.client` — the NDJSON
  socket front-end (unix-socket or loopback TCP) and its typed client
  (CLI: ``python -m repro.harness serve``; docs/SERVING.md);
- :mod:`~repro.serve.metrics` — the authoritative ``serve.*`` counter
  name list the doc checker enforces.
"""

from .cache import PartitionedResultCache, ResultCache
from .client import ServeClient, rejection_from_wire
from .core import (
    CircuitBreaker,
    QueueFull,
    ServeRejection,
    ServiceCore,
    ServiceUnavailable,
    TenantPolicy,
    TenantQuarantined,
    TenantState,
    UnknownTenant,
)
from .executor import execute_request
from .fair import DeficitRoundRobin
from .loadgen import (
    Arrival,
    ClosedLoopClient,
    VirtualTimeDriver,
    containment_experiment,
    fairness_experiment,
    merge_arrivals,
    open_loop_arrivals,
)
from .metrics import SERVE_COUNTERS
from .service import GpuService, ServeResult
from .wire import (
    MAX_FRAME_BYTES,
    WIRE_PROTOCOL_VERSION,
    ServeDaemon,
    WireError,
)

__all__ = [
    "Arrival",
    "CircuitBreaker",
    "ClosedLoopClient",
    "DeficitRoundRobin",
    "GpuService",
    "MAX_FRAME_BYTES",
    "PartitionedResultCache",
    "QueueFull",
    "ResultCache",
    "SERVE_COUNTERS",
    "ServeClient",
    "ServeDaemon",
    "ServeRejection",
    "ServeResult",
    "ServiceCore",
    "ServiceUnavailable",
    "TenantPolicy",
    "TenantQuarantined",
    "TenantState",
    "UnknownTenant",
    "VirtualTimeDriver",
    "WIRE_PROTOCOL_VERSION",
    "WireError",
    "containment_experiment",
    "execute_request",
    "fairness_experiment",
    "merge_arrivals",
    "open_loop_arrivals",
    "rejection_from_wire",
]
