"""Multi-kernel stream scenarios (docs/CONCURRENCY.md).

Each scenario stages a multi-stream run on a :class:`repro.runtime.GpuDevice`:
it allocates managed buffers, fills the inputs deterministically (so two runs
of the same scenario are bit-identical), and returns one
:class:`StreamKernelSpec` per kernel.  The harness's ``streams`` experiment
(:mod:`repro.harness.streams`) launches the same specs twice — sequentially
through the legacy synchronous path, and overlapped on one stream per kernel
— to measure what concurrent fault-queue contention costs and what SM overlap
buys back.

The canonical scenario is ``contention``: two page-fault-bound kernels whose
migrate faults contend on the single global pending-fault queue, the
interconnect and the serialized CPU handler.  Because a fault-bound kernel
leaves most SM cycles idle, overlapping the two on a partitioned SM array
finishes in strictly fewer cycles than running them back to back — the
multi-tenant effect the paper's motivation (Section 1) appeals to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.isa import Kernel

from .micro import MICRO


@dataclass(frozen=True)
class StreamKernelSpec:
    """One kernel of a stream scenario: the kernel, launch geometry, and
    already-resolved argument list (device pointers / scalars)."""

    kernel: Kernel
    grid: int
    block: int
    args: tuple


class StreamScenario:
    """A deterministic multi-kernel workload staged on a GpuDevice.

    Subclasses set ``name``/``description`` and implement :meth:`build`,
    which allocates and fills managed memory on the device and returns the
    per-kernel launch specs (one spec per stream in the overlapped run).
    """

    name: str = "scenario"
    description: str = ""

    def build(self, device) -> List[StreamKernelSpec]:
        """Allocate buffers on ``device`` and return one spec per kernel."""
        raise NotImplementedError


class _ThrashPair(StreamScenario):
    """Two page-fault-bound kernels with disjoint CPU-dirty inputs.

    Each kernel is the ``tlb-thrash`` micro (every warp access touches a
    distinct page), so both streams raise long migrate-fault trains that
    contend on the shared pending-fault queue and interconnect."""

    name = "contention"
    description = (
        "two fault-bound tlb-thrash kernels, disjoint inputs: "
        "migrate faults from both streams contend on the global "
        "pending-fault queue"
    )

    def build(self, device) -> List[StreamKernelSpec]:
        specs = []
        for tag in ("a", "b"):
            wl = MICRO.fresh("tlb-thrash")
            span = (wl.iters + 1) * wl.num_warps * wl.PAGE_STRIDE
            src = device.malloc_managed(span, name=f"thrash-in-{tag}")
            out = device.malloc_managed(
                wl.num_threads * 4, name=f"thrash-out-{tag}"
            )
            # Host writes make the inputs CPU-dirty: every first GPU touch
            # becomes a MIGRATE fault.  Deterministic contents.
            device.fill(src, [float(i % 97) for i in range(span // 4)])
            specs.append(
                StreamKernelSpec(
                    kernel=wl.kernel,
                    grid=wl.grid_dim,
                    block=wl.block_dim,
                    args=(src, out),
                )
            )
        return specs


class _MixedPair(StreamScenario):
    """A fault-bound kernel co-resident with a compute-bound one.

    Stream 0 runs ``tlb-thrash`` (migrate-fault train); stream 1 runs
    ``stream-sum`` over an input that is *also* CPU-dirty but far denser
    per page, so its few faults queue up behind stream 0's — the
    cross-kernel queue-position effect docs/CONCURRENCY.md walks through."""

    name = "mixed"
    description = (
        "fault-bound tlb-thrash vs denser stream-sum: the victim's few "
        "faults land deep in the aggressor's queue"
    )

    def build(self, device) -> List[StreamKernelSpec]:
        thrash = MICRO.fresh("tlb-thrash")
        span = (thrash.iters + 1) * thrash.num_warps * thrash.PAGE_STRIDE
        t_in = device.malloc_managed(span, name="mixed-thrash-in")
        t_out = device.malloc_managed(
            thrash.num_threads * 4, name="mixed-thrash-out"
        )
        device.fill(t_in, [float(i % 97) for i in range(span // 4)])

        dense = MICRO.fresh("stream-sum")
        d_bytes = dense.num_threads * dense.iters * 4
        d_in = device.malloc_managed(d_bytes, name="mixed-sum-in")
        d_out = device.malloc_managed(
            dense.num_threads * 4, name="mixed-sum-out"
        )
        device.fill(d_in, [float((i * 7) % 13) for i in range(d_bytes // 4)])

        return [
            StreamKernelSpec(
                kernel=thrash.kernel, grid=thrash.grid_dim,
                block=thrash.block_dim, args=(t_in, t_out),
            ),
            StreamKernelSpec(
                kernel=dense.kernel, grid=dense.grid_dim,
                block=dense.block_dim, args=(d_in, d_out),
            ),
        ]


#: name -> scenario instance (the ``streams`` experiment's registry)
STREAM_SCENARIOS: Dict[str, StreamScenario] = {
    s.name: s for s in (_ThrashPair(), _MixedPair())
}

STREAM_SCENARIO_NAMES: Sequence[str] = sorted(STREAM_SCENARIOS)


def get_stream_scenario(name: str) -> StreamScenario:
    """Look up a stream scenario by name."""
    try:
        return STREAM_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown stream scenario {name!r}; "
            f"known: {list(STREAM_SCENARIO_NAMES)}"
        ) from None
