"""Allocator-intensive workloads for the local-fault-handling use case.

The paper evaluates GPU-side handling of heap faults (Figure 13) with the
benchmarks shipping with the Halloc dynamic allocator plus a quad-tree CUDA
SDK sample ported to dynamic allocation.  These synthetic equivalents stress
the same path: device-side ``malloc`` returns lazily-backed heap virtual
memory, and the first store to each fresh 64KB heap granule raises a
first-touch fault — resolvable either by the CPU driver (baseline) or by the
GPU-local handler (use case 2).
"""

from __future__ import annotations

from repro.isa import Imm, KernelBuilder, P, R
from repro.vm import SegmentKind

from .base import Workload, WorkloadRegistry

HALLOC = WorkloadRegistry()


class _HeapWorkload(Workload):
    """Shared plumbing: a heap segment sized for one arena per warp."""

    arena_bytes = 16 * 1024

    def heap_spec(self):
        return self.num_warps * self.arena_bytes

    def segments(self):
        return [("out", self.num_threads * 4, SegmentKind.OUTPUT)]

    def params(self, aspace):
        return [aspace.segment("out").base]


@HALLOC.register
class AllocCycle(_HeapWorkload):
    """Halloc's throughput test: repeated malloc / write / free cycles."""

    name = "alloc-cycle"

    def __init__(self, grid_dim: int = 96, block_dim: int = 128,
                 rounds: int = 6, chunk: int = 256) -> None:
        super().__init__(grid_dim, block_dim)
        self.rounds = rounds
        self.chunk = chunk

    def build_kernel(self):
        kb = KernelBuilder("alloc-cycle", regs_per_thread=20)
        kb.global_thread_id(R(0))
        kb.mov(R(1), Imm(0.0))
        with kb.for_range(R(2), 0, self.rounds):
            kb.malloc(R(3), Imm(self.chunk))
            kb.st_global(R(3), R(2))  # first touch of the fresh chunk
            kb.ld_global(R(4), R(3))
            kb.fadd(R(1), R(1), R(4))
            kb.free(R(3))
        kb.imad(R(5), R(0), Imm(4), kb.param(0))
        kb.st_global(R(5), R(1))
        kb.exit()
        return kb.build()


@HALLOC.register
class AllocWrite(_HeapWorkload):
    """Allocation plus streaming initialization of the allocated buffer
    (touches every page of each allocation)."""

    name = "alloc-write"

    def __init__(self, grid_dim: int = 96, block_dim: int = 128,
                 words: int = 24) -> None:
        super().__init__(grid_dim, block_dim)
        self.words = words

    def build_kernel(self):
        kb = KernelBuilder("alloc-write", regs_per_thread=20)
        kb.global_thread_id(R(0))
        kb.malloc(R(1), Imm(self.words * 4))
        kb.mov(R(2), R(1))
        with kb.for_range(R(3), 0, self.words):
            kb.i2f(R(4), R(3))
            kb.st_global(R(2), R(4))
            kb.iadd(R(2), R(2), Imm(4))
        # Reduce the buffer back so the writes matter.
        kb.mov(R(5), Imm(0.0))
        kb.mov(R(2), R(1))
        with kb.for_range(R(3), 0, self.words):
            kb.ld_global(R(6), R(2))
            kb.fadd(R(5), R(5), R(6))
            kb.iadd(R(2), R(2), Imm(4))
        kb.imad(R(7), R(0), Imm(4), kb.param(0))
        kb.st_global(R(7), R(5))
        kb.exit()
        return kb.build()


@HALLOC.register
class GridPoints(_HeapWorkload):
    """Builds per-thread linked chains of dynamically allocated cells
    (Halloc's data-structure-construction pattern)."""

    name = "grid-points"
    arena_bytes = 32 * 1024

    def __init__(self, grid_dim: int = 96, block_dim: int = 128,
                 chain: int = 5) -> None:
        super().__init__(grid_dim, block_dim)
        self.chain = chain

    def build_kernel(self):
        kb = KernelBuilder("grid-points", regs_per_thread=20)
        kb.global_thread_id(R(0))
        kb.malloc(R(1), Imm(64))  # chain head
        kb.mov(R(2), R(1))
        with kb.for_range(R(3), 0, self.chain):
            kb.malloc(R(4), Imm(64))  # next cell
            kb.st_global(R(2), R(4))  # prev->next = cell
            kb.i2f(R(5), R(3))
            kb.st_global(R(4), R(5), offset=8)  # cell payload
            kb.mov(R(2), R(4))
        # Walk the chain back, summing payloads.
        kb.mov(R(6), Imm(0.0))
        kb.mov(R(2), R(1))
        with kb.for_range(R(3), 0, self.chain):
            kb.ld_global(R(7), R(2))  # next pointer
            kb.ld_global(R(8), R(7), offset=8)
            kb.fadd(R(6), R(6), R(8))
            kb.mov(R(2), R(7))
        kb.imad(R(9), R(0), Imm(4), kb.param(0))
        kb.st_global(R(9), R(6))
        kb.exit()
        return kb.build()


@HALLOC.register
class QuadTree(_HeapWorkload):
    """The CUDA SDK quad-tree sample ported to dynamic allocation: each
    level allocates its children instead of preallocating the full tree."""

    name = "quad-tree"
    arena_bytes = 96 * 1024

    def __init__(self, grid_dim: int = 64, block_dim: int = 128,
                 depth: int = 4) -> None:
        super().__init__(grid_dim, block_dim)
        self.depth = depth

    def build_kernel(self):
        kb = KernelBuilder("quad-tree", regs_per_thread=24)
        kb.global_thread_id(R(0))
        kb.malloc(R(1), Imm(128))  # root node
        kb.mov(R(2), R(1))  # current node
        kb.mov(R(6), Imm(0.0))  # accumulated leaf count
        with kb.for_range(R(3), 0, self.depth):
            # Allocate the 4 children and link them into the current node.
            for child in range(4):
                kb.malloc(R(8 + child), Imm(128))
                kb.st_global(R(2), R(8 + child), offset=child * 8)
            # Subdivide: compute which child this thread descends into.
            kb.and_(R(12), R(0), Imm(3))
            kb.i2f(R(13), R(12))
            kb.ffma(R(6), R(13), Imm(1.0), R(6))
            # Descend into child (tid & 3): emulate select with predication.
            kb.mov(R(2), R(8))
            for child in range(1, 4):
                kb.isetp(P(0), "eq", R(12), Imm(child))
                kb.mov(R(2), R(8 + child), guard=P(0))
            kb.st_global(R(2), R(6), offset=16)  # mark the visited child
        kb.imad(R(14), R(0), Imm(4), kb.param(0))
        kb.st_global(R(14), R(6))
        kb.exit()
        return kb.build()


HALLOC_NAMES = HALLOC.names()
