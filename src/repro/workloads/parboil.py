"""Synthetic re-writes of the Parboil benchmark suite (paper Section 5.1).

The paper compiles the 11 Parboil CUDA kernels to its custom ISA; NVCC/LLVM
are unavailable offline, so each benchmark is re-written in the kernel DSL to
match the published characteristics that the paper's results hinge on:

=============  =============================================================
benchmark      modeled character
=============  =============================================================
bfs            irregular gather traversal: per-lane random neighbor loads
               (fully uncoalesced -> 32 requests/warp access), divergence
cutcp          compute-bound short-range potential: FMA + rsqrt loop over a
               shared-memory atom tile, high occupancy
histo          streaming input + scattered atomics into per-block private
               histograms (large output buffer)
lbm            lattice-Boltzmann: ~10 streaming loads and 10 stores per cell
               through a *reused address register*, huge register footprint
               -> 8-warp occupancy (one block per SM), ILP-dependent
mri-gridding   data-dependent per-block trip counts with two-orders-of-
               magnitude block imbalance + atomics
mri-q          SFU-bound (sin/cos) streaming compute
sad            absolute-difference accumulation over frames with a shared
               reference tile
sgemm          tiled matrix multiply: shared-memory tiles, barriers, FMA
spmv           CSR sparse matrix-vector: data-dependent row lengths,
               per-lane gather of x[col]
stencil        7-point stencil sweep over planes, coalesced neighbors
tpacf          angular correlation: SFU (sqrt/log) + shared histogram
=============  =============================================================

Datasets are scaled to keep full-suite Python simulation tractable; the
harness scales the microsecond-range fault constants by the same factor (see
``InterconnectConfig.scaled``).
"""

from __future__ import annotations

import numpy as np

from repro.isa import Imm, KernelBuilder, P, R
from repro.vm import SegmentKind

from .base import Workload, WorkloadRegistry

PARBOIL = WorkloadRegistry()

_HALO = 4096  # bytes of padding around stenciled inputs (negative offsets)


def _rand(seed: int):
    return np.random.RandomState(seed)


@PARBOIL.register
class Sgemm(Workload):
    """Tiled dense matrix multiply (the paper's headline use-case-1 winner)."""

    name = "sgemm"

    #: each tile of a block's A strip is its own fault granule region
    #: (rows are page-aligned in the real layout), so blocks fault
    #: mid-kernel — the access pattern block switching overlaps with other
    #: blocks' compute.  B is shared by every block (each block multiplies
    #: its A row-strip with the same B), so its migration cost amortizes.
    A_TILE_STRIDE = 16 * 1024
    B_TILE_STRIDE = 64 * 1024

    def __init__(self, grid_dim: int = 128, block_dim: int = 256,
                 tiles: int = 2, inner: int = 10) -> None:
        super().__init__(grid_dim, block_dim)
        self.tiles = tiles
        self.inner = inner

    def build_kernel(self):
        bd = self.block_dim
        kb = KernelBuilder("sgemm", regs_per_thread=40,
                           smem_bytes_per_block=8192)
        kb.tid(R(0))
        kb.ctaid(R(1))
        kb.shl(R(2), R(0), Imm(2))  # tid*4: shared tile slot
        # A: this block's private row strip; B: shared by every block.
        kb.imad(R(3), R(1), Imm(self.tiles * self.A_TILE_STRIDE), kb.param(0))
        kb.iadd(R(3), R(3), R(2))
        kb.iadd(R(4), R(2), kb.param(1))
        kb.mov(R(5), Imm(0.0))  # accumulator
        with kb.for_range(R(6), 0, self.tiles):
            kb.ld_global(R(7), R(3))
            kb.ld_global(R(8), R(4))
            kb.st_shared(R(2), R(7))
            kb.st_shared(R(2), R(8), offset=bd * 4)
            kb.bar()
            with kb.for_range(R(9), 0, self.inner):
                kb.shl(R(10), R(9), Imm(2))
                kb.ld_shared(R(11), R(10))
                kb.ld_shared(R(12), R(10), offset=bd * 4)
                kb.ffma(R(5), R(11), R(12), R(5))
            kb.bar()
            kb.iadd(R(3), R(3), Imm(self.A_TILE_STRIDE))
            kb.iadd(R(4), R(4), Imm(self.B_TILE_STRIDE))
        kb.global_thread_id(R(13))
        kb.imad(R(14), R(13), Imm(4), kb.param(2))
        kb.st_global(R(14), R(5))
        kb.exit()
        return kb.build()

    def segments(self):
        return [
            ("A", self.grid_dim * self.tiles * self.A_TILE_STRIDE,
             SegmentKind.INPUT),
            ("B", self.tiles * self.B_TILE_STRIDE, SegmentKind.INPUT),
            ("C", self.num_threads * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment(n).base for n in ("A", "B", "C")]


@PARBOIL.register
class Stencil(Workload):
    """7-point stencil sweep over z-planes (coalesced neighbor loads)."""

    name = "stencil"

    def __init__(self, grid_dim: int = 224, block_dim: int = 256,
                 planes: int = 2) -> None:
        super().__init__(grid_dim, block_dim)
        self.planes = planes

    def build_kernel(self):
        row = 128 * 4
        plane = self.num_threads * 4
        kb = KernelBuilder("stencil", regs_per_thread=36)
        kb.global_thread_id(R(0))
        kb.imad(R(1), R(0), Imm(4), kb.param(0))  # &in[gid] (past halo)
        kb.imad(R(2), R(0), Imm(4), kb.param(1))  # &out[gid]
        with kb.for_range(R(3), 0, self.planes):
            kb.ld_global(R(4), R(1))
            kb.ld_global(R(5), R(1), offset=4)
            kb.ld_global(R(6), R(1), offset=-4)
            kb.ld_global(R(7), R(1), offset=row)
            kb.ld_global(R(8), R(1), offset=-row)
            kb.ld_global(R(9), R(1), offset=plane)
            kb.ld_global(R(10), R(1), offset=-plane)
            kb.fadd(R(11), R(5), R(6))
            kb.fadd(R(12), R(7), R(8))
            kb.fadd(R(13), R(9), R(10))
            kb.fadd(R(11), R(11), R(12))
            kb.fadd(R(11), R(11), R(13))
            kb.ffma(R(11), R(4), Imm(-6.0), R(11))
            # anisotropic coefficients (the real kernel's extra FLOPs)
            kb.ffma(R(12), R(12), Imm(0.1), R(11))
            kb.ffma(R(13), R(13), Imm(0.2), R(12))
            kb.ffma(R(11), R(13), Imm(0.5), R(11))
            kb.fmul(R(11), R(11), Imm(0.999))
            kb.st_global(R(2), R(11))
            kb.iadd(R(1), R(1), Imm(plane))
            kb.iadd(R(2), R(2), Imm(plane))
        kb.exit()
        return kb.build()

    def segments(self):
        plane = self.num_threads * 4
        return [
            ("in", plane * (self.planes + 2) + 2 * _HALO, SegmentKind.INPUT),
            ("out", plane * self.planes, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        # The input base is offset past the halo+one plane so negative
        # neighbor offsets stay inside the segment.
        plane = self.num_threads * 4
        return [
            aspace.segment("in").base + _HALO + plane,
            aspace.segment("out").base,
        ]


@PARBOIL.register
class Lbm(Workload):
    """Lattice-Boltzmann: the paper's low-occupancy, ILP-dependent kernel.

    132 registers/thread allow only one 8-warp block per SM (the paper
    reports *lbm* at one eighth of the SM's warp capacity), and every load
    and store recomputes its address into the same register, creating the
    WAR pressure that makes the replay-queue scheme lose 40% on it.
    """

    name = "lbm"

    def __init__(self, grid_dim: int = 64, block_dim: int = 256,
                 iters: int = 5, dirs: int = 10) -> None:
        super().__init__(grid_dim, block_dim)
        self.iters = iters
        self.dirs = dirs

    #: direction slices of a block's chunk are padded (3/4 page apart), as
    #: the real padded SoA layout is: most distribution loads of the
    #: per-cell chain touch a fresh page, so TLB walks on a fresh slab
    #: serialize the reused-address-register chain under the replay-queue's
    #: conservative source release (the paper's lbm pathology).
    DIR_STRIDE = 2560

    def build_kernel(self):
        n = self.num_threads
        bd = self.block_dim
        # one block's slab chunk, padded to a page multiple
        chunk = -(-(self.dirs * self.DIR_STRIDE + bd * 8) // 4096) * 4096
        kb = KernelBuilder("lbm", regs_per_thread=132)
        kb.tid(R(6))
        kb.ctaid(R(7))
        # Block-chunked layout (the real kernel's per-cell locality): each
        # block streams a contiguous chunk holding all of its cells'
        # distributions.  Distributions are 8B/lane -> 2 cache lines per
        # warp access, doubling LD/ST-pipe pressure.
        kb.imad(R(1), R(7), Imm(chunk), kb.param(0))
        kb.imad(R(8), R(6), Imm(8), R(1))  # scratch: + tid*8
        kb.mov(R(1), R(8))  # &f_in chunk for this thread
        kb.imad(R(4), R(7), Imm(chunk), kb.param(1))
        kb.imad(R(8), R(6), Imm(8), R(4))
        kb.mov(R(4), R(8))  # &f_out chunk for this thread
        stride = self.grid_dim * chunk  # advance one full slab per iter
        with kb.for_range(R(5), 0, self.iters):
            for d in range(self.dirs):
                kb.iadd(R(2), R(1), Imm(d * self.DIR_STRIDE))  # reused addr reg
                kb.ld_global(R(10 + d), R(2), width=8)
            # collision: mix the distributions
            kb.mov(R(30), Imm(0.0))
            for d in range(self.dirs):
                kb.ffma(R(30), R(10 + d), Imm(1.0 / self.dirs), R(30))
            for d in range(4):
                kb.ffma(R(31 + d), R(10 + d), Imm(0.9), R(30))
            for d in range(self.dirs):
                kb.st_global(R(4), R(31 + (d % 4)),
                             offset=d * self.DIR_STRIDE, width=8)
            # Stream: the next iteration works on the next slab (no reuse,
            # like the real lattice sweep) — every load is a cold miss and
            # performance is purely a function of the MLP the scheme allows.
            kb.iadd(R(1), R(1), Imm(stride))
            kb.iadd(R(4), R(4), Imm(stride))
        kb.exit()
        return kb.build()

    def segments(self):
        chunk = -(-(self.dirs * self.DIR_STRIDE + self.block_dim * 8) // 4096) * 4096
        size = self.iters * self.grid_dim * chunk
        return [
            ("f_in", size, SegmentKind.INPUT),
            ("f_out", size, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment("f_in").base, aspace.segment("f_out").base]


@PARBOIL.register
class Bfs(Workload):
    """Frontier BFS step: per-lane random gathers (uncoalesced accesses)."""

    name = "bfs"

    def __init__(self, grid_dim: int = 256, block_dim: int = 256,
                 neighbors: int = 4) -> None:
        super().__init__(grid_dim, block_dim)
        self.neighbors = neighbors

    def build_kernel(self):
        n = self.num_threads
        kb = KernelBuilder("bfs", regs_per_thread=24)
        kb.global_thread_id(R(0))
        kb.imad(R(1), R(0), Imm(4), kb.param(0))
        kb.ld_global(R(2), R(1))  # my frontier node's level
        kb.mov(R(3), Imm(0.0))  # best level seen
        kb.imad(R(4), R(0), Imm(4), kb.param(1))  # &edges[gid]
        with kb.for_range(R(5), 0, self.neighbors):
            kb.ld_global(R(6), R(4))  # neighbor id (coalesced)
            kb.imad(R(7), R(6), Imm(4), kb.param(0))
            kb.ld_global(R(8), R(7))  # gather: node_level[neighbor]
            kb.fmax(R(3), R(3), R(8))
            kb.iadd(R(4), R(4), Imm(n * 4))
        kb.isetp(P(0), "gt", R(3), R(2))
        with kb.if_(P(0)):  # divergent: only improved nodes write back
            kb.imad(R(9), R(0), Imm(4), kb.param(2))
            kb.fadd(R(10), R(3), Imm(1.0))
            kb.st_global(R(9), R(10))
        kb.exit()
        return kb.build()

    def segments(self):
        n = self.num_threads
        return [
            ("levels", n * 4, SegmentKind.INPUT),
            ("edges", n * self.neighbors * 4, SegmentKind.INPUT),
            ("next", n * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment(s).base for s in ("levels", "edges", "next")]

    def init_memory(self, memory, aspace):
        n = self.num_threads
        rng = _rand(11)
        memory.fill(aspace.segment("levels").base,
                    rng.randint(0, 8, size=n).astype(float))
        memory.fill(aspace.segment("edges").base,
                    rng.randint(0, n, size=n * self.neighbors).astype(float))


@PARBOIL.register
class Histo(Workload):
    """Histogramming: streaming input, scattered atomics into per-block
    private histograms (a large first-touch output buffer)."""

    name = "histo"
    BINS = 1024

    def __init__(self, grid_dim: int = 256, block_dim: int = 256,
                 iters: int = 3) -> None:
        super().__init__(grid_dim, block_dim)
        self.iters = iters

    def build_kernel(self):
        n = self.num_threads
        kb = KernelBuilder("histo", regs_per_thread=16)
        kb.global_thread_id(R(0))
        kb.ctaid(R(1))
        kb.imad(R(2), R(0), Imm(4), kb.param(0))  # &in[gid]
        kb.imad(R(3), R(1), Imm(self.BINS * 4), kb.param(1))  # block's histo
        with kb.for_range(R(4), 0, self.iters):
            kb.ld_global(R(5), R(2))
            # bin = hash(value): the real kernel's saturation + scaling math
            kb.ffma(R(5), R(5), Imm(0.98), Imm(1.0))
            kb.fmul(R(5), R(5), R(5))
            kb.fmin(R(5), R(5), Imm(1.0e6))
            kb.f2i(R(6), R(5))
            kb.shr(R(6), R(6), Imm(2))
            kb.and_(R(6), R(6), Imm(self.BINS - 1))
            kb.imad(R(7), R(6), Imm(4), R(3))
            kb.atom_global(R(8), R(7), Imm(1.0), atom="add")
            kb.iadd(R(2), R(2), Imm(n * 4))
        kb.exit()
        return kb.build()

    def segments(self):
        return [
            ("in", self.num_threads * self.iters * 4, SegmentKind.INPUT),
            ("hist", self.grid_dim * self.BINS * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment("in").base, aspace.segment("hist").base]

    def init_memory(self, memory, aspace):
        count = self.num_threads * self.iters
        memory.fill(aspace.segment("in").base,
                    _rand(13).randint(0, self.BINS, size=count).astype(float))


@PARBOIL.register
class MriQ(Workload):
    """Q-matrix computation: SFU-bound sin/cos streaming compute."""

    name = "mri-q"

    def __init__(self, grid_dim: int = 192, block_dim: int = 256,
                 inner: int = 8) -> None:
        super().__init__(grid_dim, block_dim)
        self.inner = inner

    def build_kernel(self):
        kb = KernelBuilder("mri-q", regs_per_thread=20)
        kb.global_thread_id(R(0))
        # coordinates are interleaved (x,y,z per sample): the three loads
        # hit the same cache lines/pages, like the real kernel's float4 reads
        kb.imad(R(1), R(0), Imm(12), kb.param(0))
        kb.ld_global(R(2), R(1))  # x
        kb.ld_global(R(3), R(1), offset=4)  # y
        kb.ld_global(R(4), R(1), offset=8)  # z
        kb.mov(R(5), Imm(0.0))
        kb.mov(R(6), Imm(0.0))
        with kb.for_range(R(7), 0, self.inner):
            kb.i2f(R(8), R(7))
            kb.ffma(R(9), R(2), R(8), R(3))
            kb.ffma(R(9), R(4), R(8), R(9))
            kb.fsin(R(10), R(9))
            kb.fcos(R(11), R(9))
            kb.fadd(R(5), R(5), R(10))
            kb.fadd(R(6), R(6), R(11))
        kb.imad(R(12), R(0), Imm(4), kb.param(1))
        kb.st_global(R(12), R(5))
        kb.st_global(R(12), R(6), offset=self.num_threads * 4)
        kb.exit()
        return kb.build()

    def segments(self):
        n = self.num_threads
        return [
            ("coords", n * 12, SegmentKind.INPUT),
            ("Q", n * 8, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment("coords").base, aspace.segment("Q").base]


@PARBOIL.register
class Cutcp(Workload):
    """Cutoff Coulomb potential: FMA + rsqrt over a shared atom tile."""

    name = "cutcp"

    def __init__(self, grid_dim: int = 256, block_dim: int = 256,
                 atoms: int = 4) -> None:
        super().__init__(grid_dim, block_dim)
        self.atoms = atoms

    def build_kernel(self):
        kb = KernelBuilder("cutcp", regs_per_thread=28,
                           smem_bytes_per_block=4096)
        kb.tid(R(0))
        kb.global_thread_id(R(1))
        kb.imad(R(2), R(1), Imm(4), kb.param(0))
        kb.ld_global(R(3), R(2))  # grid-point coordinate
        kb.shl(R(4), R(0), Imm(2))
        kb.st_shared(R(4), R(3))  # stage atoms into shared memory
        kb.bar()
        kb.mov(R(5), Imm(0.0))  # potential accumulator
        with kb.for_range(R(6), 0, self.atoms):
            kb.shl(R(7), R(6), Imm(2))
            kb.ld_shared(R(8), R(7))
            kb.fsub(R(9), R(8), R(3))
            kb.ffma(R(10), R(9), R(9), Imm(0.5))
            kb.frsqrt(R(11), R(10))
            kb.fmin(R(11), R(11), Imm(4.0))
            kb.fadd(R(5), R(5), R(11))
        kb.imad(R(12), R(1), Imm(4), kb.param(1))
        kb.st_global(R(12), R(5))
        kb.exit()
        return kb.build()

    def segments(self):
        n = self.num_threads
        return [
            ("atoms", n * 4, SegmentKind.INPUT),
            ("pot", n * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment("atoms").base, aspace.segment("pot").base]

    def init_memory(self, memory, aspace):
        n = self.num_threads
        memory.fill(aspace.segment("atoms").base,
                    _rand(17).uniform(0.1, 4.0, size=n))


@PARBOIL.register
class Spmv(Workload):
    """CSR sparse matrix-vector product: data-dependent row lengths and a
    per-lane gather of x[col]."""

    name = "spmv"
    MAX_NNZ = 6

    def __init__(self, grid_dim: int = 256, block_dim: int = 256) -> None:
        super().__init__(grid_dim, block_dim)

    def build_kernel(self):
        kb = KernelBuilder("spmv", regs_per_thread=18)
        kb.global_thread_id(R(0))
        kb.imad(R(1), R(0), Imm(4), kb.param(0))
        kb.ld_global(R(2), R(1))  # row start
        kb.ld_global(R(3), R(1), offset=4)  # row end
        kb.mov(R(4), Imm(0.0))

        def cond():
            kb.isetp(P(0), "lt", R(2), R(3))
            return P(0)

        with kb.while_(cond):
            kb.imad(R(5), R(2), Imm(4), kb.param(1))
            kb.ld_global(R(6), R(5))  # col index
            kb.imad(R(7), R(2), Imm(4), kb.param(2))
            kb.ld_global(R(8), R(7))  # matrix value
            kb.imad(R(9), R(6), Imm(4), kb.param(3))
            kb.ld_global(R(10), R(9))  # gather x[col]
            kb.ffma(R(4), R(8), R(10), R(4))
            kb.iadd(R(2), R(2), Imm(1))
        kb.imad(R(11), R(0), Imm(4), kb.param(4))
        kb.st_global(R(11), R(4))
        kb.exit()
        return kb.build()

    def segments(self):
        n = self.num_threads
        nnz = n * self.MAX_NNZ
        return [
            ("rowptr", (n + 1) * 4, SegmentKind.INPUT),
            ("colidx", nnz * 4, SegmentKind.INPUT),
            ("vals", nnz * 4, SegmentKind.INPUT),
            ("x", n * 4, SegmentKind.INPUT),
            ("y", n * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment(s).base
                for s in ("rowptr", "colidx", "vals", "x", "y")]

    def init_memory(self, memory, aspace):
        n = self.num_threads
        rng = _rand(19)
        lengths = rng.randint(2, self.MAX_NNZ + 1, size=n)
        rowptr = np.concatenate([[0], np.cumsum(lengths)])
        memory.fill(aspace.segment("rowptr").base, rowptr.astype(float))
        nnz = int(rowptr[-1])
        memory.fill(aspace.segment("colidx").base,
                    rng.randint(0, n, size=nnz).astype(float))
        memory.fill(aspace.segment("vals").base, rng.uniform(size=nnz))
        memory.fill(aspace.segment("x").base, rng.uniform(size=n))


@PARBOIL.register
class Sad(Workload):
    """Sum-of-absolute-differences block matching with a shared tile."""

    name = "sad"

    def __init__(self, grid_dim: int = 256, block_dim: int = 256,
                 pixels: int = 4) -> None:
        super().__init__(grid_dim, block_dim)
        self.pixels = pixels

    def build_kernel(self):
        n = self.num_threads
        kb = KernelBuilder("sad", regs_per_thread=20,
                           smem_bytes_per_block=2048)
        kb.tid(R(0))
        kb.global_thread_id(R(1))
        kb.imad(R(2), R(1), Imm(4), kb.param(0))
        kb.ld_global(R(3), R(2))  # reference pixel
        kb.shl(R(4), R(0), Imm(2))
        kb.st_shared(R(4), R(3))
        kb.bar()
        kb.mov(R(5), Imm(0.0))
        kb.imad(R(6), R(1), Imm(4), kb.param(1))  # &cur[gid]
        with kb.for_range(R(7), 0, self.pixels):
            kb.ld_global(R(8), R(6))
            kb.ld_shared(R(9), R(4))
            kb.isub(R(10), R(8), R(9))
            kb.imax(R(11), R(10), Imm(0))
            kb.imin(R(12), R(10), Imm(0))
            kb.isub(R(10), R(11), R(12))  # |cur - ref|
            kb.iadd(R(5), R(5), R(10))
            kb.iadd(R(6), R(6), Imm(n * 4))
        kb.imad(R(13), R(1), Imm(4), kb.param(2))
        kb.st_global(R(13), R(5))
        kb.exit()
        return kb.build()

    def segments(self):
        n = self.num_threads
        return [
            ("ref", n * 4, SegmentKind.INPUT),
            ("cur", n * self.pixels * 4, SegmentKind.INPUT),
            ("sad", n * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment(s).base for s in ("ref", "cur", "sad")]

    def init_memory(self, memory, aspace):
        n = self.num_threads
        rng = _rand(23)
        memory.fill(aspace.segment("ref").base,
                    rng.randint(0, 256, size=n).astype(float))
        memory.fill(aspace.segment("cur").base,
                    rng.randint(0, 256, size=n * self.pixels).astype(float))


@PARBOIL.register
class Tpacf(Workload):
    """Two-point angular correlation: SFU math + shared histogram."""

    name = "tpacf"
    BINS = 256

    def __init__(self, grid_dim: int = 224, block_dim: int = 256,
                 pairs: int = 5) -> None:
        super().__init__(grid_dim, block_dim)
        self.pairs = pairs

    def build_kernel(self):
        n = self.num_threads
        kb = KernelBuilder("tpacf", regs_per_thread=28,
                           smem_bytes_per_block=4096)
        kb.tid(R(0))
        kb.ctaid(R(1))
        kb.global_thread_id(R(2))
        kb.imad(R(3), R(2), Imm(4), kb.param(0))
        kb.ld_global(R(4), R(3))  # my point
        kb.imad(R(5), R(2), Imm(4), kb.param(1))  # other points stream
        with kb.for_range(R(6), 0, self.pairs):
            kb.ld_global(R(7), R(5))
            kb.fmul(R(8), R(4), R(7))
            kb.ffma(R(8), R(8), Imm(0.5), Imm(1.0))
            kb.fsqrt(R(9), R(8))
            kb.flog(R(10), R(9))
            kb.fmul(R(10), R(10), Imm(32.0))
            kb.f2i(R(11), R(10))
            kb.and_(R(11), R(11), Imm(self.BINS - 1))
            kb.shl(R(12), R(11), Imm(2))
            kb.st_shared(R(12), R(10))  # shared histogram update
            kb.iadd(R(5), R(5), Imm(n * 4))
        kb.bar()
        # Flush one shared-histogram bin per thread to the global result.
        kb.and_(R(13), R(0), Imm(self.BINS - 1))
        kb.shl(R(14), R(13), Imm(2))
        kb.ld_shared(R(15), R(14))
        kb.imad(R(16), R(1), Imm(self.BINS * 4), kb.param(2))
        kb.iadd(R(16), R(16), R(14))
        kb.st_global(R(16), R(15))
        kb.exit()
        return kb.build()

    def segments(self):
        n = self.num_threads
        return [
            ("points", n * 4, SegmentKind.INPUT),
            ("others", n * self.pairs * 4, SegmentKind.INPUT),
            ("hist", self.grid_dim * self.BINS * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment(s).base for s in ("points", "others", "hist")]

    def init_memory(self, memory, aspace):
        n = self.num_threads
        rng = _rand(29)
        memory.fill(aspace.segment("points").base, rng.uniform(0.2, 2, size=n))
        memory.fill(aspace.segment("others").base,
                    rng.uniform(0.2, 2, size=n * self.pairs))


@PARBOIL.register
class MriGridding(Workload):
    """Gridding: data-dependent per-block trip counts with severe block
    imbalance (every 17th block does ~30x the work) plus atomics — the
    benchmark whose reordering sensitivity makes block switching lose."""

    name = "mri-gridding"
    SHORT_ITERS = 2
    LONG_ITERS = 40

    def __init__(self, grid_dim: int = 272, block_dim: int = 256) -> None:
        super().__init__(grid_dim, block_dim)

    SAMPLES_BYTES = 1 << 19  # power of two so the stream offset can wrap

    def build_kernel(self):
        n = self.num_threads
        kb = KernelBuilder("mri-gridding", regs_per_thread=24)
        kb.global_thread_id(R(0))
        kb.ctaid(R(1))
        kb.imad(R(2), R(1), Imm(4), kb.param(0))
        kb.ld_global(R(3), R(2))  # this block's trip count (uniform)
        kb.shl(R(4), R(0), Imm(2))  # byte offset into the sample stream
        kb.mov(R(5), Imm(0.0))
        with kb.for_range(R(6), 0, R(3)):
            kb.iadd(R(11), R(4), kb.param(1))
            kb.ld_global(R(7), R(11))
            kb.ffma(R(5), R(7), Imm(0.25), R(5))
            kb.f2i(R(8), R(5))
            kb.and_(R(8), R(8), Imm(1023))
            kb.imad(R(9), R(8), Imm(4), kb.param(2))
            kb.atom_global(R(10), R(9), R(7), atom="add")
            kb.iadd(R(4), R(4), Imm(n * 4))
            kb.and_(R(4), R(4), Imm(self.SAMPLES_BYTES - 1))
        kb.exit()
        return kb.build()

    def segments(self):
        return [
            ("work", self.grid_dim * 4, SegmentKind.INPUT),
            ("samples", self.SAMPLES_BYTES, SegmentKind.INPUT),
            ("grid", 1024 * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment(s).base for s in ("work", "samples", "grid")]

    def init_memory(self, memory, aspace):
        counts = [
            float(self.LONG_ITERS if b % 17 == 0 else self.SHORT_ITERS)
            for b in range(self.grid_dim)
        ]
        memory.fill(aspace.segment("work").base, counts)
        memory.fill(aspace.segment("samples").base,
                    _rand(31).uniform(0, 4, size=self.SAMPLES_BYTES // 4))


PARBOIL_NAMES = PARBOIL.names()
