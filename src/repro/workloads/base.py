"""Workload abstraction: a kernel + launch geometry + address-space layout.

A :class:`Workload` owns everything needed to simulate one benchmark:

- the kernel (built once from the DSL),
- the launch geometry and parameter values (segment base addresses),
- the virtual address-space layout (segments with their paging behaviour),
- memory initialization for the functional run,
- an optional device heap (for the Halloc-style allocator benchmarks).

The dynamic trace is produced once by the functional simulator and cached;
each timing simulation gets a *fresh* address space (same deterministic
layout, clean page state) so experiments do not leak paging state into each
other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.functional import Interpreter, Launch, KernelTrace
from repro.isa import Kernel
from repro.vm import AddressSpace, DeviceHeap, SparseMemory


class Workload:
    """Base class for benchmark workloads.

    Subclasses implement :meth:`build_kernel`, :meth:`segments` and
    :meth:`params`, and may override :meth:`init_memory` and
    :meth:`heap_spec`.
    """

    #: registry name (subclasses set this)
    name: str = "workload"

    def __init__(self, grid_dim: int, block_dim: int) -> None:
        self.grid_dim = grid_dim
        self.block_dim = block_dim
        self._kernel: Optional[Kernel] = None
        self._trace: Optional[KernelTrace] = None

    # -- subclass interface -------------------------------------------------

    def build_kernel(self) -> Kernel:
        raise NotImplementedError

    def segments(self) -> Sequence[Tuple[str, int, str]]:
        """``(name, size_bytes, kind)`` triples, in layout order."""
        raise NotImplementedError

    def params(self, aspace: AddressSpace) -> List[float]:
        """Kernel launch parameters (usually segment base addresses)."""
        raise NotImplementedError

    def init_memory(self, memory: SparseMemory, aspace: AddressSpace) -> None:
        """Populate input segments for the functional run (default: zeros,
        which :class:`SparseMemory` provides implicitly)."""

    def heap_spec(self) -> Optional[int]:
        """Device-heap size in bytes, or ``None`` if the kernel never
        mallocs.  The heap gets one arena per warp in the launch."""
        return None

    # -- cached products ----------------------------------------------------

    @property
    def kernel(self) -> Kernel:
        if self._kernel is None:
            self._kernel = self.build_kernel()
        return self._kernel

    @property
    def num_threads(self) -> int:
        return self.grid_dim * self.block_dim

    @property
    def num_warps(self) -> int:
        return self.num_threads // 32

    def make_address_space(self) -> AddressSpace:
        """A fresh address space with this workload's (deterministic) layout."""
        aspace = AddressSpace()
        for name, size, kind in self.segments():
            aspace.add_segment(name, size, kind)
        heap_bytes = self.heap_spec()
        if heap_bytes:
            aspace.add_segment("heap", heap_bytes, "heap")
        return aspace

    def make_heap(self, aspace: AddressSpace) -> Optional[DeviceHeap]:
        heap_bytes = self.heap_spec()
        if not heap_bytes:
            return None
        seg = aspace.segment("heap")
        return DeviceHeap(seg.base, seg.size, num_arenas=self.num_warps)

    def make_launch(self, aspace: AddressSpace) -> Launch:
        return Launch(
            kernel=self.kernel,
            grid_dim=self.grid_dim,
            block_dim=self.block_dim,
            params=self.params(aspace),
        )

    def trace(self) -> KernelTrace:
        """The dynamic trace (functional execution), computed once."""
        if self._trace is None:
            aspace = self.make_address_space()
            memory = SparseMemory()
            self.init_memory(memory, aspace)
            interp = Interpreter(
                memory=memory,
                address_space=aspace,
                heap=self.make_heap(aspace),
            )
            self._trace = interp.run(self.make_launch(aspace))
        return self._trace

    def run_functional(self) -> SparseMemory:
        """Execute functionally and return the resulting memory (used by
        correctness tests and examples)."""
        aspace = self.make_address_space()
        memory = SparseMemory()
        self.init_memory(memory, aspace)
        interp = Interpreter(
            memory=memory, address_space=aspace, heap=self.make_heap(aspace)
        )
        interp.run(self.make_launch(aspace))
        return memory

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} grid={self.grid_dim} "
            f"block={self.block_dim}>"
        )


class WorkloadRegistry:
    """Name -> workload-factory registry with per-instance caching."""

    def __init__(self) -> None:
        self._factories: Dict[str, type] = {}
        self._instances: Dict[str, Workload] = {}

    def register(self, cls: type) -> type:
        self._factories[cls.name] = cls
        return cls

    def names(self) -> List[str]:
        return sorted(self._factories)

    def get(self, name: str) -> Workload:
        """A cached instance (kernel + trace shared across experiments)."""
        if name not in self._instances:
            try:
                self._instances[name] = self._factories[name]()
            except KeyError:
                raise KeyError(
                    f"unknown workload {name!r}; known: {self.names()}"
                ) from None
        return self._instances[name]

    def fresh(self, name: str) -> Workload:
        """An uncached instance (independent trace), for tests."""
        return self._factories[name]()
