"""Small microbenchmark workloads for tests and the quickstart example."""

from __future__ import annotations

from repro.isa import Imm, KernelBuilder, R
from repro.vm import SegmentKind

from .base import Workload, WorkloadRegistry

MICRO = WorkloadRegistry()


@MICRO.register
class Saxpy(Workload):
    """y[i] = a * x[i] + y[i] — the canonical quickstart kernel."""

    name = "saxpy"

    def __init__(self, grid_dim: int = 32, block_dim: int = 128,
                 alpha: float = 2.0) -> None:
        super().__init__(grid_dim, block_dim)
        self.alpha = alpha

    def build_kernel(self):
        kb = KernelBuilder("saxpy", regs_per_thread=12)
        kb.global_thread_id(R(0))
        kb.imad(R(1), R(0), Imm(4), kb.param(0))
        kb.imad(R(2), R(0), Imm(4), kb.param(1))
        kb.ld_global(R(3), R(1))
        kb.ld_global(R(4), R(2))
        kb.ffma(R(5), R(3), kb.param(2), R(4))
        kb.st_global(R(2), R(5))
        kb.exit()
        return kb.build()

    def segments(self):
        n = self.num_threads
        return [
            ("x", n * 4, SegmentKind.INPUT),
            ("y", n * 4, SegmentKind.INOUT),
        ]

    def params(self, aspace):
        return [aspace.segment("x").base, aspace.segment("y").base, self.alpha]

    def init_memory(self, memory, aspace):
        n = self.num_threads
        memory.fill(aspace.segment("x").base, [float(i % 97) for i in range(n)])
        memory.fill(aspace.segment("y").base, [1.0] * n)


@MICRO.register
class StreamSum(Workload):
    """Strided streaming reduction: a knob-heavy workload for unit tests."""

    name = "stream-sum"

    def __init__(self, grid_dim: int = 16, block_dim: int = 128,
                 iters: int = 8) -> None:
        super().__init__(grid_dim, block_dim)
        self.iters = iters

    def build_kernel(self):
        n = self.num_threads
        kb = KernelBuilder("stream-sum", regs_per_thread=16)
        kb.global_thread_id(R(0))
        kb.imad(R(1), R(0), Imm(4), kb.param(0))
        kb.mov(R(2), Imm(0.0))
        with kb.for_range(R(3), 0, self.iters):
            kb.ld_global(R(4), R(1))
            kb.fadd(R(2), R(2), R(4))
            kb.iadd(R(1), R(1), Imm(n * 4))
        kb.imad(R(5), R(0), Imm(4), kb.param(1))
        kb.st_global(R(5), R(2))
        kb.exit()
        return kb.build()

    def segments(self):
        n = self.num_threads
        return [
            ("in", n * self.iters * 4, SegmentKind.INPUT),
            ("out", n * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment("in").base, aspace.segment("out").base]

    def init_memory(self, memory, aspace):
        count = self.num_threads * self.iters
        memory.fill(aspace.segment("in").base,
                    [float((i * 7) % 13) for i in range(count)])


@MICRO.register
class TlbThrash(Workload):
    """Every warp access touches a distinct page: stresses the L1/L2 TLBs
    and the page-walker fill unit (the last-TLB-check path the schemes
    gate on)."""

    name = "tlb-thrash"

    def __init__(self, grid_dim: int = 16, block_dim: int = 128,
                 iters: int = 6) -> None:
        super().__init__(grid_dim, block_dim)
        self.iters = iters

    PAGE_STRIDE = 4096

    def build_kernel(self):
        total_warps = self.num_warps
        kb = KernelBuilder("tlb-thrash", regs_per_thread=16)
        kb.global_thread_id(R(0))
        # every warp owns a page; iterations jump to a fresh page set
        kb.shr(R(1), R(0), Imm(5))  # global warp id
        kb.shl(R(1), R(1), Imm(12))  # * page size
        kb.and_(R(2), R(0), Imm(31))
        kb.shl(R(2), R(2), Imm(2))  # lane * 4
        kb.iadd(R(1), R(1), R(2))
        kb.iadd(R(1), R(1), kb.param(0))
        kb.mov(R(3), Imm(0.0))
        with kb.for_range(R(4), 0, self.iters):
            kb.ld_global(R(5), R(1))
            kb.fadd(R(3), R(3), R(5))
            kb.iadd(R(1), R(1), Imm(total_warps * self.PAGE_STRIDE))
        kb.imad(R(6), R(0), Imm(4), kb.param(1))
        kb.st_global(R(6), R(3))
        kb.exit()
        return kb.build()

    def segments(self):
        span = (self.iters + 1) * self.num_warps * self.PAGE_STRIDE
        return [
            ("in", span, SegmentKind.INPUT),
            ("out", self.num_threads * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment("in").base, aspace.segment("out").base]


@MICRO.register
class MshrStorm(Workload):
    """Per-lane scattered loads (32 requests per warp access): saturates
    the LD/ST address pipeline and the L1 MSHR pool."""

    name = "mshr-storm"

    def __init__(self, grid_dim: int = 16, block_dim: int = 128,
                 iters: int = 4) -> None:
        super().__init__(grid_dim, block_dim)
        self.iters = iters

    def build_kernel(self):
        kb = KernelBuilder("mshr-storm", regs_per_thread=16)
        kb.global_thread_id(R(0))
        # lane-dependent stride of 7 cache lines: fully uncoalesced
        kb.imul(R(1), R(0), Imm(7 * 128))
        kb.and_(R(1), R(1), Imm((1 << 21) - 1))
        kb.iadd(R(1), R(1), kb.param(0))
        kb.mov(R(2), Imm(0.0))
        with kb.for_range(R(3), 0, self.iters):
            kb.ld_global(R(4), R(1))
            kb.fadd(R(2), R(2), R(4))
            kb.iadd(R(1), R(1), Imm(128))
        kb.imad(R(5), R(0), Imm(4), kb.param(1))
        kb.st_global(R(5), R(2))
        kb.exit()
        return kb.build()

    def segments(self):
        return [
            ("in", (1 << 21) + 4096, SegmentKind.INPUT),
            ("out", self.num_threads * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment("in").base, aspace.segment("out").base]


@MICRO.register
class DivergenceTree(Workload):
    """Nested divergent branching: every level halves the active mask —
    stresses the SIMT stack and the branch unit's fetch-disable bubbles."""

    name = "divergence-tree"

    def __init__(self, grid_dim: int = 16, block_dim: int = 128,
                 depth: int = 4) -> None:
        super().__init__(grid_dim, block_dim)
        self.depth = depth

    def build_kernel(self):
        from repro.isa import P

        kb = KernelBuilder("divergence-tree", regs_per_thread=16)
        kb.global_thread_id(R(0))
        kb.mov(R(1), Imm(0.0))

        def nest(level):
            if level >= self.depth:
                return
            kb.and_(R(2), R(0), Imm(1 << level))
            kb.isetp(P(0), "eq", R(2), Imm(0))
            with kb.if_else(P(0)) as orelse:
                kb.fadd(R(1), R(1), Imm(float(1 << level)))
                nest(level + 1)
                orelse()
                kb.fadd(R(1), R(1), Imm(-float(1 << level)))
                nest(level + 1)

        nest(0)
        kb.imad(R(3), R(0), Imm(4), kb.param(0))
        kb.st_global(R(3), R(1))
        kb.exit()
        return kb.build()

    def segments(self):
        return [("out", self.num_threads * 4, SegmentKind.OUTPUT)]

    def params(self, aspace):
        return [aspace.segment("out").base]


MICRO_NAMES = MICRO.names()
