"""Benchmark workloads: Parboil-like suite, Halloc-like suite, micros."""

from .base import Workload, WorkloadRegistry
from .halloc import HALLOC, HALLOC_NAMES
from .micro import MICRO, MICRO_NAMES
from .multi import (
    STREAM_SCENARIO_NAMES,
    STREAM_SCENARIOS,
    StreamKernelSpec,
    StreamScenario,
    get_stream_scenario,
)
from .parboil import PARBOIL, PARBOIL_NAMES


def get_workload(name: str) -> Workload:
    """Look up a (cached) workload instance across all registries."""
    for registry in (PARBOIL, HALLOC, MICRO):
        if name in registry.names():
            return registry.get(name)
    known = PARBOIL_NAMES + HALLOC_NAMES + MICRO_NAMES
    raise KeyError(f"unknown workload {name!r}; known: {sorted(known)}")


__all__ = [
    "Workload",
    "WorkloadRegistry",
    "PARBOIL",
    "PARBOIL_NAMES",
    "HALLOC",
    "HALLOC_NAMES",
    "MICRO",
    "MICRO_NAMES",
    "STREAM_SCENARIOS",
    "STREAM_SCENARIO_NAMES",
    "StreamKernelSpec",
    "StreamScenario",
    "get_stream_scenario",
    "get_workload",
]
