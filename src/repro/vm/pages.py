"""Page-granularity constants and helpers.

The paper assumes 4KB GPU pages (Section 5.1) and performs fault *handling*
at a 64KB granularity (16 pages) to amortize per-fault costs, mimicking the
prefetching of related work.  Both constants live here so every subsystem
agrees on them.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4KB GPU pages

FAULT_GRANULARITY_PAGES = 16
FAULT_GRANULARITY_BYTES = FAULT_GRANULARITY_PAGES * PAGE_SIZE  # 64KB handling

CACHE_LINE_SIZE = 128  # bytes (Table 1)


def page_number(addr: int) -> int:
    """Virtual/physical page number containing byte address ``addr``."""
    return addr >> PAGE_SHIFT


def page_base(addr: int) -> int:
    """Base byte address of the page containing ``addr``."""
    return addr & ~(PAGE_SIZE - 1)


def page_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its page."""
    return addr & (PAGE_SIZE - 1)


def fault_group(addr: int) -> int:
    """64KB fault-handling group index for ``addr``.

    Faults are resolved (migrated/allocated) one group at a time, so all
    pages of the group a faulting address belongs to become present together.
    """
    return addr >> (PAGE_SHIFT + 4)


def cache_line(addr: int) -> int:
    """Cache-line index containing byte address ``addr``."""
    return addr // CACHE_LINE_SIZE


def pages_in_group(group: int) -> range:
    """Range of page numbers covered by fault-handling ``group``."""
    first = group * FAULT_GRANULARITY_PAGES
    return range(first, first + FAULT_GRANULARITY_PAGES)
