"""Szymanski's mutual exclusion algorithm.

The paper's prototype (Section 4.2) synchronizes CPU- and GPU-side memory
management "on the system level ... using Szymanski's algorithm" [49], which
needs only single-writer shared flags and linear wait.  We implement the
flag-based algorithm faithfully so the concurrent-management protocol of the
local fault handler has a real substrate, and expose it both as a
busy-waiting lock for real Python threads and as a step-wise state machine
for deterministic simulation/testing.

Each process's flag takes one of five values::

    0 - noncritical section
    1 - intends to enter (doorway)
    2 - waiting for other processes to open the door
    3 - standing in the doorway
    4 - in (or entitled to enter) the critical section
"""

from __future__ import annotations

import threading
import time
from typing import List


class SzymanskiLock:
    """N-process Szymanski mutual exclusion over shared flags."""

    def __init__(self, num_processes: int) -> None:
        if num_processes <= 0:
            raise ValueError("need at least one process")
        self.n = num_processes
        self.flags: List[int] = [0] * num_processes

    # The algorithm, written as predicates over the flag array ------------

    def _others(self, me: int):
        return (j for j in range(self.n) if j != me)

    def _all_others_in(self, me: int, allowed) -> bool:
        return all(self.flags[j] in allowed for j in self._others(me))

    def _any_other_in(self, me: int, wanted) -> bool:
        return any(self.flags[j] in wanted for j in self._others(me))

    # Blocking interface (usable from real threads) ------------------------

    def acquire(self, me: int, spin_sleep: float = 0.0) -> None:
        flags = self.flags
        flags[me] = 1  # intention to enter
        while not self._all_others_in(me, (0, 1, 2)):  # wait for open door
            if spin_sleep:
                time.sleep(spin_sleep)
        flags[me] = 3  # standing in the doorway
        if self._any_other_in(me, (1,)):
            flags[me] = 2  # another process is at the door: wait for it
            while not self._any_other_in(me, (4,)):
                if spin_sleep:
                    time.sleep(spin_sleep)
        flags[me] = 4  # close the door behind
        while any(self.flags[j] in (2, 3) for j in range(me)):
            if spin_sleep:
                time.sleep(spin_sleep)

    def release(self, me: int, spin_sleep: float = 0.0) -> None:
        # Wait for processes behind us to finish entering the doorway.
        while any(self.flags[j] in (2, 3) for j in range(me + 1, self.n)):
            if spin_sleep:
                time.sleep(spin_sleep)
        self.flags[me] = 0

    def in_critical(self, me: int) -> bool:
        return self.flags[me] == 4 and not any(
            self.flags[j] in (2, 3) for j in range(me)
        )


class SzymanskiMutex:
    """Convenience wrapper assigning flag slots to Python threads.

    Provides a context-manager interface for tests that exercise the
    algorithm with real concurrency.
    """

    def __init__(self, num_slots: int) -> None:
        self._lock = SzymanskiLock(num_slots)
        self._slots: dict = {}
        self._slot_guard = threading.Lock()
        self._next = 0

    def _my_slot(self) -> int:
        ident = threading.get_ident()
        with self._slot_guard:
            if ident not in self._slots:
                if self._next >= self._lock.n:
                    raise RuntimeError("more threads than Szymanski slots")
                self._slots[ident] = self._next
                self._next += 1
            return self._slots[ident]

    def __enter__(self) -> "SzymanskiMutex":
        self._lock.acquire(self._my_slot(), spin_sleep=1e-6)
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release(self._my_slot(), spin_sleep=1e-6)
