"""Virtual-memory substrate: pages, page tables, allocators, heap, locks."""

from .address_space import AddressSpace, Segment, SegmentKind
from .heap import DeviceHeap, HeapExhausted
from .memory import SparseMemory
from .page_table import FaultClass, Owner, PageTable, PageTableEntry, SystemPageState
from .pages import (
    CACHE_LINE_SIZE,
    FAULT_GRANULARITY_BYTES,
    FAULT_GRANULARITY_PAGES,
    PAGE_SHIFT,
    PAGE_SIZE,
    cache_line,
    fault_group,
    page_base,
    page_number,
    page_offset,
    pages_in_group,
)
from .physical import FrameAllocator, OutOfPhysicalMemory
from .szymanski import SzymanskiLock, SzymanskiMutex

__all__ = [
    "AddressSpace",
    "Segment",
    "SegmentKind",
    "DeviceHeap",
    "HeapExhausted",
    "SparseMemory",
    "FaultClass",
    "Owner",
    "PageTable",
    "PageTableEntry",
    "SystemPageState",
    "FrameAllocator",
    "OutOfPhysicalMemory",
    "SzymanskiLock",
    "SzymanskiMutex",
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "CACHE_LINE_SIZE",
    "FAULT_GRANULARITY_BYTES",
    "FAULT_GRANULARITY_PAGES",
    "page_number",
    "page_base",
    "page_offset",
    "fault_group",
    "cache_line",
    "pages_in_group",
]
