"""Virtual address-space layout and segment bookkeeping for one kernel launch.

A launch's buffers live in named *segments*.  Each segment declares how its
pages start out (resident+dirty on the CPU, CPU-allocated but clean, or not
backed at all), which determines the class of the faults that the GPU takes
when touching them — the knob the paper's experiments turn:

- Figures 10/11: everything pre-mapped on the GPU (no faults).
- Figure 12: inputs CPU-dirty (MIGRATE), outputs untouched (ALLOC_ONLY via
  the CPU path).
- Figures 13/14: outputs/heap untouched (FIRST_TOUCH, locally handleable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .page_table import Owner, SystemPageState
from .pages import FAULT_GRANULARITY_BYTES, PAGE_SIZE, page_number


class SegmentKind:
    """Segment categories; each implies an initial page-ownership state
    (see the module docstring)."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"
    HEAP = "heap"
    SCRATCH = "scratch"


@dataclass(frozen=True)
class Segment:
    name: str
    base: int
    size: int
    kind: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def pages(self) -> Iterator[int]:
        return iter(range(page_number(self.base), page_number(self.end - 1) + 1))


class AddressSpace:
    """Bump-allocates page-aligned segments in a flat 48-bit VA space."""

    #: Heap segment base kept away from data buffers so first-touch
    #: classification is unambiguous.
    HEAP_BASE = 1 << 40

    def __init__(self, page_state: Optional[SystemPageState] = None) -> None:
        self.page_state = page_state if page_state is not None else SystemPageState()
        self._segments: Dict[str, Segment] = {}
        # keep the first granule unmapped (null guard)
        self._cursor = FAULT_GRANULARITY_BYTES
        self._heap_cursor = self.HEAP_BASE

    def segment(self, name: str) -> Segment:
        return self._segments[name]

    def segments(self) -> Iterator[Segment]:
        return iter(self._segments.values())

    def _align(self, size: int) -> int:
        # Segments are aligned to the 64KB fault-handling granularity so a
        # fault granule never spans two segments with different paging
        # behaviour (e.g. a MIGRATE input and a FIRST_TOUCH output).
        mask = FAULT_GRANULARITY_BYTES - 1
        return (size + mask) & ~mask

    def add_segment(self, name: str, size: int, kind: str) -> Segment:
        """Create a segment and register its initial page ownership."""
        if name in self._segments:
            raise ValueError(f"segment {name!r} already exists")
        if size <= 0:
            raise ValueError("segment size must be positive")
        aligned = self._align(size)
        if kind == SegmentKind.HEAP:
            base = self._heap_cursor
            self._heap_cursor += aligned
        else:
            base = self._cursor
            self._cursor += aligned
        seg = Segment(name=name, base=base, size=aligned, kind=kind)
        self._segments[name] = seg

        if kind in (SegmentKind.INPUT, SegmentKind.INOUT):
            owner, dirty = Owner.CPU, True
        elif kind == SegmentKind.SCRATCH:
            owner, dirty = Owner.CPU, False
        else:  # OUTPUT and HEAP pages have no backing yet (first touch)
            owner, dirty = Owner.NONE, False
        self.page_state.register_range(base, aligned, owner, cpu_dirty=dirty)
        return seg

    def segment_of(self, addr: int) -> Optional[Segment]:
        for seg in self._segments.values():
            if seg.contains(addr):
                return seg
        return None

    def premap_all(self, frame_allocator) -> None:
        """Map every segment page on the GPU (the no-fault configuration
        used for the pipeline-overhead experiments, Figures 10/11)."""
        self.premap_kinds(frame_allocator, None)

    def premap_kinds(self, frame_allocator, kinds) -> None:
        """GPU-map all pages of segments whose kind is in ``kinds``
        (``None`` = every segment)."""
        for seg in self._segments.values():
            if kinds is not None and seg.kind not in kinds:
                continue
            for vpn in seg.pages():
                if self.page_state.gpu_translate(vpn) is None:
                    self.page_state.install_gpu_page(vpn, frame_allocator.allocate())
