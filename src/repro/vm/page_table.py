"""GPU and CPU page tables, page ownership and fault classification.

The baseline system (paper Section 2.3) keeps a CPU page table and a GPU page
table, both managed by the CPU driver.  A page can be *owned* by the CPU
(resident in CPU memory), owned by the GPU (resident in GPU memory), or not
backed at all (never touched — lazy allocation has not committed physical
memory yet).  A GPU access to a non-GPU-owned page raises a page fault whose
*class* determines the handling cost:

- ``MIGRATE``: page owned by the CPU and dirty there — data must move.
- ``ALLOC_ONLY``: page known to the CPU but clean/untouched — allocating GPU
  physical memory and mapping suffices (no transfer).
- ``FIRST_TOUCH``: page has no physical backing anywhere (kernel output
  buffers, device-heap pages) — the class use case 2 handles on the GPU.
- ``INVALID``: address outside every mapped segment — kernel abort.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from .pages import page_number


class Owner(enum.Enum):
    NONE = "none"  # no physical backing yet
    CPU = "cpu"  # resident in CPU memory
    GPU = "gpu"  # resident in GPU memory


class FaultClass(enum.Enum):
    MIGRATE = "migrate"  # CPU-dirty page: allocate + transfer
    ALLOC_ONLY = "alloc-only"  # CPU-known but clean: allocate + map
    FIRST_TOUCH = "first-touch"  # never backed: lazy allocation
    INVALID = "invalid"  # outside any segment


@dataclass
class PageTableEntry:
    ppn: int
    writable: bool = True
    dirty: bool = False


class PageTable:
    """A single-level sparse page table (vpn -> PTE)."""

    def __init__(self) -> None:
        self._entries: Dict[int, PageTableEntry] = {}

    def map(self, vpn: int, ppn: int, writable: bool = True) -> None:
        self._entries[vpn] = PageTableEntry(ppn=ppn, writable=writable)

    def unmap(self, vpn: int) -> PageTableEntry:
        return self._entries.pop(vpn)

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        return self._entries.get(vpn)

    def is_mapped(self, vpn: int) -> bool:
        return vpn in self._entries

    def mark_dirty(self, vpn: int) -> None:
        entry = self._entries.get(vpn)
        if entry is not None:
            entry.dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        """Iterate ``(vpn, PageTableEntry)`` pairs (insertion order) — the
        read-only view the invariant sanitizer's frame checks and the
        harness's architectural-state digests use."""
        return self._entries.items()

    def mapped_vpns(self):
        """Sorted list of every mapped virtual page number."""
        return sorted(self._entries)


class SystemPageState:
    """Shared CPU/GPU view of every virtual page: ownership + both tables.

    This is the structure the CPU driver (and, with use case 2, the GPU
    local fault handler) manipulates.  It classifies faults and tracks
    which pages are dirty in CPU memory (requiring a migration rather than
    an allocation-only fault resolution).
    """

    def __init__(self) -> None:
        self.gpu_table = PageTable()
        self.cpu_table = PageTable()
        self._owner: Dict[int, Owner] = {}
        self._cpu_dirty: Dict[int, bool] = {}
        self._valid_vpns: set = set()

    # -- segment registration -------------------------------------------------

    def register_range(
        self,
        base: int,
        size: int,
        owner: Owner,
        cpu_dirty: bool = False,
    ) -> None:
        """Declare [base, base+size) as a valid virtual range.

        ``owner=CPU`` with ``cpu_dirty=True`` models input data written by
        the host (faults will be ``MIGRATE``); ``cpu_dirty=False`` models
        pages the CPU allocated but never wrote (``ALLOC_ONLY`` faults);
        ``owner=NONE`` models output/heap pages (``FIRST_TOUCH`` faults).
        """
        first = page_number(base)
        last = page_number(base + size - 1)
        for vpn in range(first, last + 1):
            self._valid_vpns.add(vpn)
            self._owner[vpn] = owner
            if owner is Owner.CPU:
                self.cpu_table.map(vpn, ppn=vpn)  # identity CPU mapping
                self._cpu_dirty[vpn] = cpu_dirty

    def is_valid(self, vpn: int) -> bool:
        return vpn in self._valid_vpns

    def owner_of(self, vpn: int) -> Owner:
        return self._owner.get(vpn, Owner.NONE)

    # -- fault classification --------------------------------------------------

    def classify_fault(self, vpn: int) -> FaultClass:
        if vpn not in self._valid_vpns:
            return FaultClass.INVALID
        owner = self._owner[vpn]
        if owner is Owner.GPU:
            # Raced with another fault that already resolved this page; the
            # replayed access will hit.  Treat as alloc-only (no work).
            return FaultClass.ALLOC_ONLY
        if owner is Owner.CPU:
            if self._cpu_dirty.get(vpn, False):
                return FaultClass.MIGRATE
            return FaultClass.ALLOC_ONLY
        return FaultClass.FIRST_TOUCH

    # -- resolution ------------------------------------------------------------

    def install_gpu_page(self, vpn: int, ppn: int) -> None:
        """Point of fault resolution: map vpn on the GPU and take ownership."""
        if self._owner.get(vpn) is Owner.CPU:
            self.cpu_table.unmap(vpn)
            self._cpu_dirty.pop(vpn, None)
        self._owner[vpn] = Owner.GPU
        self.gpu_table.map(vpn, ppn)

    def gpu_translate(self, vpn: int) -> Optional[int]:
        entry = self.gpu_table.lookup(vpn)
        return entry.ppn if entry is not None else None
