"""Sparse value memory used by the functional simulator.

Stores word values keyed by byte address.  This is the *contents* of the
unified virtual address space — data is logically identical wherever the
page physically resides, so migration is purely a timing concern and the
functional simulator shares one instance for CPU and GPU.
"""

from __future__ import annotations

from typing import Dict

#: default operand for ``load_many``'s mapped ``dict.get`` (one warp wide,
#: sliced to the lane count; grown on demand for wider requests)
_ZEROS = (0,) * 32


class SparseMemory:
    """Word-granular sparse memory (reads of untouched words return 0.0/0)."""

    def __init__(self) -> None:
        self._words: Dict[int, float] = {}

    def load(self, addr: int, width: int = 4) -> float:
        return self._words.get(addr, 0)

    def store(self, addr: int, value, width: int = 4) -> None:
        self._words[addr] = value

    def load_many(self, addrs, width: int = 4) -> list:
        """Batch :meth:`load`: one call for a warp's worth of lanes.

        ``map`` keeps the per-lane dict lookups in C."""
        n = len(addrs)
        if n <= 32:
            return list(map(self._words.get, addrs, _ZEROS[:n]))
        get = self._words.get
        return [get(a, 0) for a in addrs]

    def store_many(self, addrs, values, width: int = 4) -> None:
        """Batch :meth:`store` for parallel ``addrs``/``values`` sequences.

        ``dict.update`` consumes the zip in C; later duplicates overwrite
        earlier ones exactly like the serial store loop did."""
        self._words.update(zip(addrs, values))

    def atomic(self, addr: int, op: str, value, compare=None):
        """Atomic read-modify-write; returns the old value."""
        old = self._words.get(addr, 0)
        if op == "add":
            self._words[addr] = old + value
        elif op == "max":
            self._words[addr] = max(old, value)
        elif op == "min":
            self._words[addr] = min(old, value)
        elif op == "exch":
            self._words[addr] = value
        elif op == "cas":
            if old == compare:
                self._words[addr] = value
        else:
            raise ValueError(f"unknown atomic op {op!r}")
        return old

    def fill(self, base: int, values, width: int = 4) -> None:
        """Bulk-store ``values`` starting at ``base`` with ``width`` stride."""
        addr = base
        for v in values:
            self._words[addr] = v
            addr += width

    def read_array(self, base: int, count: int, width: int = 4) -> list:
        return [self._words.get(base + i * width, 0) for i in range(count)]

    def touched_words(self) -> int:
        return len(self._words)
