"""Physical page-frame allocator.

A bitmap allocator over the GPU's physical page pool.  The GPU-local fault
handler (use case 2) runs an instance of this allocator *on the GPU*; to keep
CPU- and GPU-side allocations from colliding, the physical address space can
be partitioned (paper Section 4.2: "address space ... partitioning techniques
are used to minimise the contention").
"""

from __future__ import annotations

from typing import List, Optional


class OutOfPhysicalMemory(Exception):
    """Raised when the frame pool is exhausted."""


class FrameAllocator:
    """Bitmap allocator handing out physical page frame numbers."""

    def __init__(self, num_frames: int, first_frame: int = 0) -> None:
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        self.first_frame = first_frame
        self._free: List[bool] = [True] * num_frames
        self._hint = 0
        self._allocated = 0

    @property
    def free_frames(self) -> int:
        return self.num_frames - self._allocated

    def allocate(self) -> int:
        """Allocate one frame; raises :class:`OutOfPhysicalMemory` when full."""
        if self._allocated == self.num_frames:
            raise OutOfPhysicalMemory("no free frames")
        idx = self._hint
        for _ in range(self.num_frames):
            if self._free[idx]:
                self._free[idx] = False
                self._allocated += 1
                self._hint = (idx + 1) % self.num_frames
                return self.first_frame + idx
            idx = (idx + 1) % self.num_frames
        raise OutOfPhysicalMemory("no free frames")  # pragma: no cover

    def allocate_contiguous(self, count: int) -> int:
        """Allocate ``count`` contiguous frames, returning the first one."""
        if count <= 0:
            raise ValueError("count must be positive")
        run = 0
        for idx in range(self.num_frames):
            run = run + 1 if self._free[idx] else 0
            if run == count:
                start = idx - count + 1
                for j in range(start, idx + 1):
                    self._free[j] = False
                self._allocated += count
                return self.first_frame + start
        raise OutOfPhysicalMemory(f"no contiguous run of {count} frames")

    def release(self, frame: int) -> None:
        idx = frame - self.first_frame
        if not 0 <= idx < self.num_frames:
            raise ValueError(f"frame {frame} outside pool")
        if self._free[idx]:
            raise ValueError(f"double free of frame {frame}")
        self._free[idx] = True
        self._allocated -= 1

    def partition(self, parts: int) -> List["FrameAllocator"]:
        """Split the (fully free) pool into ``parts`` disjoint allocators.

        Used to give each SM's local fault handler a private slice of the
        physical address space, avoiding cross-SM contention.
        """
        if self._allocated:
            raise ValueError("cannot partition a pool with live allocations")
        if parts <= 0 or parts > self.num_frames:
            raise ValueError("bad partition count")
        base, rem = divmod(self.num_frames, parts)
        out: List[FrameAllocator] = []
        start = self.first_frame
        for i in range(parts):
            size = base + (1 if i < rem else 0)
            out.append(FrameAllocator(size, first_frame=start))
            start += size
        return out
