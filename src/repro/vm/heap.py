"""Device-side heap allocator (the substrate behind the ``MALLOC`` opcode).

Models a Halloc-style high-throughput GPU allocator: the heap is split into
per-warp arenas so concurrent warps allocate without synchronizing (the
lock-free design of [1] in the paper), each arena serving requests from
size-class slabs with free-lists.  Allocations return *virtual* addresses in
the heap segment; physical backing is committed lazily on first touch, which
is exactly the fault class use case 2 handles locally on the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class HeapExhausted(Exception):
    """Raised when an arena cannot satisfy an allocation."""


_SIZE_CLASSES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def _size_class(size: int) -> int:
    for cls in _SIZE_CLASSES:
        if size <= cls:
            return cls
    # Large allocations are rounded to page multiples.
    page = 4096
    return ((size + page - 1) // page) * page


@dataclass
class _Arena:
    base: int
    size: int
    cursor: int = 0
    free_lists: Dict[int, List[int]] = field(default_factory=dict)
    live: Dict[int, int] = field(default_factory=dict)  # addr -> class


class DeviceHeap:
    """Per-warp-arena bump + free-list allocator over a virtual segment."""

    def __init__(self, base: int, size: int, num_arenas: int) -> None:
        if num_arenas <= 0:
            raise ValueError("need at least one arena")
        if size % num_arenas:
            size -= size % num_arenas
        self.base = base
        self.size = size
        arena_size = size // num_arenas
        self._arenas = [
            _Arena(base=base + i * arena_size, size=arena_size)
            for i in range(num_arenas)
        ]

    @property
    def num_arenas(self) -> int:
        return len(self._arenas)

    def malloc(self, arena_id: int, size: int) -> int:
        """Allocate ``size`` bytes from ``arena_id``'s arena; returns VA."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        arena = self._arenas[arena_id % len(self._arenas)]
        cls = _size_class(size)
        free = arena.free_lists.get(cls)
        if free:
            addr = free.pop()
        else:
            if arena.cursor + cls > arena.size:
                raise HeapExhausted(
                    f"arena {arena_id}: {cls}B request, "
                    f"{arena.size - arena.cursor}B left"
                )
            addr = arena.base + arena.cursor
            arena.cursor += cls
        arena.live[addr] = cls
        return addr

    def free(self, arena_id: int, addr: int) -> None:
        arena = self._arenas[arena_id % len(self._arenas)]
        cls = arena.live.pop(addr, None)
        if cls is None:
            raise ValueError(f"free of unallocated address {addr:#x}")
        arena.free_lists.setdefault(cls, []).append(addr)

    def bytes_live(self) -> int:
        return sum(sum(a.live.values()) for a in self._arenas)

    def bytes_touched(self) -> int:
        """High-water mark of heap bytes ever handed out (drives how many
        heap pages will ever be first-touched)."""
        return sum(a.cursor for a in self._arenas)
