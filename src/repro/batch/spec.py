"""Sweep specifications for the batch campaign backend.

A :class:`SweepSpec` names a *batch*: N configurations of the same
workload that differ only along cheap model axes — pipeline scheme,
fault-latency seed, and fault-latency scale.  The spec is pure data
(hashable, JSON-serializable) so it can cross the campaign runner's
process boundary, key checkpoint hashes, and seed the deterministic
validation sampling of docs/VECTORIZATION.md.

Eligibility for the vectorized backend is decided here
(:func:`classify` on a spec, :func:`classify_cell` on a campaign cell's
``fn``/``kwargs``), deliberately *without* importing numpy, so the
campaign runner can route cells before any engine is loaded.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: paging modes the batch model understands (mirrors the timing engine)
PAGING_MODES = ("premapped", "demand", "demand-output", "demand-heap")

#: schemes with a vectorized cost kernel; anything else (operand-log's
#: sequential log-occupancy walk) is scalar-only by construction
VECTORIZABLE_SCHEMES = (
    "baseline",
    "wd-commit",
    "wd-lastcheck",
    "replay-queue",
)


@dataclass(frozen=True)
class SweepConfig:
    """One point of a sweep: a (scheme, seed, latency-scale) triple.

    ``latency_scale`` is an integer percentage of the model's base
    fault-resolution latency (100 = nominal) so every derived quantity
    stays in exact integer arithmetic across both backends.
    """

    scheme: str
    seed: int
    latency_scale: int

    @property
    def label(self) -> str:
        """The row label this config contributes to the sweep table."""
        return f"{self.scheme}/s{self.seed}/x{self.latency_scale}"


@dataclass(frozen=True)
class SweepSpec:
    """A batch of same-workload configurations (the sweep cross-product).

    Axis order is fixed — scheme-major, then seed, then latency scale —
    so both backends enumerate configurations (and therefore table rows)
    identically.
    """

    workload: str
    schemes: Tuple[str, ...] = VECTORIZABLE_SCHEMES
    seeds: Tuple[int, ...] = (0,)
    latency_scales: Tuple[int, ...] = (100,)
    paging: str = "demand"
    chaos: bool = False

    def __post_init__(self) -> None:
        if self.paging not in PAGING_MODES:
            raise ValueError(
                f"unknown paging mode {self.paging!r}; "
                f"known: {list(PAGING_MODES)}"
            )
        if not (self.schemes and self.seeds and self.latency_scales):
            raise ValueError("every sweep axis needs at least one value")
        if any(int(s) <= 0 for s in self.latency_scales):
            raise ValueError("latency scales are positive integer percent")

    def configs(self) -> List[SweepConfig]:
        """The batch's configurations in canonical (row) order."""
        return [
            SweepConfig(scheme=s, seed=int(seed), latency_scale=int(scale))
            for s in self.schemes
            for seed in self.seeds
            for scale in self.latency_scales
        ]

    def key(self) -> str:
        """Canonical JSON identity (keys the validation sampling)."""
        return json.dumps(
            {
                "workload": self.workload,
                "schemes": list(self.schemes),
                "seeds": [int(s) for s in self.seeds],
                "latency_scales": [int(s) for s in self.latency_scales],
                "paging": self.paging,
                "chaos": bool(self.chaos),
            },
            sort_keys=True,
        )

    def digest(self) -> str:
        """Short content hash of the spec (manifest/log identity)."""
        return hashlib.sha256(self.key().encode()).hexdigest()[:16]


def classify(spec: SweepSpec) -> Tuple[bool, str]:
    """Is this spec eligible for the vectorized backend?

    Returns ``(True, "")`` or ``(False, reason)``.  The rules (documented
    in docs/VECTORIZATION.md) are: no chaos hooks (their latency factors
    are a sequentially-dependent RNG walk) and every scheme must have a
    vectorized cost kernel (operand-log's log-occupancy walk is a
    sequential per-record recurrence).
    """
    if spec.chaos:
        return False, "chaos hooks enabled"
    for scheme in spec.schemes:
        if scheme not in VECTORIZABLE_SCHEMES:
            return False, f"unsupported scheme {scheme!r}"
    return True, ""


def classify_cell(fn, kwargs: Dict) -> Tuple[bool, str]:
    """Eligibility of one campaign cell for the vectorized backend.

    ``fn`` must be a batch sweep cell (marked ``_batch_sweep``, i.e.
    :func:`repro.batch.run_sweep_cell`); its kwargs are then checked with
    the same rules as :func:`classify`.  Anything else — figure
    experiments, chaos soak shards, stream scenarios — reports
    ``(False, reason)`` and keeps the scalar engine.
    """
    if not getattr(fn, "_batch_sweep", False):
        return False, "not a batch sweep cell"
    if kwargs.get("chaos"):
        return False, "chaos hooks enabled"
    for scheme in kwargs.get("schemes", ()):
        if scheme not in VECTORIZABLE_SCHEMES:
            return False, f"unsupported scheme {scheme!r}"
    return True, ""


def rows_digest(labels: Sequence[str], rows: Sequence[Sequence[int]]) -> str:
    """Digest of a sweep's result rows (the equivalence currency).

    Canonical JSON over ``[label, values...]`` pairs, hashed; both
    backends must produce the same digest for the same spec — the
    sampled-validation contract of docs/VECTORIZATION.md spot-checks
    exactly this.
    """
    payload = [[label, list(map(int, row))] for label, row in
               zip(labels, rows)]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]
