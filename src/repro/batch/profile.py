"""Config-independent trace profiles for the batch timing model.

Everything the batch backend needs from a workload that does *not*
depend on the swept axes (scheme, seed, latency scale) is extracted once
per (workload, paging) pair and cached: per-warp instruction-class
counts, the per-warp dynamic class sequences (the scalar reference's
per-record input), the global first-touch fault sites, and the
block/slot structure the makespan fold runs over.

The profile is the expensive part of a sweep — one walk over the full
dynamic trace — which is why it is shared: the scalar backend then pays
one per-record Python loop *per configuration* while the vectorized
backend evaluates all configurations from the counts matrix in a single
numpy program (docs/VECTORIZATION.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

import numpy as np

from repro.timing.decode import decode
from repro.workloads import get_workload

#: instruction classes of the batch model (decode-tuple derived)
CLS_ALU, CLS_SFU, CLS_LOAD, CLS_STORE, CLS_CTRL, CLS_BAR = range(6)
NUM_CLASSES = 6
CLASS_NAMES = ("alu", "sfu", "load", "store", "ctrl", "bar")

#: first-touch faults are tracked at the fault-handling granularity
#: (64KB groups, mirroring repro.vm.pages.FAULT_GRANULARITY_BYTES)
FAULT_GROUP_SHIFT = 16

#: segment kinds that demand-fault under each paging mode — the
#: complement of what repro.system.gpu premaps before launch
FAULTABLE_KINDS = {
    "premapped": frozenset(),
    "demand": frozenset({"input", "output", "inout", "heap", "scratch"}),
    "demand-output": frozenset({"output", "heap"}),
    "demand-heap": frozenset({"heap"}),
}

#: the model's fixed GPU geometry: concurrently resident block slots
#: (SMs x occupancy); blocks are assigned round-robin in launch order
MODEL_SLOTS = 32


@dataclass
class TraceProfile:
    """The config-independent inputs of one (workload, paging) batch.

    ``record_classes`` is the per-warp dynamic class sequence (plain
    Python ints — the scalar reference walks it record by record);
    ``counts`` is the same information folded to a ``(num_warps,
    NUM_CLASSES)`` matrix for the vectorized kernels.  ``site_warp``
    maps each global first-touch fault site to the warp that takes it,
    in trace scan order; ``block_ptr``/``slot_of_block`` describe the
    block structure the makespan fold reduces over.
    """

    workload: str
    paging: str
    num_warps: int
    num_blocks: int
    warps_per_block: int
    slots: int
    record_classes: List[List[int]]
    counts: np.ndarray
    site_warp: np.ndarray
    block_ptr: np.ndarray
    slot_of_block: np.ndarray
    n_records: int

    @property
    def num_fault_sites(self) -> int:
        """Number of first-touch fault sites (identical for every config
        of the batch — the swept axes change fault *cost*, not count)."""
        return int(self.site_warp.shape[0])


def classify_record(dec) -> int:
    """Map one decode tuple to its batch-model instruction class.

    BAR wins over the control class (it has its own sync cost); LD/ST
    unit records split into load (atomics included — they complete like
    loads) and store; remaining control-unit records are ``ctrl``; the
    SFU unit is ``sfu``; everything else is ``alu``.
    """
    if dec[5]:
        return CLS_BAR
    if dec[0] == 2:
        return CLS_STORE if dec[3] else CLS_LOAD
    if dec[4]:
        return CLS_CTRL
    if dec[0] == 1:
        return CLS_SFU
    return CLS_ALU


@lru_cache(maxsize=32)
def build_profile(workload: str, paging: str) -> TraceProfile:
    """Build (and cache) the profile of one (workload, paging) pair.

    One walk over the cached dynamic trace in canonical scan order —
    block-major, then warp, then record, then address — which fixes the
    model's first-touch order: the first faultable access to each 64KB
    fault group (under ``paging``'s premapping rules) charges its warp
    one fault site.
    """
    if paging not in FAULTABLE_KINDS:
        raise ValueError(
            f"unknown paging mode {paging!r}; "
            f"known: {sorted(FAULTABLE_KINDS)}"
        )
    wl = get_workload(workload)
    trace = wl.trace()
    aspace = wl.make_address_space()
    faultable = FAULTABLE_KINDS[paging]

    record_classes: List[List[int]] = []
    count_rows: List[List[int]] = []
    site_warp: List[int] = []
    block_ptr: List[int] = [0]
    seen_groups = set()
    n_records = 0

    for block in trace.blocks:
        for warp in block.warps:
            w = len(record_classes)
            classes: List[int] = []
            counts = [0] * NUM_CLASSES
            for rec in warp.instructions:
                dec = decode(rec.inst)
                cls = classify_record(dec)
                classes.append(cls)
                counts[cls] += 1
                n_records += 1
                if dec[2] and rec.addresses:
                    for addr in rec.addresses:
                        group = addr >> FAULT_GROUP_SHIFT
                        if group in seen_groups:
                            continue
                        seen_groups.add(group)
                        seg = aspace.segment_of(addr)
                        if seg is not None and seg.kind in faultable:
                            site_warp.append(w)
            record_classes.append(classes)
            count_rows.append(counts)
        block_ptr.append(len(record_classes))

    num_warps = len(record_classes)
    num_blocks = len(trace.blocks)
    slots = min(num_blocks, MODEL_SLOTS) or 1
    return TraceProfile(
        workload=workload,
        paging=paging,
        num_warps=num_warps,
        num_blocks=num_blocks,
        warps_per_block=max(1, num_warps // max(1, num_blocks)),
        slots=slots,
        record_classes=record_classes,
        counts=np.asarray(count_rows, dtype=np.int64).reshape(
            num_warps, NUM_CLASSES
        ),
        site_warp=np.asarray(site_warp, dtype=np.int64),
        block_ptr=np.asarray(block_ptr, dtype=np.int64),
        slot_of_block=np.arange(num_blocks, dtype=np.int64) % slots,
        n_records=n_records,
    )
