"""Vectorized batch engine: N configurations as one numpy program.

The sweep's whole configuration axis is evaluated at once: per-warp base
cycles come from each scheme's compiled cost kernel applied to the
shared counts matrix, fault costs are a ``(configs, sites)`` tensor
(scaled latency + seeded jitter + scheme overhead) scatter-added onto
the owning warps, and the warp→block→slot→makespan fold runs as
``maximum.reduceat`` / ``add.at`` / ``max`` reductions along the batch
dimension.  All arithmetic is int64, so the result is bit-identical to
the scalar reference (:mod:`repro.batch.reference`) — and every
vectorized batch proves it on a deterministically sampled subset before
returning (docs/VECTORIZATION.md).

:func:`run_sweep` is the backend dispatcher both the campaign runner and
the CLI use; :func:`run_sweep_cell` is its campaign-cell form (an
importable module-level callable, as the runner's process isolation
requires); :func:`build_sweep_cells` shapes a multi-workload sweep into
campaign cells.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.harness.results import ExperimentTable

from .kernels import (
    LAUNCH_OVERHEAD,
    fault_jitter_array,
    fault_latency,
    scheme_params,
    warp_cost_fn,
)
from .profile import NUM_CLASSES, TraceProfile, build_profile
from .reference import run_config_reference
from .spec import (
    SweepConfig,
    SweepSpec,
    classify,
    rows_digest,
)

#: columns of every sweep table (both backends, identical)
SWEEP_COLUMNS = ["cycles", "fault-stall", "faults"]


class BatchEligibilityError(ValueError):
    """Raised when the vectorized backend is asked to run an ineligible
    spec directly (the campaign runner instead falls back to scalar with
    a logged reason — see docs/VECTORIZATION.md)."""


class BatchValidationError(RuntimeError):
    """Raised when a vectorized batch disagrees with the scalar
    reference on a sampled configuration — the equivalence contract is
    broken and the batch result must not be trusted."""


def sample_indices(spec: SweepSpec, n_configs: int) -> List[int]:
    """The deterministically sampled config indices a batch validates.

    Drawn from the sha256 stream of the spec's canonical key — stable
    across runs and machines, independent of the backend, and covering
    ``max(2, N // 16)`` distinct configurations (all of them for tiny
    batches).
    """
    if n_configs <= 0:
        return []
    want = min(n_configs, max(2, n_configs // 16))
    picked: List[int] = []
    seen = set()
    material = spec.key().encode()
    digest = hashlib.sha256(material).digest()
    while len(picked) < want:
        for i in range(0, len(digest) - 1, 2):
            idx = int.from_bytes(digest[i:i + 2], "big") % n_configs
            if idx not in seen:
                seen.add(idx)
                picked.append(idx)
                if len(picked) == want:
                    break
        digest = hashlib.sha256(digest).digest()
    return sorted(picked)


def _vectorized_rows(
    profile: TraceProfile, configs: Sequence[SweepConfig]
) -> List[List[int]]:
    """Evaluate every configuration of the batch in one numpy program."""
    n = len(configs)
    counts_cols = [profile.counts[:, k] for k in range(NUM_CLASSES)]

    # one compiled kernel evaluation per *distinct* scheme, reused by
    # every configuration that sweeps it
    warp_base: Dict[str, np.ndarray] = {}
    for config in configs:
        if config.scheme not in warp_base:
            fn = warp_cost_fn(config.scheme)
            warp_base[config.scheme] = np.asarray(
                fn(*counts_cols), dtype=np.int64
            )

    # (configs, sites) fault-cost tensor; jitter rows are shared between
    # configurations with the same seed
    sites = profile.num_fault_sites
    jitter: Dict[int, np.ndarray] = {}
    for config in configs:
        if config.seed not in jitter:
            jitter[config.seed] = fault_jitter_array(config.seed, sites)
    flat = np.array(
        [
            fault_latency(c.latency_scale)
            + scheme_params(c.scheme)[1]["fault_overhead"]
            for c in configs
        ],
        dtype=np.int64,
    )
    site_cost = (
        np.stack([jitter[c.seed] for c in configs])
        if sites
        else np.zeros((n, 0), dtype=np.int64)
    ) + flat[:, None]
    fault_stall = site_cost.sum(axis=1, dtype=np.int64)

    warp_fault = np.zeros((n, profile.num_warps), dtype=np.int64)
    if sites:
        np.add.at(
            warp_fault,
            (np.arange(n)[:, None], profile.site_warp[None, :]),
            site_cost,
        )
    warp_total = (
        np.stack([warp_base[c.scheme] for c in configs]) + warp_fault
    )

    block_cycles = np.maximum.reduceat(
        warp_total, profile.block_ptr[:-1], axis=1
    )
    slot_time = np.zeros((n, profile.slots), dtype=np.int64)
    np.add.at(
        slot_time,
        (np.arange(n)[:, None], profile.slot_of_block[None, :]),
        block_cycles,
    )
    cycles = slot_time.max(axis=1) + LAUNCH_OVERHEAD
    return [
        [int(cycles[i]), int(fault_stall[i]), sites] for i in range(n)
    ]


def _validate_sampled(
    spec: SweepSpec,
    profile: TraceProfile,
    configs: Sequence[SweepConfig],
    rows: Sequence[List[int]],
    echo: Optional[Callable[[str], None]],
) -> int:
    """Prove the batch against the scalar reference on the sampled
    subset; raises :class:`BatchValidationError` on any mismatch."""
    indices = sample_indices(spec, len(configs))
    for i in indices:
        expected = run_config_reference(profile, configs[i])
        if list(rows[i]) != expected:
            raise BatchValidationError(
                f"vectorized batch diverged from the scalar reference on "
                f"{configs[i].label}: {list(rows[i])} != {expected} "
                f"(spec {spec.digest()})"
            )
    if echo is not None:
        echo(
            f"[batch] {spec.workload}: validated {len(indices)}/"
            f"{len(configs)} sampled configs against the scalar reference"
        )
    return len(indices)


def run_sweep(
    workload: str,
    schemes: Sequence[str] = ("baseline", "wd-commit", "wd-lastcheck",
                              "replay-queue"),
    seeds: Sequence[int] = (0,),
    latency_scales: Sequence[int] = (100,),
    paging: str = "demand",
    chaos: bool = False,
    backend: str = "scalar",
    validate: bool = True,
    echo: Optional[Callable[[str], None]] = None,
) -> ExperimentTable:
    """Run one batch sweep and return its table.

    ``backend="scalar"`` evaluates every configuration through the
    reference implementation; ``backend="vectorized"`` evaluates the
    whole batch as one numpy program and (unless ``validate=False``)
    proves a sampled subset against the reference.  The returned table —
    rows, columns, notes, digest — is bit-identical across backends; an
    ineligible spec under the vectorized backend raises
    :class:`BatchEligibilityError` (the campaign runner catches
    eligibility *before* dispatch and falls back instead).
    """
    if backend not in ("scalar", "vectorized"):
        raise ValueError(f"unknown backend {backend!r}")
    spec = SweepSpec(
        workload=workload,
        schemes=tuple(schemes),
        seeds=tuple(int(s) for s in seeds),
        latency_scales=tuple(int(s) for s in latency_scales),
        paging=paging,
        chaos=bool(chaos),
    )
    if backend == "vectorized":
        ok, reason = classify(spec)
        if not ok:
            raise BatchEligibilityError(reason)
    profile = build_profile(spec.workload, spec.paging)
    configs = spec.configs()
    if backend == "vectorized":
        rows = _vectorized_rows(profile, configs)
        if validate:
            _validate_sampled(spec, profile, configs, rows, echo)
    else:
        rows = [
            run_config_reference(profile, c, chaos=spec.chaos)
            for c in configs
        ]
    labels = [c.label for c in configs]
    table = ExperimentTable(
        name=f"sweep-{spec.workload}",
        description=(
            f"batch model sweep of {spec.workload} ({spec.paging}): "
            f"{len(spec.schemes)} schemes x {len(spec.seeds)} seeds x "
            f"{len(spec.latency_scales)} latency scales"
        ),
        columns=list(SWEEP_COLUMNS),
        show_geomean=False,
    )
    for label, row in zip(labels, rows):
        table.add_row(label, row)
    table.notes.append(
        f"rows digest {rows_digest(labels, rows)}; "
        f"{len(configs)} configs, {profile.num_fault_sites} first-touch "
        f"fault sites"
    )
    return table


def run_sweep_cell(
    workload: str,
    schemes=None,
    seeds=None,
    latency_scales=None,
    paging: str = "demand",
    chaos: bool = False,
    backend: str = "scalar",
    validate: bool = True,
) -> ExperimentTable:
    """Campaign-cell form of :func:`run_sweep`.

    Module-level and JSON-kwargs only, as the campaign runner's process
    isolation requires.  The ``_batch_sweep`` marker below is what
    :func:`repro.batch.spec.classify_cell` keys on when the runner
    decides whether a cell may take the vectorized fast path.
    """
    return run_sweep(
        workload=workload,
        schemes=tuple(schemes) if schemes else
        ("baseline", "wd-commit", "wd-lastcheck", "replay-queue"),
        seeds=tuple(seeds) if seeds else (0,),
        latency_scales=tuple(latency_scales) if latency_scales else (100,),
        paging=paging,
        chaos=chaos,
        backend=backend,
        validate=validate,
    )


run_sweep_cell._batch_sweep = True


def build_sweep_cells(
    workloads: Sequence[str],
    schemes: Sequence[str],
    seeds: Sequence[int],
    latency_scales: Sequence[int],
    paging: str = "demand",
    chaos: bool = False,
):
    """One campaign cell per workload over the shared sweep axes.

    Each workload gets its own group (``sweep-<workload>``) so tables
    never merge across workloads; row labels inside a group are the
    config labels, which the spec's canonical axis order keeps unique.
    """
    from repro.harness.runner import CampaignCell

    cells = []
    for wl in workloads:
        cells.append(
            CampaignCell(
                key=f"sweep/{wl}",
                fn=run_sweep_cell,
                kwargs={
                    "workload": wl,
                    "schemes": list(schemes),
                    "seeds": [int(s) for s in seeds],
                    "latency_scales": [int(s) for s in latency_scales],
                    "paging": paging,
                    "chaos": bool(chaos),
                },
                group=f"sweep-{wl}",
            )
        )
    return cells
