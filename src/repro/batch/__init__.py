"""Vectorized campaign backend: batch N configurations of one workload.

A sweep over schemes, seeds and fault-latency scales of the *same*
workload shares almost all of its work — the dynamic trace, the
instruction-class profile, the first-touch fault sites.  This package
exploits that: a config-independent :class:`TraceProfile` is built once
per (workload, paging) pair, per-scheme cost kernels are derived
symbolically and compiled once (``kernels``), and the whole
configuration axis is then evaluated either one config at a time through
the readable scalar reference (``reference`` — the executable spec) or
as one int64 numpy program (``engine`` — the fast path, validated
against the reference on a sampled subset of every batch).

The campaign runner dispatches eligible cells here under
``--backend vectorized`` and falls back to the scalar engine with a
logged reason otherwise.  docs/VECTORIZATION.md documents the batching
model, the eligibility rules, the equivalence-validation contract and
how to add a scheme kernel; docs/PERFORMANCE.md records the measured
campaign throughput (BENCH_campaign.json).
"""

from .engine import (
    SWEEP_COLUMNS,
    BatchEligibilityError,
    BatchValidationError,
    build_sweep_cells,
    run_sweep,
    run_sweep_cell,
    sample_indices,
)
from .kernels import cost_vector, fault_jitter, fault_latency, warp_cost_fn
from .profile import CLASS_NAMES, TraceProfile, build_profile
from .reference import run_config_reference
from .spec import (
    PAGING_MODES,
    VECTORIZABLE_SCHEMES,
    SweepConfig,
    SweepSpec,
    classify,
    classify_cell,
    rows_digest,
)

__all__ = [
    "BatchEligibilityError",
    "BatchValidationError",
    "CLASS_NAMES",
    "PAGING_MODES",
    "SWEEP_COLUMNS",
    "SweepConfig",
    "SweepSpec",
    "TraceProfile",
    "VECTORIZABLE_SCHEMES",
    "build_profile",
    "build_sweep_cells",
    "classify",
    "classify_cell",
    "cost_vector",
    "fault_jitter",
    "fault_latency",
    "rows_digest",
    "run_config_reference",
    "run_sweep",
    "run_sweep_cell",
    "sample_indices",
    "warp_cost_fn",
]
