"""Per-scheme cost kernels: derived symbolically, compiled once, cached.

The batch timing model charges every dynamic record an integer issue
cost that depends only on its instruction class and the pipeline scheme
(base cost + the scheme's write-back/commit window on memory classes),
plus a per-fault term (scaled base latency + seeded jitter + the
scheme's squash/replay overhead).  This module owns those numbers and
the two compiled forms both backends share:

- :func:`cost_vector` — the per-class integer costs of one scheme,
  derived by substituting the scheme's parameters into the symbolic
  per-class cost expressions (sympy when available, an identical plain
  evaluation otherwise);
- :func:`warp_cost_fn` — the per-warp base-cycles polynomial
  ``sum_k n_k * c_k`` expanded symbolically and lambdified to a numpy
  callable, built once per scheme behind ``lru_cache`` and evaluated
  over whole count-matrix columns by the vectorized engine.

Everything is exact integer arithmetic: the scalar reference adds the
same constants record by record, so the two backends agree bit for bit
(docs/VECTORIZATION.md has the full contract, including how to add a
scheme kernel).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Tuple

import numpy as np

try:  # sympy is optional: the fallback evaluates the same expressions
    import sympy as _sym

    _HAVE_SYMPY = True
except ImportError:  # pragma: no cover - toolchain always ships sympy
    _HAVE_SYMPY = False

from .profile import CLS_LOAD, CLS_STORE, NUM_CLASSES

#: base issue cost per instruction class (alu, sfu, load, store, ctrl, bar)
BASE_ISSUE_COST = (1, 4, 8, 6, 2, 12)

#: per-scheme model parameters.  ``load_window``/``store_window`` are the
#: extra cycles the scheme holds a memory instruction (its exception
#: window: full write-back buffering for wd-commit, the last-TLB-check
#: shortcut for wd-lastcheck, a replay-queue scoreboard hold);
#: ``fault_overhead`` is the squash/replay cost charged per fault on top
#: of the resolution latency.  Adding a scheme = adding a row here (and,
#: for vectorized support, listing it in spec.VECTORIZABLE_SCHEMES).
SCHEME_PARAMS: Dict[str, Dict[str, int]] = {
    "baseline": {"load_window": 0, "store_window": 0, "fault_overhead": 25},
    "wd-commit": {"load_window": 6, "store_window": 4, "fault_overhead": 12},
    "wd-lastcheck": {"load_window": 2, "store_window": 1,
                     "fault_overhead": 6},
    "replay-queue": {"load_window": 1, "store_window": 0,
                     "fault_overhead": 2},
    "operand-log": {"load_window": 1, "store_window": 2,
                    "fault_overhead": 4},
}

#: nominal fault-resolution latency in model cycles (latency_scale=100)
BASE_FAULT_LATENCY = 2000

#: seeded per-site jitter is drawn uniformly from [0, JITTER_SPAN)
JITTER_SPAN = 64

#: fixed launch overhead added to every makespan
LAUNCH_OVERHEAD = 100

#: operand-log scalar-only model: per-entry bytes mirror
#: repro.core.schemes' LOAD_LOG_BYTES/STORE_LOG_BYTES; entries retire
#: OPERAND_LOG_WINDOW records after allocation, and a full log drains at
#: a fixed stall cost
OPERAND_LOG_DEFAULT_KB = 16
OPERAND_LOG_LOAD_BYTES = 256
OPERAND_LOG_STORE_BYTES = 512
OPERAND_LOG_WINDOW = 8
OPERAND_LOG_STALL = 20

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_A = 0xFF51AFD7ED558CCD
_MIX_B = 0xC4CEB9FE1A85EC53


def scheme_params(scheme: str) -> Tuple[str, Dict[str, int], int]:
    """Resolve a scheme name to ``(family, params, log_kb)``.

    ``operand-log-<N>kb`` variants share the ``operand-log`` family with
    their capacity parsed from the name; other schemes return their own
    name and ``log_kb=0``.  Unknown schemes raise ``KeyError``.
    """
    if scheme.startswith("operand-log"):
        suffix = scheme[len("operand-log"):]
        kb = OPERAND_LOG_DEFAULT_KB
        if suffix.startswith("-") and suffix.endswith("kb"):
            kb = int(suffix[1:-2])
        return "operand-log", SCHEME_PARAMS["operand-log"], kb
    if scheme not in SCHEME_PARAMS:
        raise KeyError(
            f"unknown scheme {scheme!r}; known: {sorted(SCHEME_PARAMS)}"
        )
    return scheme, SCHEME_PARAMS[scheme], 0


@lru_cache(maxsize=None)
def cost_vector(scheme: str) -> Tuple[int, ...]:
    """The per-class integer issue costs of ``scheme``.

    Derived from the symbolic per-class expressions ``c_k = b_k + w_k``
    (base cost plus the scheme's window on the load/store classes) by
    substituting the scheme's parameters — through sympy when available
    so the derivation is the documented single source of truth, with a
    bit-identical plain evaluation otherwise.
    """
    _family, params, _kb = scheme_params(scheme)
    windows = [0] * NUM_CLASSES
    windows[CLS_LOAD] = params["load_window"]
    windows[CLS_STORE] = params["store_window"]
    if _HAVE_SYMPY:
        base = _sym.symbols(f"b0:{NUM_CLASSES}")
        win = _sym.symbols(f"w0:{NUM_CLASSES}")
        subs = {b: v for b, v in zip(base, BASE_ISSUE_COST)}
        subs.update({w: v for w, v in zip(win, windows)})
        return tuple(
            int(_sym.expand(b + w).subs(subs)) for b, w in zip(base, win)
        )
    return tuple(
        b + w for b, w in zip(BASE_ISSUE_COST, windows)
    )


@lru_cache(maxsize=None)
def warp_cost_fn(scheme: str) -> Callable:
    """The compiled per-warp base-cycles kernel of ``scheme``.

    Builds the symbolic polynomial ``sum_k n_k * c_k`` over the class
    counts, expands it, and lambdifies it to a numpy callable — compiled
    once per scheme and cached, then evaluated over the whole
    ``(num_warps, NUM_CLASSES)`` counts matrix of every batch that uses
    the scheme.  Integer coefficients over int64 columns keep the result
    exact.
    """
    costs = cost_vector(scheme)
    if _HAVE_SYMPY:
        counts = _sym.symbols(f"n0:{NUM_CLASSES}")
        poly = _sym.expand(
            sum(c * n for c, n in zip(costs, counts))
        )
        return _sym.lambdify(counts, poly, modules="numpy")
    return lambda *ns: sum(c * n for c, n in zip(costs, ns))


def fault_latency(latency_scale: int) -> int:
    """Scaled fault-resolution latency (integer floor division)."""
    return (BASE_FAULT_LATENCY * int(latency_scale)) // 100


def _mix64(z: int) -> int:
    """The 64-bit finalizer both jitter implementations share."""
    z &= _MASK64
    z = ((z ^ (z >> 33)) * _MIX_A) & _MASK64
    z = ((z ^ (z >> 33)) * _MIX_B) & _MASK64
    return z ^ (z >> 33)


def fault_jitter(seed: int, site: int) -> int:
    """Seeded jitter of one fault site (scalar reference form).

    A splitmix-style hash of (seed, site) reduced mod
    :data:`JITTER_SPAN`; pure function of its arguments, so the
    vectorized form can reproduce it exactly.
    """
    return _mix64(((seed & _MASK64) * _GOLDEN + site + 1) & _MASK64) \
        % JITTER_SPAN


def fault_jitter_array(seed: int, n: int) -> np.ndarray:
    """Jitter of sites ``0..n-1`` as one int64 vector.

    The same splitmix finalizer as :func:`fault_jitter`, computed in
    wrapping uint64 array arithmetic — bit-identical to the scalar form
    for every (seed, site).
    """
    base = ((seed & _MASK64) * _GOLDEN) & _MASK64
    with np.errstate(over="ignore"):
        z = np.full(n, base, dtype=np.uint64) + np.arange(
            1, n + 1, dtype=np.uint64
        )
        z ^= z >> np.uint64(33)
        z *= np.uint64(_MIX_A)
        z ^= z >> np.uint64(33)
        z *= np.uint64(_MIX_B)
        z ^= z >> np.uint64(33)
    return (z % np.uint64(JITTER_SPAN)).astype(np.int64)


def chaos_factors(seed: int, n: int) -> List[int]:
    """Per-site chaos latency multipliers (scalar-only by design).

    The factor of site ``i`` depends on the *hash-chain state after site
    ``i-1``* — a sequentially-dependent RNG walk that cannot be expressed
    as a per-site pure function, which is exactly why chaos batches are
    ineligible for the vectorized backend (docs/VECTORIZATION.md).
    """
    z = _mix64(seed ^ _GOLDEN)
    factors = []
    for site in range(n):
        z = _mix64(z + site + 1)
        factors.append(1 + (z % 3))
    return factors


def operand_log_stalls(classes, log_kb: int, warps_per_block: int) -> int:
    """Operand-log stall cycles of one warp (scalar-only model).

    Walks the warp's record sequence keeping the running log occupancy:
    loads/stores allocate entries that retire :data:`OPERAND_LOG_WINDOW`
    records later; when an allocation would overflow the warp's share of
    the log, the warp stalls :data:`OPERAND_LOG_STALL` cycles while the
    log drains.  The running occupancy is a per-record recurrence —
    the reason operand-log schemes stay on the scalar backend.
    """
    capacity = max(
        OPERAND_LOG_STORE_BYTES,
        (log_kb * 1024) // max(1, warps_per_block),
    )
    occupancy = 0
    stalls = 0
    pending: List[Tuple[int, int]] = []
    head = 0
    for i, cls in enumerate(classes):
        while head < len(pending) and pending[head][0] <= i:
            occupancy -= pending[head][1]
            head += 1
        if cls == CLS_LOAD:
            nbytes = OPERAND_LOG_LOAD_BYTES
        elif cls == CLS_STORE:
            nbytes = OPERAND_LOG_STORE_BYTES
        else:
            continue
        if occupancy + nbytes > capacity:
            stalls += OPERAND_LOG_STALL
            occupancy = 0
            pending = []
            head = 0
        occupancy += nbytes
        pending.append((i + OPERAND_LOG_WINDOW, nbytes))
    return stalls
