"""Scalar reference backend: the executable spec of the batch model.

One configuration at a time, record by record, in plain Python integers
— deliberately the *readable* implementation.  The vectorized engine
(:mod:`repro.batch.engine`) must reproduce these integers bit for bit;
every vectorized batch re-runs a sampled subset of its configurations
through this module and compares exactly (the same fast-path-vs-
executable-spec pattern the issue stage uses for its reference scan,
docs/PERFORMANCE.md).

This backend also carries the model features that are *inherently*
sequential and therefore scalar-only: operand-log occupancy walks and
chaos latency chains (docs/VECTORIZATION.md, "Eligibility").
"""

from __future__ import annotations

from typing import List

from .kernels import (
    LAUNCH_OVERHEAD,
    chaos_factors,
    cost_vector,
    fault_jitter,
    fault_latency,
    operand_log_stalls,
    scheme_params,
)
from .profile import TraceProfile
from .spec import SweepConfig


def run_config_reference(
    profile: TraceProfile, config: SweepConfig, chaos: bool = False
) -> List[int]:
    """Evaluate one configuration of the batch model, scalar form.

    Per warp: walk the dynamic class sequence accumulating the scheme's
    per-record issue costs (plus, for operand-log schemes, the log
    occupancy stall walk).  Per fault site: charge the owning warp the
    scaled resolution latency, the seeded jitter, and the scheme's
    squash/replay overhead (chaos multiplies in its sequential latency
    factor).  Fold warps to blocks (max), blocks to resident slots
    (round-robin sum), slots to the makespan (max + launch overhead).

    Returns the row ``[cycles, fault_stall, faults]`` as exact ints.
    """
    family, params, log_kb = scheme_params(config.scheme)
    costs = cost_vector(config.scheme)

    warp_total: List[int] = []
    for classes in profile.record_classes:
        total = 0
        for cls in classes:
            total += costs[cls]
        if family == "operand-log":
            total += operand_log_stalls(
                classes, log_kb, profile.warps_per_block
            )
        warp_total.append(total)

    latency = fault_latency(config.latency_scale)
    overhead = params["fault_overhead"]
    factors = (
        chaos_factors(config.seed, profile.num_fault_sites)
        if chaos
        else None
    )
    fault_stall = 0
    for site, warp in enumerate(profile.site_warp.tolist()):
        cost = latency + fault_jitter(config.seed, site) + overhead
        if factors is not None:
            cost *= factors[site]
        warp_total[warp] += cost
        fault_stall += cost

    ptr = profile.block_ptr.tolist()
    slot_time = [0] * profile.slots
    for block, slot in enumerate(profile.slot_of_block.tolist()):
        block_cycles = max(warp_total[ptr[block]:ptr[block + 1]])
        slot_time[slot] += block_cycles
    cycles = max(slot_time) + LAUNCH_OVERHEAD
    return [cycles, fault_stall, profile.num_fault_sites]
