"""Telemetry: structured event tracing + hierarchical counters.

The observability layer of the simulator (see docs/OBSERVABILITY.md).  One
:class:`Telemetry` object per simulated run bundles

- a :class:`~repro.telemetry.events.RingBufferTracer` recording typed
  micro-architectural events (issue/commit/squash/replay, TLB hit/miss,
  fault raise/resolve, block switch in/out) exportable as a Chrome
  ``trace_event`` JSON that opens in ``chrome://tracing`` / Perfetto, and
- a :class:`~repro.telemetry.counters.CounterRegistry` of hierarchical
  counters (``gpu.sm[i].warp_stall.fault``, ``gpu.tlb.l2.miss``, ...)
  sampled at a fixed cycle interval into time series.

Zero overhead when disabled: every instrumented component stores ``None``
instead of a disabled Telemetry at construction time, so the hot paths
pay exactly one pointer comparison (usually hoisted out of loops) and the
simulator's timing results are bit-identical with telemetry on or off.

Usage::

    from repro.telemetry import Telemetry
    tel = Telemetry()
    sim = GpuSimulator(..., telemetry=tel)
    sim.run()
    tel.write("traces/run")        # run.trace.json + run.counters.json
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from . import events as ev
from .compare import CounterDiff, diff_counters, diff_files
from .counters import Counter, CounterRegistry, merge_dumps, rollup_flat
from .events import ALL_EVENT_NAMES, RingBufferTracer

#: default counter-sampling period (cycles)
DEFAULT_SAMPLE_INTERVAL = 1000.0


class Telemetry:
    """Per-run telemetry hub: one tracer + one counter registry.

    Components receive this object at construction; a disabled instance
    (``Telemetry(enabled=False)``) is equivalent to passing ``None`` —
    instrumented code must not hold a reference to it.
    """

    def __init__(
        self,
        enabled: bool = True,
        capacity: int = 1 << 16,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
    ) -> None:
        self.enabled = enabled
        self.sample_interval = sample_interval
        self.tracer = RingBufferTracer(capacity)
        self.counters = CounterRegistry()

    def __bool__(self) -> bool:
        """Truthiness == enabled, so ``tel or None`` gates instrumentation."""
        return self.enabled

    # ------------------------------------------------------------------

    def sample(self, now: float) -> None:
        """Record one timestamped snapshot of every counter/gauge."""
        self.counters.sample(now)

    def annotate(self, **metadata) -> None:
        """Attach run metadata (scheme, workload, config) to both outputs."""
        self.counters.metadata.update(metadata)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def chrome_trace(self) -> Dict:
        """The Chrome ``trace_event`` dict for this run."""
        return self.tracer.to_chrome(metadata=self.counters.metadata)

    def counter_dump(self) -> Dict:
        """The counter dump (flat values, rollup tree, sampled series)."""
        return self.counters.to_dict()

    def write(self, stem: str) -> Dict[str, str]:
        """Write ``<stem>.trace.json`` and ``<stem>.counters.json``
        (creating parent directories); returns
        ``{"trace": path, "counters": path}``."""
        parent = os.path.dirname(stem)
        if parent:
            os.makedirs(parent, exist_ok=True)
        return {
            "trace": self.tracer.write_chrome(
                f"{stem}.trace.json", metadata=self.counters.metadata
            ),
            "counters": self.counters.write_json(f"{stem}.counters.json"),
        }

    def summary(self) -> Dict:
        """Small printable digest: event histogram + headline counters."""
        return {
            "events": self.tracer.names(),
            "events_recorded": self.tracer.recorded,
            "events_dropped": self.tracer.dropped,
            "counters": len(self.counters.paths()),
            "samples": len(self.counters.samples),
        }


def active(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Normalize a constructor argument: an enabled Telemetry passes
    through, ``None`` or a disabled one becomes ``None`` (so hot paths
    need only an ``is not None`` check)."""
    return telemetry if telemetry is not None and telemetry.enabled else None


__all__ = [
    "ALL_EVENT_NAMES",
    "Counter",
    "CounterDiff",
    "CounterRegistry",
    "DEFAULT_SAMPLE_INTERVAL",
    "RingBufferTracer",
    "Telemetry",
    "active",
    "diff_counters",
    "diff_files",
    "ev",
    "merge_dumps",
    "rollup_flat",
]
