"""Counter-diff utility for two telemetry counter dumps.

A traced run writes ``<stem>.counters.json`` (see
:mod:`repro.harness.tracing` and docs/OBSERVABILITY.md); this module diffs
the flat ``counters`` section of two such dumps — the fastest way to answer
"what changed between these two runs?" after a scheme tweak, a config bump
or a chaos campaign (docs/ROBUSTNESS.md).

Programmatic use::

    from repro.telemetry.compare import diff_files
    diff = diff_files("a.counters.json", "b.counters.json")
    for entry in diff.changed:
        print(entry.path, entry.a, entry.b)

CLI use (exit code 0 when the selected counters match, 1 otherwise)::

    python -m repro.telemetry.compare a.counters.json b.counters.json
    python -m repro.telemetry.compare a.json b.json --pattern 'gpu.tlb.*'
    python -m repro.telemetry.compare a.json b.json --threshold 1.5
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .counters import _match


@dataclass
class DiffEntry:
    """One counter path whose value differs between the two dumps."""

    path: str
    a: Optional[float]  #: value in the first dump (None = absent)
    b: Optional[float]  #: value in the second dump (None = absent)

    @property
    def delta(self) -> float:
        """Signed change ``b - a`` (absent values count as 0)."""
        return (self.b or 0.0) - (self.a or 0.0)

    @property
    def pct(self) -> Optional[float]:
        """Relative change in percent, or ``None`` when ``a`` is 0/absent."""
        if not self.a:
            return None
        return 100.0 * self.delta / self.a


@dataclass
class CounterDiff:
    """Structured result of diffing two counter dumps."""

    changed: List[DiffEntry] = field(default_factory=list)
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)
    compared: int = 0  #: number of counter paths examined

    @property
    def clean(self) -> bool:
        """True when nothing differs (the CLI's exit-0 condition)."""
        return not self.changed and not self.only_a and not self.only_b

    def render(self, label_a: str = "a", label_b: str = "b") -> str:
        """Human-readable report (what the CLI prints)."""
        if self.clean:
            return f"{self.compared} counters compared: identical"
        lines = [
            f"{self.compared} counters compared: "
            f"{len(self.changed)} changed, "
            f"{len(self.only_a)} only in {label_a}, "
            f"{len(self.only_b)} only in {label_b}",
        ]
        for e in self.changed:
            pct = f" ({e.pct:+.2f}%)" if e.pct is not None else ""
            lines.append(f"  {e.path:<48} {e.a:g} -> {e.b:g}{pct}")
        for p in self.only_a:
            lines.append(f"  {p:<48} only in {label_a}")
        for p in self.only_b:
            lines.append(f"  {p:<48} only in {label_b}")
        return "\n".join(lines)


def diff_counters(
    a: Dict[str, float],
    b: Dict[str, float],
    pattern: Optional[str] = None,
    threshold_pct: float = 0.0,
) -> CounterDiff:
    """Diff two flat ``{path: value}`` counter maps.

    ``pattern`` restricts the comparison to glob-matching paths (the
    convention of :mod:`repro.telemetry.counters`, where ``[`` / ``]`` are
    literal index brackets).  ``threshold_pct`` suppresses changes whose
    relative magnitude is at or below the given percentage — absolute
    changes from zero always count, since they have no relative size.
    """
    keep = (
        (lambda p: _match(p, pattern)) if pattern is not None else
        (lambda p: True)
    )
    paths_a = {p for p in a if keep(p)}
    paths_b = {p for p in b if keep(p)}
    diff = CounterDiff(compared=len(paths_a | paths_b))
    for path in sorted(paths_a & paths_b):
        va, vb = a[path], b[path]
        if va == vb:
            continue
        entry = DiffEntry(path, va, vb)
        pct = entry.pct
        if pct is not None and abs(pct) <= threshold_pct:
            continue
        diff.changed.append(entry)
    diff.only_a = sorted(paths_a - paths_b)
    diff.only_b = sorted(paths_b - paths_a)
    return diff


def load_counters(path: str) -> Dict[str, float]:
    """Read the flat ``counters`` section from a ``.counters.json`` dump.

    Accepts either the full :meth:`CounterRegistry.to_dict` layout or a
    bare ``{path: value}`` map (handy in tests).
    """
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict) and isinstance(data.get("counters"), dict):
        return data["counters"]
    if isinstance(data, dict):
        return data
    raise ValueError(f"{path}: not a counter dump")


def diff_files(
    path_a: str,
    path_b: str,
    pattern: Optional[str] = None,
    threshold_pct: float = 0.0,
) -> CounterDiff:
    """:func:`diff_counters` over two ``.counters.json`` files."""
    return diff_counters(
        load_counters(path_a),
        load_counters(path_b),
        pattern=pattern,
        threshold_pct=threshold_pct,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: print the diff report, return the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.compare",
        description=(
            "Diff the counters of two telemetry dumps "
            "(<stem>.counters.json files written by "
            "'python -m repro.harness trace'). Exits 0 when the selected "
            "counters are identical, 1 when anything differs."
        ),
    )
    parser.add_argument("a", help="first counters.json file")
    parser.add_argument("b", help="second counters.json file")
    parser.add_argument(
        "--pattern",
        default=None,
        metavar="GLOB",
        help="only compare paths matching this glob "
        "(e.g. 'gpu.tlb.*' or 'gpu.sm[*].warp_stall.*')",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        metavar="PCT",
        help="ignore relative changes of at most PCT percent "
        "(changes from zero always count)",
    )
    args = parser.parse_args(argv)
    diff = diff_files(
        args.a, args.b, pattern=args.pattern, threshold_pct=args.threshold
    )
    print(diff.render(label_a=args.a, label_b=args.b))
    return 0 if diff.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
