"""Hierarchical counter registry with per-interval sampling.

Counters are named by dot-separated paths following the convention
``gpu.<unit>[<index>].<group>.<leaf>`` — e.g. ``gpu.sm[3].warp_stall.fault``
or ``gpu.tlb.l2.miss`` (see docs/OBSERVABILITY.md for the full taxonomy).
Two kinds of metrics share one namespace:

``Counter``
    a mutable integer incremented on the simulator's hot paths (only when
    telemetry is enabled, so disabled runs pay nothing);
``gauge``
    a zero-overhead binding to an existing stats field — a callable read
    lazily at snapshot/sample time, so instrumenting a hot structure costs
    the hot path nothing at all.

``sample(now)`` appends a timestamped snapshot of every metric, giving a
time series (``series(path)``) suitable for plotting stall or miss rates
over the run.  ``rollup()`` folds the flat namespace into a nested tree
whose interior nodes carry subtree sums, and ``aggregate(pattern)`` sums a
glob over paths (``gpu.sm[*].warp_stall.fault``).

:func:`merge_dumps` combines the JSON dumps of several registries (the
shards of a parallel campaign) into one aggregated dump — values summed
per path, rollup recomputed — deterministically in the order given.
"""

from __future__ import annotations

import json
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def _match(path: str, pattern: str) -> bool:
    """Glob match where ``[``/``]`` are literal (they are index brackets in
    the counter naming convention, not character classes), so
    ``gpu.sm[*].warp_stall.fault`` matches every SM's fault-stall counter."""
    return fnmatchcase(path, pattern.replace("[", "[[]"))


def rollup_flat(flat: Dict[str, float]) -> Dict:
    """Fold a flat ``{path: value}`` mapping into the nested rollup tree
    (interior nodes carry subtree sums in ``_total``) — the pure function
    behind :meth:`CounterRegistry.rollup`, reused when merging dumps."""
    tree: Dict = {}
    for path, value in flat.items():
        parts = path.split(".")
        node = tree
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            node["_total"] = node.get("_total", 0) + value
        node[parts[-1]] = value
    return tree


def merge_dumps(dumps: Sequence[Dict]) -> Dict:
    """Deterministically merge counter dumps (:meth:`CounterRegistry.to_dict`
    format): counter values are **summed** per path, metadata keys merge
    first-writer-wins (plus a ``merged_dumps`` count), samples concatenate
    in the order given — so the caller controls merge order (the campaign
    runner fixes it by cell key, never completion order) and two merges of
    the same dumps are identical.  The rollup tree is recomputed from the
    summed values."""
    counters: Dict[str, float] = {}
    metadata: Dict[str, object] = {}
    samples: List[Dict] = []
    for dump in dumps:
        for path, value in dump.get("counters", {}).items():
            counters[path] = counters.get(path, 0) + value
        for key, value in dump.get("metadata", {}).items():
            metadata.setdefault(key, value)
        samples.extend(dump.get("samples", []))
    metadata["merged_dumps"] = len(dumps)
    ordered = dict(sorted(counters.items()))
    return {
        "metadata": metadata,
        "counters": ordered,
        "rollup": rollup_flat(ordered),
        "samples": samples,
    }


class Counter:
    """One mutable integer metric, registered under a hierarchical path."""

    __slots__ = ("path", "value")

    def __init__(self, path: str) -> None:
        self.path = path
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (the only hot-path operation)."""
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.path}={self.value}>"


class CounterRegistry:
    """Flat path -> metric registry with hierarchical views and sampling."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        self.samples: List[Tuple[float, Dict[str, float]]] = []
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def counter(self, path: str) -> Counter:
        """Get (or create) the mutable counter registered at ``path``."""
        ctr = self._counters.get(path)
        if ctr is None:
            if path in self._gauges:
                raise ValueError(f"{path} is already registered as a gauge")
            ctr = self._counters[path] = Counter(path)
        return ctr

    def gauge(self, path: str, fn: Callable[[], float]) -> None:
        """Bind ``path`` to ``fn``, read lazily at snapshot/sample time."""
        if path in self._counters:
            raise ValueError(f"{path} is already registered as a counter")
        self._gauges[path] = fn

    def bind_stats(self, prefix: str, stats: object) -> None:
        """Register one gauge per public numeric field of a stats object
        (dataclass-style), named ``<prefix>.<field>``."""
        for name in vars(stats):
            if name.startswith("_"):
                continue
            value = getattr(stats, name)
            if isinstance(value, (int, float)):
                self.gauge(
                    f"{prefix}.{name}",
                    (lambda s=stats, n=name: getattr(s, n)),
                )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def value(self, path: str) -> float:
        """Current value of the metric at ``path`` (counter or gauge)."""
        ctr = self._counters.get(path)
        if ctr is not None:
            return ctr.value
        return self._gauges[path]()

    def paths(self) -> List[str]:
        """All registered paths, sorted."""
        return sorted(list(self._counters) + list(self._gauges))

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{path: value}`` view of every metric, right now."""
        snap = {p: c.value for p, c in self._counters.items()}
        for path, fn in self._gauges.items():
            snap[path] = fn()
        return snap

    def aggregate(self, pattern: str) -> float:
        """Sum every metric whose path glob-matches ``pattern``."""
        return sum(
            v for p, v in self.snapshot().items() if _match(p, pattern)
        )

    def rollup(self) -> Dict:
        """Nested dict view; interior nodes hold subtree sums in ``_total``."""
        return rollup_flat(self.snapshot())

    # ------------------------------------------------------------------
    # time series
    # ------------------------------------------------------------------

    def sample(self, now: float) -> None:
        """Append a timestamped snapshot (one point of every time series)."""
        self.samples.append((now, self.snapshot()))

    def series(self, path: str) -> List[Tuple[float, float]]:
        """The sampled ``(time, value)`` series of one metric."""
        return [(t, snap.get(path, 0.0)) for t, snap in self.samples]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serializable dump: metadata, flat values, rollup, samples."""
        return {
            "metadata": dict(self.metadata),
            "counters": self.snapshot(),
            "rollup": self.rollup(),
            "samples": [
                {"time": t, "values": snap} for t, snap in self.samples
            ],
        }

    def write_json(self, path: str) -> str:
        """Write :meth:`to_dict` to ``path``; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
        return path

    def render(self, pattern: Optional[str] = None, width: int = 48) -> str:
        """Human-readable flat dump (optionally filtered by a path glob)."""
        lines = []
        for p, v in sorted(self.snapshot().items()):
            if pattern is not None and not _match(p, pattern):
                continue
            val = f"{v:g}" if isinstance(v, float) else str(v)
            lines.append(f"{p:<{width}} {val}")
        return "\n".join(lines)
