"""Structured event tracing: a bounded ring buffer with Chrome export.

Every interesting micro-architectural moment of a run — an instruction
issuing or committing, a TLB miss, a page fault being raised or resolved,
a faulted instruction being squashed and later replayed, a thread block
switching off or back onto an SM — is recorded as one typed event.  Events
live in a fixed-capacity ring buffer (oldest events are dropped once the
buffer wraps; ``dropped`` counts them) so a run's memory footprint is
bounded no matter how long it executes.

The buffer exports to the Chrome ``trace_event`` JSON format, so a run
opens directly in ``chrome://tracing`` or https://ui.perfetto.dev: one
*process* per simulated GPU, one *thread* row per SM (plus rows for the
MMU and the fault controller), instant events for points in time and
complete ("X") events for spans such as fault resolution and context
switches.  Simulated cycles are reported as microseconds (1 cycle = 1us).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Event taxonomy (names shared by the tracer, the docs and the tests).
# ---------------------------------------------------------------------------

#: instruction lifecycle
EV_ISSUE = "inst.issue"
EV_COMMIT = "inst.commit"
EV_SQUASH = "inst.squash"
EV_REPLAY = "inst.replay"
EV_FETCH_DISABLE = "fetch.disable"
EV_FETCH_ENABLE = "fetch.enable"
EV_BARRIER = "warp.barrier"
#: address translation
EV_TLB_HIT = "tlb.hit"
EV_TLB_MISS = "tlb.miss"
#: page faults
EV_FAULT_RAISE = "fault.raise"
EV_FAULT_RESOLVE = "fault.resolve"
EV_FAULT_JOIN = "fault.join"
#: chaos injections (repro.chaos)
EV_CHAOS = "chaos.inject"
#: thread-block lifecycle / preemption
EV_BLOCK_LAUNCH = "block.launch"
EV_BLOCK_DONE = "block.done"
EV_BLOCK_SWITCH_OUT = "block.switch_out"
EV_BLOCK_SWITCH_IN = "block.switch_in"
#: whole-kernel span
EV_KERNEL = "kernel"

#: every event name the tracer may emit (docs + tests validate against it)
ALL_EVENT_NAMES = (
    EV_ISSUE,
    EV_COMMIT,
    EV_SQUASH,
    EV_REPLAY,
    EV_FETCH_DISABLE,
    EV_FETCH_ENABLE,
    EV_BARRIER,
    EV_TLB_HIT,
    EV_TLB_MISS,
    EV_FAULT_RAISE,
    EV_FAULT_RESOLVE,
    EV_FAULT_JOIN,
    EV_CHAOS,
    EV_BLOCK_LAUNCH,
    EV_BLOCK_DONE,
    EV_BLOCK_SWITCH_OUT,
    EV_BLOCK_SWITCH_IN,
    EV_KERNEL,
)


#: event names that record *rare, structurally important* moments — they
#: are kept in their own ring so high-rate issue/commit/TLB traffic can
#: never evict a run's faults, squashes, replays or context switches.
RARE_EVENT_NAMES = frozenset(
    {
        EV_SQUASH,
        EV_REPLAY,
        EV_FAULT_RAISE,
        EV_FAULT_RESOLVE,
        EV_FAULT_JOIN,
        EV_CHAOS,
        EV_BLOCK_LAUNCH,
        EV_BLOCK_DONE,
        EV_BLOCK_SWITCH_OUT,
        EV_BLOCK_SWITCH_IN,
        EV_KERNEL,
    }
)


class _Ring:
    """One fixed-capacity ring of event tuples (wraps, counts drops)."""

    __slots__ = ("capacity", "buf", "next", "recorded", "dropped")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.buf: List[Optional[tuple]] = [None] * capacity
        self.next = 0
        self.recorded = 0
        self.dropped = 0

    def push(self, rec: tuple) -> None:
        """Append ``rec``, overwriting (and counting) the oldest on wrap."""
        i = self.next
        if self.buf[i] is not None:
            self.dropped += 1
        self.buf[i] = rec
        self.next = i + 1 if i + 1 < self.capacity else 0
        self.recorded += 1

    def items(self) -> Iterator[tuple]:
        """Retained records, oldest first."""
        if self.recorded > self.capacity:  # wrapped: cursor is the oldest
            start = self.next
            for i in range(self.capacity):
                yield self.buf[(start + i) % self.capacity]
        else:
            for i in range(self.next if self.recorded else 0):
                yield self.buf[i]


class RingBufferTracer:
    """Two-tier fixed-capacity ring buffer of typed trace events.

    Records are stored as compact tuples ``(name, ph, ts, dur, tid, args)``
    — ``ph`` is the Chrome phase (``"i"`` instant, ``"X"`` complete/span) —
    and only materialized into dicts at export time.  High-rate events
    (issue, commit, TLB) share the main ring; the names in
    :data:`RARE_EVENT_NAMES` (faults, squash/replay, block lifecycle) go
    to a second ring so they survive arbitrarily long runs.
    """

    def __init__(
        self, capacity: int = 1 << 16, rare_capacity: Optional[int] = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._hot = _Ring(capacity)
        self._rare = _Ring(rare_capacity if rare_capacity else capacity)

    @property
    def recorded(self) -> int:
        """Total emit calls (retained + dropped), both tiers."""
        return self._hot.recorded + self._rare.recorded

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound, both tiers."""
        return self._hot.dropped + self._rare.dropped

    # ------------------------------------------------------------------
    # emission (hot path when tracing is enabled)
    # ------------------------------------------------------------------

    def emit(
        self, name: str, ts: float, tid: str, args: Optional[dict] = None
    ) -> None:
        """Record an instant event at simulated time ``ts`` on row ``tid``."""
        ring = self._rare if name in RARE_EVENT_NAMES else self._hot
        ring.push((name, "i", ts, 0.0, tid, args))

    def emit_span(
        self,
        name: str,
        ts: float,
        dur: float,
        tid: str,
        args: Optional[dict] = None,
    ) -> None:
        """Record a span (complete event) covering ``[ts, ts + dur]``."""
        ring = self._rare if name in RARE_EVENT_NAMES else self._hot
        ring.push((name, "X", ts, dur, tid, args))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return min(self._hot.recorded, self._hot.capacity) + min(
            self._rare.recorded, self._rare.capacity
        )

    def events(self) -> Iterator[tuple]:
        """Iterate retained records of both tiers in timestamp order."""
        merged = list(self._hot.items()) + list(self._rare.items())
        merged.sort(key=lambda rec: rec[2])
        return iter(merged)

    def count(self, name: str) -> int:
        """Number of retained events with the given name."""
        return sum(1 for rec in self.events() if rec[0] == name)

    def names(self) -> Dict[str, int]:
        """Retained-event histogram: ``{event name: count}``."""
        hist: Dict[str, int] = {}
        for rec in self.events():
            hist[rec[0]] = hist.get(rec[0], 0) + 1
        return hist

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------

    def to_chrome(
        self, metadata: Optional[dict] = None, pid: str = "gpu"
    ) -> Dict:
        """Build a ``chrome://tracing`` / Perfetto-loadable trace dict."""
        trace_events: List[dict] = []
        tids = []
        seen = set()
        for rec in self.events():
            name, ph, ts, dur, tid, args = rec
            ev = {"name": name, "ph": ph, "ts": ts, "pid": pid, "tid": tid}
            if ph == "X":
                ev["dur"] = dur
            if args:
                ev["args"] = args
            trace_events.append(ev)
            if tid not in seen:
                seen.add(tid)
                tids.append(tid)
        # Thread-name metadata rows so the viewer labels each SM/unit.
        meta_events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid0,
                "args": {"name": "repro GPU simulator"},
            }
            for tid0 in tids[:1]
        ] + [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tid},
            }
            for tid in tids
        ]
        trace = {
            "traceEvents": meta_events + trace_events,
            "displayTimeUnit": "ms",
            "otherData": dict(metadata or {}),
        }
        if self.dropped:
            trace["otherData"]["dropped_events"] = self.dropped
        return trace

    def write_chrome(
        self, path: str, metadata: Optional[dict] = None
    ) -> str:
        """Write :meth:`to_chrome` JSON to ``path``; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(metadata), fh)
        return path
