"""Opcode definitions for the mini GPU ISA.

The ISA is designed to mimic modern GPU ISAs (see paper Section 5.1): a large
unified register file, explicit management of the divergence stack, a fused
multiply-add instruction, approximate complex math instructions executed on a
special-function unit, separate shared/global memory spaces, block barriers,
atomics, a trap instruction and device-side dynamic memory allocation.

Each opcode carries static metadata used by both the functional interpreter
(semantics dispatch) and the timing simulator (execution unit class, latency
class, and whether the instruction can raise a page fault).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Unit(enum.Enum):
    """Execution unit classes of the SM back end (Table 1: 2 math units,
    1 special-function unit, 1 load/store unit, 1 branch unit)."""

    MATH = "math"
    SFU = "sfu"
    LDST = "ldst"
    BRANCH = "branch"


class Opcode(enum.Enum):
    # Integer ALU
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IMAD = "imad"
    IMIN = "imin"
    IMAX = "imax"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    # Floating point ALU
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FFMA = "ffma"
    FMIN = "fmin"
    FMAX = "fmax"
    # Special function unit (approximate complex math)
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FRSQRT = "frsqrt"
    FSIN = "fsin"
    FCOS = "fcos"
    FEXP = "fexp"
    FLOG = "flog"
    # Moves / conversions / select
    MOV = "mov"
    I2F = "i2f"
    F2I = "f2i"
    SEL = "sel"
    # Predicate-setting compares
    ISETP = "isetp"
    FSETP = "fsetp"
    # Memory
    LD_GLOBAL = "ld.global"
    ST_GLOBAL = "st.global"
    LD_SHARED = "ld.shared"
    ST_SHARED = "st.shared"
    ATOM_GLOBAL = "atom.global"
    # Device-side dynamic memory management (backed by the GPU heap allocator)
    MALLOC = "malloc"
    FREE = "free"
    # Control flow
    BRA = "bra"
    BAR = "bar"
    EXIT = "exit"
    TRAP = "trap"
    NOP = "nop"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode.

    ``latency`` is the execution latency in cycles for non-memory
    instructions; memory instruction latency is determined dynamically by the
    memory hierarchy.  ``can_fault`` marks instructions that access the
    global (translated) address space and can therefore raise a page fault.
    """

    unit: Unit
    latency: int
    can_fault: bool = False
    is_memory: bool = False
    is_store: bool = False
    is_control: bool = False


_MATH = OpInfo(Unit.MATH, 10)
_MATH_FAST = OpInfo(Unit.MATH, 6)
_SFU = OpInfo(Unit.SFU, 20)
_GLOBAL_LD = OpInfo(Unit.LDST, 0, can_fault=True, is_memory=True)
_GLOBAL_ST = OpInfo(Unit.LDST, 0, can_fault=True, is_memory=True, is_store=True)
_SHARED_LD = OpInfo(Unit.LDST, 24, is_memory=True)
_SHARED_ST = OpInfo(Unit.LDST, 24, is_memory=True, is_store=True)
_CTRL = OpInfo(Unit.BRANCH, 4, is_control=True)

OP_INFO: dict = {
    Opcode.IADD: _MATH_FAST,
    Opcode.ISUB: _MATH_FAST,
    Opcode.IMUL: _MATH,
    Opcode.IMAD: _MATH,
    Opcode.IMIN: _MATH_FAST,
    Opcode.IMAX: _MATH_FAST,
    Opcode.SHL: _MATH_FAST,
    Opcode.SHR: _MATH_FAST,
    Opcode.AND: _MATH_FAST,
    Opcode.OR: _MATH_FAST,
    Opcode.XOR: _MATH_FAST,
    Opcode.FADD: _MATH,
    Opcode.FSUB: _MATH,
    Opcode.FMUL: _MATH,
    Opcode.FFMA: _MATH,
    Opcode.FMIN: _MATH_FAST,
    Opcode.FMAX: _MATH_FAST,
    Opcode.FDIV: _SFU,
    Opcode.FSQRT: _SFU,
    Opcode.FRSQRT: _SFU,
    Opcode.FSIN: _SFU,
    Opcode.FCOS: _SFU,
    Opcode.FEXP: _SFU,
    Opcode.FLOG: _SFU,
    Opcode.MOV: _MATH_FAST,
    Opcode.I2F: _MATH_FAST,
    Opcode.F2I: _MATH_FAST,
    Opcode.SEL: _MATH_FAST,
    Opcode.ISETP: _MATH_FAST,
    Opcode.FSETP: _MATH_FAST,
    Opcode.LD_GLOBAL: _GLOBAL_LD,
    Opcode.ST_GLOBAL: _GLOBAL_ST,
    Opcode.LD_SHARED: _SHARED_LD,
    Opcode.ST_SHARED: _SHARED_ST,
    Opcode.ATOM_GLOBAL: OpInfo(
        Unit.LDST, 0, can_fault=True, is_memory=True, is_store=True
    ),
    Opcode.MALLOC: OpInfo(Unit.LDST, 40),
    Opcode.FREE: OpInfo(Unit.LDST, 40),
    Opcode.BRA: _CTRL,
    Opcode.BAR: OpInfo(Unit.BRANCH, 4, is_control=True),
    Opcode.EXIT: _CTRL,
    Opcode.TRAP: _CTRL,
    Opcode.NOP: OpInfo(Unit.MATH, 1),
}


def op_info(op: Opcode) -> OpInfo:
    """Return the static :class:`OpInfo` metadata for ``op``."""
    return OP_INFO[op]
