"""Mini GPU ISA: opcodes, operands, instructions, kernels and the builder DSL."""

from .dsl import KernelBuilder
from .instructions import Instruction, uses_global_memory
from .opcodes import OP_INFO, Opcode, OpInfo, Unit, op_info
from .program import Kernel, Label, Param
from .registers import Imm, P, Pred, R, Reg, Special, SReg

__all__ = [
    "KernelBuilder",
    "Instruction",
    "uses_global_memory",
    "Opcode",
    "OpInfo",
    "OP_INFO",
    "Unit",
    "op_info",
    "Kernel",
    "Label",
    "Param",
    "Imm",
    "Pred",
    "Reg",
    "SReg",
    "Special",
    "R",
    "P",
]
