"""Instruction and program representation.

An :class:`Instruction` is a static (pre-execution) entity; the functional
simulator produces dynamic :class:`~repro.functional.trace.TraceInst` records
from it.  Instructions support guarding by a predicate register (``@P0`` /
``@!P0`` style), the idiom GPU compilers use for short divergent regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .opcodes import Opcode, OpInfo, op_info
from .registers import Imm, Pred, Reg, SReg


@dataclass
class Instruction:
    """One static instruction.

    Attributes:
        op: the opcode.
        dest: destination operand (``Reg`` or ``Pred``) or ``None``.
        srcs: source operands (``Reg``/``Pred``/``Imm``/``SReg``).
        guard: optional guard predicate; when set, lanes whose predicate
            value (xor ``guard_negate``) is false are masked off.
        target: branch target pc (``BRA``).
        reconv: reconvergence pc for potentially divergent branches; filled
            in by the assembler from structured-control-flow labels.
        offset: immediate byte offset added to the address register of
            memory instructions.
        width: access width in bytes for memory instructions (4 or 8).
        cmp: comparison operator for ``ISETP``/``FSETP``
            (one of ``lt le gt ge eq ne``).
        atom: atomic operation for ``ATOM_GLOBAL`` (``add``, ``max``,
            ``exch``, ``cas``).
    """

    op: Opcode
    dest: Optional[object] = None
    srcs: Sequence[object] = field(default_factory=tuple)
    guard: Optional[Pred] = None
    guard_negate: bool = False
    target: Optional[int] = None
    reconv: Optional[int] = None
    offset: int = 0
    width: int = 4
    cmp: Optional[str] = None
    atom: Optional[str] = None

    @property
    def info(self) -> OpInfo:
        return op_info(self.op)

    def reg_dests(self) -> tuple:
        """Destination GPRs written by this instruction (for scoreboarding)."""
        if isinstance(self.dest, Reg):
            return (self.dest.index,)
        return ()

    def reg_srcs(self) -> tuple:
        """Source GPRs read by this instruction (for scoreboarding)."""
        out = []
        for src in self.srcs:
            if isinstance(src, Reg):
                out.append(src.index)
        return tuple(out)

    def pred_dests(self) -> tuple:
        if isinstance(self.dest, Pred):
            return (self.dest.index,)
        return ()

    def pred_srcs(self) -> tuple:
        out = [s.index for s in self.srcs if isinstance(s, Pred)]
        if self.guard is not None:
            out.append(self.guard.index)
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        guard = ""
        if self.guard is not None:
            guard = f"@{'!' if self.guard_negate else ''}{self.guard} "
        dest = f"{self.dest} <- " if self.dest is not None else ""
        srcs = ", ".join(repr(s) for s in self.srcs)
        extra = ""
        if self.op is Opcode.BRA:
            extra = f" ->{self.target}"
        return f"{guard}{dest}{self.op.value} {srcs}{extra}"


def uses_global_memory(inst: Instruction) -> bool:
    """True when ``inst`` accesses the translated global address space and
    can therefore raise a page fault."""
    return inst.info.can_fault


__all__ = ["Instruction", "uses_global_memory", "Imm", "Reg", "Pred", "SReg"]
