"""Register and operand model of the mini GPU ISA.

Threads own a per-thread slice of the SM's large unified register file
(general-purpose registers ``R0..R254``) and a small predicate file
(``P0..P7``).  A handful of read-only *special* registers expose the thread's
position in the launch grid, matching the CUDA built-ins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

MAX_GPR = 255
NUM_PRED = 8


class Special(enum.Enum):
    """Read-only special registers (CUDA built-in equivalents)."""

    TID = "tid"  # thread index within the block
    CTAID = "ctaid"  # block index within the grid
    NTID = "ntid"  # threads per block
    NCTAID = "nctaid"  # blocks in the grid
    LANE = "lane"  # lane index within the warp
    WARPID = "warpid"  # warp index within the block


@dataclass(frozen=True)
class Reg:
    """A general-purpose register operand ``R<index>``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index <= MAX_GPR:
            raise ValueError(f"register index out of range: {self.index}")

    def __repr__(self) -> str:
        return f"R{self.index}"


@dataclass(frozen=True)
class Pred:
    """A predicate register operand ``P<index>``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_PRED:
            raise ValueError(f"predicate index out of range: {self.index}")

    def __repr__(self) -> str:
        return f"P{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand (int or float)."""

    value: float

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class SReg:
    """A special (read-only) register operand."""

    kind: Special

    def __repr__(self) -> str:
        return f"%{self.kind.value}"


#: Convenience operand type union used in annotations.
Operand = object


def R(index: int) -> Reg:
    """Shorthand constructor for a GPR operand."""
    return Reg(index)


def P(index: int) -> Pred:
    """Shorthand constructor for a predicate operand."""
    return Pred(index)
