"""Kernel-building DSL.

Kernels are written in Python with a small assembler-like builder that
provides structured control flow (``if_`` / ``else_`` / ``while_`` /
``for_range``) on top of raw branches.  The builder computes branch targets
*and* reconvergence points (the immediate post-dominator of each potentially
divergent branch), which the SIMT divergence stack of the functional
simulator requires — mirroring the "explicit management of the divergence
stack" the paper's ISA provides.

Example::

    kb = KernelBuilder("saxpy", regs_per_thread=8)
    tid = kb.global_thread_id(R(0))
    kb.imad(R(1), R(0), Imm(4), kb.param(0))       # &x[tid]
    kb.imad(R(2), R(0), Imm(4), kb.param(1))       # &y[tid]
    kb.ld_global(R(3), R(1))
    kb.ld_global(R(4), R(2))
    kb.ffma(R(5), R(3), kb.param(2), R(4))
    kb.st_global(R(2), R(5))
    kb.exit()
    kernel = kb.build()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence, Union

from .instructions import Instruction
from .opcodes import Opcode
from .program import Kernel, Label, Param
from .registers import Imm, Pred, Reg, Special, SReg

OperandLike = Union[Reg, Pred, Imm, SReg, Param, int, float]


def _as_operand(value: OperandLike):
    """Coerce raw Python numbers to immediates, pass operands through."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Imm(value)
    if isinstance(value, (Reg, Pred, Imm, SReg, Param)):
        return value
    raise TypeError(f"not an operand: {value!r}")


class KernelBuilder:
    """Incrementally builds a :class:`~repro.isa.program.Kernel`."""

    def __init__(
        self,
        name: str,
        regs_per_thread: int = 16,
        smem_bytes_per_block: int = 0,
    ) -> None:
        self.name = name
        self.regs_per_thread = regs_per_thread
        self.smem_bytes_per_block = smem_bytes_per_block
        self._insts: list = []
        self._labels: list = []
        self._fixups: list = []  # (inst, attr, label)

    # ------------------------------------------------------------------
    # low-level emission
    # ------------------------------------------------------------------

    @property
    def pc(self) -> int:
        """The pc the next emitted instruction will occupy."""
        return len(self._insts)

    def emit(self, inst: Instruction) -> Instruction:
        self._insts.append(inst)
        return inst

    def label(self, name: str = "") -> Label:
        """Create an unbound label for manual branch construction."""
        label = Label(name)
        self._labels.append(label)
        return label

    def bind(self, label: Label) -> None:
        """Bind ``label`` to the current pc."""
        label.resolve(self.pc)

    def param(self, index: int) -> Param:
        return Param(index)

    def _alu(self, op: Opcode, dest, *srcs, guard=None, guard_negate=False):
        return self.emit(
            Instruction(
                op,
                dest=dest,
                srcs=tuple(_as_operand(s) for s in srcs),
                guard=guard,
                guard_negate=guard_negate,
            )
        )

    # ------------------------------------------------------------------
    # named helpers (one per opcode family)
    # ------------------------------------------------------------------

    def iadd(self, d, a, b, **kw):
        return self._alu(Opcode.IADD, d, a, b, **kw)

    def isub(self, d, a, b, **kw):
        return self._alu(Opcode.ISUB, d, a, b, **kw)

    def imul(self, d, a, b, **kw):
        return self._alu(Opcode.IMUL, d, a, b, **kw)

    def imad(self, d, a, b, c, **kw):
        return self._alu(Opcode.IMAD, d, a, b, c, **kw)

    def imin(self, d, a, b, **kw):
        return self._alu(Opcode.IMIN, d, a, b, **kw)

    def imax(self, d, a, b, **kw):
        return self._alu(Opcode.IMAX, d, a, b, **kw)

    def shl(self, d, a, b, **kw):
        return self._alu(Opcode.SHL, d, a, b, **kw)

    def shr(self, d, a, b, **kw):
        return self._alu(Opcode.SHR, d, a, b, **kw)

    def and_(self, d, a, b, **kw):
        return self._alu(Opcode.AND, d, a, b, **kw)

    def or_(self, d, a, b, **kw):
        return self._alu(Opcode.OR, d, a, b, **kw)

    def xor(self, d, a, b, **kw):
        return self._alu(Opcode.XOR, d, a, b, **kw)

    def fadd(self, d, a, b, **kw):
        return self._alu(Opcode.FADD, d, a, b, **kw)

    def fsub(self, d, a, b, **kw):
        return self._alu(Opcode.FSUB, d, a, b, **kw)

    def fmul(self, d, a, b, **kw):
        return self._alu(Opcode.FMUL, d, a, b, **kw)

    def ffma(self, d, a, b, c, **kw):
        return self._alu(Opcode.FFMA, d, a, b, c, **kw)

    def fmin(self, d, a, b, **kw):
        return self._alu(Opcode.FMIN, d, a, b, **kw)

    def fmax(self, d, a, b, **kw):
        return self._alu(Opcode.FMAX, d, a, b, **kw)

    def fdiv(self, d, a, b, **kw):
        return self._alu(Opcode.FDIV, d, a, b, **kw)

    def fsqrt(self, d, a, **kw):
        return self._alu(Opcode.FSQRT, d, a, **kw)

    def frsqrt(self, d, a, **kw):
        return self._alu(Opcode.FRSQRT, d, a, **kw)

    def fsin(self, d, a, **kw):
        return self._alu(Opcode.FSIN, d, a, **kw)

    def fcos(self, d, a, **kw):
        return self._alu(Opcode.FCOS, d, a, **kw)

    def fexp(self, d, a, **kw):
        return self._alu(Opcode.FEXP, d, a, **kw)

    def flog(self, d, a, **kw):
        return self._alu(Opcode.FLOG, d, a, **kw)

    def mov(self, d, a, **kw):
        return self._alu(Opcode.MOV, d, a, **kw)

    def i2f(self, d, a, **kw):
        return self._alu(Opcode.I2F, d, a, **kw)

    def f2i(self, d, a, **kw):
        return self._alu(Opcode.F2I, d, a, **kw)

    def sel(self, d, p, a, b, **kw):
        return self._alu(Opcode.SEL, d, p, a, b, **kw)

    def isetp(self, d: Pred, cmp: str, a, b, **kw):
        inst = self._alu(Opcode.ISETP, d, a, b, **kw)
        inst.cmp = cmp
        return inst

    def fsetp(self, d: Pred, cmp: str, a, b, **kw):
        inst = self._alu(Opcode.FSETP, d, a, b, **kw)
        inst.cmp = cmp
        return inst

    def ld_global(self, d, addr, offset: int = 0, width: int = 4, **kw):
        inst = self._alu(Opcode.LD_GLOBAL, d, addr, **kw)
        inst.offset, inst.width = offset, width
        return inst

    def st_global(self, addr, value, offset: int = 0, width: int = 4, **kw):
        inst = self._alu(Opcode.ST_GLOBAL, None, addr, value, **kw)
        inst.offset, inst.width = offset, width
        return inst

    def ld_shared(self, d, addr, offset: int = 0, width: int = 4, **kw):
        inst = self._alu(Opcode.LD_SHARED, d, addr, **kw)
        inst.offset, inst.width = offset, width
        return inst

    def st_shared(self, addr, value, offset: int = 0, width: int = 4, **kw):
        inst = self._alu(Opcode.ST_SHARED, None, addr, value, **kw)
        inst.offset, inst.width = offset, width
        return inst

    def atom_global(self, d, addr, value, atom: str = "add", offset: int = 0, **kw):
        inst = self._alu(Opcode.ATOM_GLOBAL, d, addr, value, **kw)
        inst.atom, inst.offset = atom, offset
        return inst

    def malloc(self, d, size, **kw):
        return self._alu(Opcode.MALLOC, d, size, **kw)

    def free(self, ptr, **kw):
        return self._alu(Opcode.FREE, None, ptr, **kw)

    def bar(self):
        return self.emit(Instruction(Opcode.BAR))

    def exit(self, guard: Optional[Pred] = None, guard_negate: bool = False):
        return self.emit(
            Instruction(Opcode.EXIT, guard=guard, guard_negate=guard_negate)
        )

    def trap(self, guard: Optional[Pred] = None, guard_negate: bool = False):
        return self.emit(
            Instruction(Opcode.TRAP, guard=guard, guard_negate=guard_negate)
        )

    def nop(self):
        return self.emit(Instruction(Opcode.NOP))

    def bra(
        self,
        target: Label,
        guard: Optional[Pred] = None,
        guard_negate: bool = False,
        reconv: Optional[Label] = None,
    ) -> Instruction:
        """Emit a (possibly guarded) branch to ``target``.

        A guarded branch may diverge; supply ``reconv`` so the SIMT stack
        knows where the paths rejoin.  Structured helpers do this for you.
        """
        inst = self.emit(
            Instruction(Opcode.BRA, guard=guard, guard_negate=guard_negate)
        )
        self._fixups.append((inst, "target", target))
        if reconv is not None:
            self._fixups.append((inst, "reconv", reconv))
        return inst

    # ------------------------------------------------------------------
    # special-register & indexing conveniences
    # ------------------------------------------------------------------

    def tid(self, dest: Reg) -> Reg:
        self.mov(dest, SReg(Special.TID))
        return dest

    def ctaid(self, dest: Reg) -> Reg:
        self.mov(dest, SReg(Special.CTAID))
        return dest

    def ntid(self, dest: Reg) -> Reg:
        self.mov(dest, SReg(Special.NTID))
        return dest

    def global_thread_id(self, dest: Reg, scratch: Optional[Reg] = None) -> Reg:
        """``dest = ctaid * ntid + tid`` (the canonical CUDA global index)."""
        scratch = scratch if scratch is not None else dest
        self.mov(scratch, SReg(Special.CTAID))
        self.imul(scratch, scratch, SReg(Special.NTID))
        self.iadd(dest, scratch, SReg(Special.TID))
        return dest

    # ------------------------------------------------------------------
    # structured control flow
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def if_(self, pred: Pred, negate: bool = False) -> Iterator[None]:
        """``if pred: <body>`` — branches around the body when the guard is
        false; reconvergence at the end of the body."""
        end = self.label("endif")
        self.bra(end, guard=pred, guard_negate=not negate, reconv=end)
        yield
        self.bind(end)

    @contextlib.contextmanager
    def if_else(self, pred: Pred) -> Iterator[tuple]:
        """``if pred: <then> else: <otherwise>`` via two labels.

        Usage::

            with kb.if_else(P(0)) as orelse:
                <then-body>
                orelse()        # switch to the else arm
                <else-body>
        """
        else_label = self.label("else")
        end = self.label("endif")
        self.bra(else_label, guard=pred, guard_negate=True, reconv=end)
        switched = [False]

        def orelse() -> None:
            if switched[0]:
                raise RuntimeError("orelse() called twice")
            switched[0] = True
            self.bra(end, reconv=end)
            self.bind(else_label)

        yield orelse
        if not switched[0]:
            raise RuntimeError("if_else used without calling orelse()")
        self.bind(end)

    @contextlib.contextmanager
    def while_(self, emit_cond) -> Iterator[None]:
        """``while cond: <body>``.

        ``emit_cond`` is a callback that emits the condition computation and
        returns the predicate register holding it.  Lanes whose condition is
        false wait at the loop exit (the reconvergence point).
        """
        top = self.label("while_top")
        end = self.label("while_end")
        self.bind(top)
        pred = emit_cond()
        self.bra(end, guard=pred, guard_negate=True, reconv=end)
        yield
        self.bra(top)
        self.bind(end)

    @contextlib.contextmanager
    def for_range(
        self, counter: Reg, start: OperandLike, stop: OperandLike, step: int = 1
    ) -> Iterator[Reg]:
        """``for counter in range(start, stop, step): <body>``."""
        self.mov(counter, _as_operand(start))
        pred = Pred(7)  # reserved loop predicate

        def cond() -> Pred:
            self.isetp(pred, "lt", counter, _as_operand(stop))
            return pred

        with self.while_(cond):
            yield counter
            self.iadd(counter, counter, Imm(step))

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def build(self) -> Kernel:
        """Resolve labels and return the validated kernel."""
        for label in self._labels:
            if label.pc is None:
                raise ValueError(f"unbound label {label.name!r} in {self.name}")
        for inst, attr, label in self._fixups:
            setattr(inst, attr, label.pc)
        kernel = Kernel(
            name=self.name,
            instructions=list(self._insts),
            regs_per_thread=self.regs_per_thread,
            smem_bytes_per_block=self.smem_bytes_per_block,
        )
        kernel.validate()
        return kernel
