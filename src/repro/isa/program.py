"""Kernel program container and label resolution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .instructions import Instruction
from .opcodes import Opcode


@dataclass(frozen=True)
class Param:
    """A kernel launch parameter operand (resolved at launch time).

    Kernel parameters carry buffer base addresses and scalar arguments, the
    way CUDA kernel arguments do.  The functional simulator reads the value
    from the launch's parameter list; the timing simulator treats parameters
    as immediates (they live in constant memory and never fault in our
    model).
    """

    index: int

    def __repr__(self) -> str:
        return f"param[{self.index}]"


class Label:
    """A forward-referenceable program location used by the kernel DSL."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.pc: Optional[int] = None

    def resolve(self, pc: int) -> None:
        if self.pc is not None:
            raise ValueError(f"label {self.name!r} bound twice")
        self.pc = pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<label {self.name} @{self.pc}>"


@dataclass
class Kernel:
    """A compiled kernel: the instruction stream plus static resource needs.

    ``regs_per_thread`` and ``smem_bytes_per_block`` determine SM occupancy
    (how many thread blocks fit concurrently), exactly the quantity that
    drives the per-benchmark differences between the paper's pipeline
    schemes (e.g. *lbm* runs at 8-warp occupancy because of its register
    pressure).
    """

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    regs_per_thread: int = 16
    smem_bytes_per_block: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def validate(self) -> None:
        """Check structural invariants: resolved branch targets, terminal
        EXIT reachability, and operand sanity."""
        n = len(self.instructions)
        if n == 0:
            raise ValueError(f"kernel {self.name!r} is empty")
        for pc, inst in enumerate(self.instructions):
            if inst.op is Opcode.BRA:
                if inst.target is None or not 0 <= inst.target <= n:
                    raise ValueError(
                        f"{self.name}: unresolved/out-of-range branch at pc {pc}"
                    )
                if inst.reconv is not None and not 0 <= inst.reconv <= n:
                    raise ValueError(
                        f"{self.name}: bad reconvergence point at pc {pc}"
                    )
        if not any(i.op is Opcode.EXIT for i in self.instructions):
            raise ValueError(f"kernel {self.name!r} has no EXIT instruction")
