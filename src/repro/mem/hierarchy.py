"""The GPU memory subsystem: per-SM L1 caches, shared L2, DRAM, and the MMU.

``warp_access`` is the single entry point the SM's global-memory pipeline
uses: it coalesces lane addresses, streams the coalesced requests through the
per-SM LD/ST address pipeline (one request per cycle — this serialization is
why the *last* TLB check of a scattered warp access lands tens of cycles
after issue), translates each unique page (detecting page faults at walk
completion), sends each non-faulted request through L1 -> L2 -> DRAM, and
reports per-instruction timing:

- ``translation_done`` — when the last TLB check finished (the paper's
  earliest safe point to re-enable a disabled warp / release replay-queue
  source scoreboards),
- ``completion`` — when all non-faulted requests' data is ready,
- ``faults`` — the virtual pages that had no valid GPU mapping.

Faulted instructions are *replayed* after resolution via
``replay_after_fault``, which charges unloaded latencies only: replay happens
far in simulation future, and pushing shared bandwidth accumulators (LD/ST
pipe, DRAM pipe, MSHR pools) to future timestamps would stall unrelated
present-time accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.vm import PAGE_SHIFT, SystemPageState

from .cache import Cache, Dram
from .coalescer import coalesce
from .tlb import Mmu


@dataclass
class FaultInfo:
    """A page fault detected by the fill unit for one warp access."""

    vpn: int
    detect_time: float
    sm_id: int
    is_store: bool = False


@dataclass
class AccessResult:
    """Timing outcome of one warp global-memory instruction."""

    translation_done: float
    completion: float
    faults: List[FaultInfo] = field(default_factory=list)
    num_requests: int = 0

    @property
    def faulted(self) -> bool:
        return bool(self.faults)


@dataclass
class TranslationOutcome:
    """Phase 1 of a warp access: coalescing + translation of every page.

    ``ready_lines`` holds the coalesced requests whose page translated
    successfully; the data-path phase (cache/DRAM) runs at
    ``translation_done`` so shared bandwidth resources are only ever booked
    in global time order.
    """

    translation_done: float
    ready_lines: List[int] = field(default_factory=list)
    faults: List[FaultInfo] = field(default_factory=list)
    num_requests: int = 0

    @property
    def faulted(self) -> bool:
        return bool(self.faults)


class MemorySubsystem:
    """Composes caches, DRAM and MMU according to a configuration object.

    ``translate_fn(vpn, time)`` supplies the time-aware page-table view
    (see :class:`repro.system.faults.FaultController`).
    """

    def __init__(self, config, translate_fn, telemetry=None, chaos=None) -> None:
        self.config = config
        dram_unloaded = (
            config.dram_latency
            + config.line_size / config.dram_bandwidth_bytes_per_cycle
        )
        self.l1_caches = [
            Cache(
                f"l1[{i}]",
                size_bytes=config.l1_size,
                assoc=config.l1_assoc,
                line_size=config.line_size,
                latency=config.l1_latency,
                num_mshrs=config.l1_mshrs,
                next_level_unloaded=config.l2_latency + dram_unloaded,
            )
            for i in range(config.num_sms)
        ]
        self.l2_cache = Cache(
            "l2",
            size_bytes=config.l2_size,
            assoc=config.l2_assoc,
            line_size=config.line_size,
            latency=config.l2_latency,
            num_mshrs=config.l2_mshrs,
            next_level_unloaded=dram_unloaded,
        )
        self.dram = Dram(
            latency=config.dram_latency,
            bandwidth_bytes_per_cycle=config.dram_bandwidth_bytes_per_cycle,
            line_size=config.line_size,
        )
        self.mmu = Mmu(
            num_sms=config.num_sms,
            l1_entries=config.l1_tlb_entries,
            l1_assoc=config.l1_tlb_assoc,
            l2_entries=config.l2_tlb_entries,
            l2_assoc=config.l2_tlb_assoc,
            l2_latency=config.l2_tlb_latency,
            num_walkers=config.num_walkers,
            walk_latency=config.walk_latency,
            translate_fn=translate_fn,
        )
        self._ldst_free = [0.0] * config.num_sms
        self.attach_telemetry(telemetry)
        self.attach_chaos(chaos)

    def attach_telemetry(self, telemetry) -> None:
        """Wire the observability layer through the memory subsystem:
        TLB/walker gauges + hit/miss events on the MMU, and cache/DRAM
        gauges under ``gpu.cache.*`` / ``gpu.dram.*`` (zero hot-path
        cost — gauges read the existing stats objects lazily)."""
        from repro.telemetry import active

        tel = active(telemetry)
        self.mmu.attach_telemetry(tel)
        if tel is None:
            return
        reg = tel.counters
        for i, cache in enumerate(self.l1_caches):
            reg.bind_stats(f"gpu.cache.l1[{i}]", cache.stats)
        reg.bind_stats("gpu.cache.l2", self.l2_cache.stats)
        reg.bind_stats("gpu.dram", self.dram.stats)

    def attach_chaos(self, chaos) -> None:
        """Wire the injection hooks across the memory subsystem: the MMU's
        ``tlb.*`` hooks, ``cache.mshr_exhaustion`` on every cache level and
        ``dram.refresh_storm`` on the DRAM pipe (docs/ROBUSTNESS.md).  A
        disabled engine normalizes to ``None`` everywhere, leaving the hot
        paths untouched."""
        from repro.chaos import chaos_active

        engine = chaos_active(chaos)
        self.mmu.attach_chaos(engine)
        for cache in self.l1_caches:
            cache.attach_chaos(engine)
        self.l2_cache.attach_chaos(engine)
        self.dram.attach_chaos(engine)

    # ------------------------------------------------------------------

    def _l2_access(self, start: float, line: int, is_store: bool) -> float:
        return self.l2_cache.access(line, start, is_store, self.dram.access)

    def translate_access(
        self,
        sm_id: int,
        addresses: Sequence[int],
        is_store: bool,
        now: float,
    ) -> TranslationOutcome:
        """Phase 1 (at operand read): coalesce and translate.

        The coalesced requests stream through the per-SM LD/ST address
        pipeline (one per cycle); each unique page is translated when its
        first request reaches the TLB-check slot.  Page faults are detected
        here, at walk completion.
        """
        return self.translate_access_coalesced(
            sm_id, coalesce(addresses, self.config.line_size), is_store, now
        )

    def translate_access_coalesced(
        self,
        sm_id: int,
        access,
        is_store: bool,
        now: float,
    ) -> TranslationOutcome:
        """:meth:`translate_access` for an already-coalesced access.

        The SM pipeline's fast path feeds memoized per-trace-record
        coalescing results (:func:`repro.mem.coalescer.coalesce_inst`)
        through this entry point so the bucketing work is not redone on
        every issue or replay (docs/PERFORMANCE.md)."""
        lines = access.lines
        nreq = len(lines)
        start0 = max(now, self._ldst_free[sm_id])
        self._ldst_free[sm_id] = start0 + nreq

        vpns = access.vpns
        if len(vpns) == 1 and lines:
            # Fast path: the whole access sits on one page (the common case
            # for unit-stride warps) — one TLB check at the first request
            # slot covers every line.  ``translation_done`` collapses to
            # max(last request slot + 1, walk completion), exactly what the
            # general loop below computes for a single shared result.
            vpn = vpns[0]
            result = self.mmu.translate(sm_id, vpn, start0)
            translation_done = max(start0 + nreq, result.done_time)
            if result.faulted:
                return TranslationOutcome(
                    translation_done=translation_done,
                    ready_lines=[],
                    faults=[
                        FaultInfo(
                            vpn=vpn,
                            detect_time=result.done_time,
                            sm_id=sm_id,
                            is_store=is_store,
                        )
                    ],
                    num_requests=nreq,
                )
            return TranslationOutcome(
                translation_done=translation_done,
                ready_lines=list(lines),
                faults=[],
                num_requests=nreq,
            )

        line_size = self.config.line_size
        line_vpns = access.line_vpns
        page_results: Dict[int, object] = {}
        faults: Dict[int, FaultInfo] = {}
        ready_lines: List[int] = []
        translation_done = now
        for i, line in enumerate(access.lines):
            slot = start0 + i
            vpn = (
                line_vpns[i]
                if line_vpns
                else (line * line_size) >> PAGE_SHIFT
            )
            result = page_results.get(vpn)
            if result is None:
                result = self.mmu.translate(sm_id, vpn, slot)
                page_results[vpn] = result
                if result.faulted:
                    faults[vpn] = FaultInfo(
                        vpn=vpn,
                        detect_time=result.done_time,
                        sm_id=sm_id,
                        is_store=is_store,
                    )
            check_done = max(slot + 1, result.done_time)
            translation_done = max(translation_done, check_done)
            if not result.faulted:
                ready_lines.append(line)

        return TranslationOutcome(
            translation_done=translation_done,
            ready_lines=ready_lines,
            faults=list(faults.values()),
            num_requests=access.num_requests,
        )

    def data_access(
        self,
        sm_id: int,
        ready_lines: Sequence[int],
        is_store: bool,
        now: float,
        is_atomic: bool = False,
    ) -> float:
        """Phase 2 (at translation-done): run the requests through the
        cache hierarchy; returns the instruction completion time.

        The L1 is no-write-allocate (NVIDIA-style): stores and atomics
        bypass it — and its MSHRs — and are performed at the L2.  Plain
        stores complete at write-buffer acceptance (the warp's commit does
        not wait for the write-back to land); loads and atomics (which
        return the old value) complete when their data is ready.
        """
        completion = now + self.config.l1_latency
        if is_store or is_atomic:
            for line in ready_lines:
                ready = self._l2_access(now, line, True)
                if is_atomic:
                    completion = max(completion, ready)
            return completion
        l1 = self.l1_caches[sm_id]
        for line in ready_lines:
            ready = l1.access(line, now, False, self._l2_access)
            completion = max(completion, ready)
        return completion

    def warp_access(
        self,
        sm_id: int,
        addresses: Sequence[int],
        is_store: bool,
        now: float,
        is_atomic: bool = False,
    ) -> AccessResult:
        """Both phases back to back (convenience for tests and tools;
        the SM pipeline drives the two phases through timed events)."""
        outcome = self.translate_access(sm_id, addresses, is_store, now)
        completion = self.data_access(
            sm_id,
            outcome.ready_lines,
            is_store,
            outcome.translation_done,
            is_atomic=is_atomic,
        )
        return AccessResult(
            translation_done=outcome.translation_done,
            completion=completion,
            faults=outcome.faults,
            num_requests=outcome.num_requests,
        )

    def replay_after_fault(
        self, sm_id: int, addresses: Sequence[int], resolved_time: float
    ) -> AccessResult:
        """Timing of replaying a faulted access once its fault is resolved.

        Charges *unloaded* latencies: the TLBs have no entry for the freshly
        mapped pages (full walk), and the migrated/zero-filled data sits in
        DRAM.  Shared contention accumulators are deliberately not touched —
        the replay executes far in the future relative to the accesses being
        simulated now.
        """
        return self.replay_after_fault_coalesced(
            sm_id, coalesce(addresses, self.config.line_size), resolved_time
        )

    def replay_after_fault_coalesced(
        self, sm_id: int, access, resolved_time: float
    ) -> AccessResult:
        """:meth:`replay_after_fault` for an already-coalesced access (the
        SM fast path reuses the memoized coalescing of the original issue)."""
        cfg = self.config
        # Requests re-enter the address pipeline back to back.
        last_check = (
            resolved_time
            + access.num_requests
            + cfg.l2_tlb_latency
            + cfg.walk_latency
        )
        completion = last_check + cfg.l2_latency + cfg.dram_latency
        return AccessResult(
            translation_done=last_check,
            completion=completion,
            faults=[],
            num_requests=access.num_requests,
        )

    def flush(self) -> None:
        for cache in self.l1_caches:
            cache.flush()
        self.l2_cache.flush()
        self.dram.flush()
        self.mmu.flush()
        self._ldst_free = [0.0] * self.config.num_sms
