"""Set-associative cache timing model with LRU replacement and MSHRs.

Timing is computed in a single pass per request ("timestamp simulation"):
the cache keeps tag state plus, for in-flight misses, the fill time of each
pending line, so later requests to the same line merge onto the outstanding
MSHR (secondary miss) instead of issuing a duplicate fill.  A bounded MSHR
pool applies back-pressure: when all MSHRs are busy a new primary miss waits
for the earliest release.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    secondary_misses: int = 0
    mshr_stalls: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.__init__()


class Cache:
    """One cache level.

    Args:
        name: for stats/debugging.
        size_bytes / assoc / line_size: geometry (must divide evenly).
        latency: hit latency in cycles (also charged before a miss is
            forwarded to the next level, modeling the tag check).
        num_mshrs: bound on concurrently outstanding primary misses.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_size: int,
        latency: int,
        num_mshrs: int,
        next_level_unloaded: float = 0.0,
    ) -> None:
        """``next_level_unloaded`` is the unloaded (contention-free) miss
        latency below this cache.  It is charged to requests that had to
        wait for an MSHR: their service happens at a *future* timestamp, and
        booking the shared downstream resources (DRAM pipe, next-level
        MSHRs) at future times would let one backed-up client poison
        present-time requests from every other client (the accumulator would
        jump far ahead of simulation time).  MSHR-limited clients are
        throttled to ``num_mshrs / fill-latency`` throughput either way, so
        the unloaded approximation changes little while keeping the shared
        accumulators causal."""
        num_lines = size_bytes // line_size
        if num_lines % assoc:
            raise ValueError(f"{name}: lines ({num_lines}) not divisible by assoc")
        self.name = name
        self.line_size = line_size
        self.latency = latency
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        self.num_mshrs = num_mshrs
        self.next_level_unloaded = next_level_unloaded
        # per-set OrderedDict line_tag -> dirty flag (LRU order = insertion)
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        # line -> fill completion time of the outstanding miss
        self._pending: Dict[int, float] = {}
        # min-heap of outstanding primary-miss completion times (MSHR pool)
        self._mshr_busy: list = []
        self.stats = CacheStats()
        self.chaos = None  # set by attach_chaos

    def attach_chaos(self, chaos) -> None:
        """Wire the ``cache.mshr_exhaustion`` injection hook: a primary
        miss stalled as if the whole MSHR pool were transiently busy
        (docs/ROBUSTNESS.md).  ``None`` when chaos is disabled, so the
        access hot path is unchanged without it."""
        from repro.chaos import chaos_active

        self.chaos = chaos_active(chaos)

    def _set_of(self, line: int) -> OrderedDict:
        return self._sets[line % self.num_sets]

    def _reserve_mshr(self, now: float) -> float:
        """Return the time an MSHR becomes available (>= now)."""
        busy = self._mshr_busy
        while busy and busy[0] <= now:
            heapq.heappop(busy)
        if len(busy) >= self.num_mshrs:
            self.stats.mshr_stalls += 1
            return heapq.heappop(busy)
        return now

    def _commit_mshr(self, fill_time: float) -> None:
        heapq.heappush(self._mshr_busy, fill_time)

    def probe(self, line: int) -> bool:
        """Tag check without state change (used by tests)."""
        return line in self._set_of(line)

    def access(
        self,
        line: int,
        now: float,
        is_store: bool,
        next_level_access,
    ) -> float:
        """Access ``line`` at time ``now``; returns data-ready time.

        ``next_level_access(start_time, line, is_store) -> ready_time`` is
        invoked for primary misses.
        """
        self.stats.accesses += 1
        cset = self._set_of(line)
        if line in cset:
            pending_fill = self._pending.get(line)
            if pending_fill is not None and pending_fill > now:
                # Fill still in flight: merge onto the outstanding MSHR.
                self.stats.secondary_misses += 1
                cset.move_to_end(line)
                return max(pending_fill, now + self.latency)
            self._pending.pop(line, None)
            self.stats.hits += 1
            cset.move_to_end(line)
            if is_store:
                cset[line] = True
            return now + self.latency

        # Primary miss.
        self.stats.misses += 1
        slot = self._reserve_mshr(now)
        chaos = self.chaos
        if chaos is not None:
            stall = chaos.mshr_exhaustion(now, self.name)
            if stall:
                # Injected exhaustion: the miss waits as if every MSHR
                # were busy, taking the same future-service path (and
                # unloaded downstream charge) as a real pool stall.
                self.stats.mshr_stalls += 1
                slot = max(slot, now + stall)
        if slot <= now:
            ready = next_level_access(now + self.latency, line, is_store)
        else:
            # Waited for an MSHR: service happens in the future — charge the
            # unloaded downstream latency (see __init__ docstring).
            ready = slot + self.latency + self.next_level_unloaded
        self._commit_mshr(ready)
        self._install(line, dirty=is_store)
        self._pending[line] = ready
        return ready

    def _install(self, line: int, dirty: bool) -> None:
        cset = self._set_of(line)
        if line in cset:
            cset.move_to_end(line)
            if dirty:
                cset[line] = True
            return
        if len(cset) >= self.assoc:
            victim, _ = cset.popitem(last=False)  # evict LRU
            self._pending.pop(victim, None)
            self.stats.evictions += 1
        cset[line] = dirty

    def flush(self) -> None:
        """Drop all state (used between experiment runs)."""
        for cset in self._sets:
            cset.clear()
        self._pending.clear()
        self._mshr_busy.clear()


@dataclass
class DramStats:
    accesses: int = 0
    bytes_transferred: int = 0
    busy_cycles: float = 0.0


class Dram:
    """Simple DRAM: fixed latency plus a shared bandwidth pipe.

    Bandwidth is modeled with a "next free" accumulator: each line transfer
    occupies the pipe for ``line_size / bytes_per_cycle`` cycles.
    """

    def __init__(self, latency: int, bandwidth_bytes_per_cycle: float, line_size: int) -> None:
        self.latency = latency
        self.bytes_per_cycle = bandwidth_bytes_per_cycle
        self.line_size = line_size
        self._next_free = 0.0
        self.stats = DramStats()
        self.chaos = None  # set by attach_chaos

    def attach_chaos(self, chaos) -> None:
        """Wire the ``dram.refresh_storm`` injection hook: the shared
        bandwidth pipe blocked for a burst of cycles ahead of a transfer
        (docs/ROBUSTNESS.md).  ``None`` when chaos is disabled."""
        from repro.chaos import chaos_active

        self.chaos = chaos_active(chaos)

    def _maybe_refresh(self, now: float) -> None:
        """Chaos hook site: push ``_next_free`` past an injected refresh
        burst so the next transfer queues behind it (timing only)."""
        block = self.chaos.refresh_storm(now)
        if block:
            self._next_free = max(self._next_free, now) + block
            self.stats.busy_cycles += block

    def access(self, now: float, line: int, is_store: bool) -> float:
        if self.chaos is not None:
            self._maybe_refresh(now)
        occupancy = self.line_size / self.bytes_per_cycle
        start = max(now, self._next_free)
        self._next_free = start + occupancy
        self.stats.accesses += 1
        self.stats.bytes_transferred += self.line_size
        self.stats.busy_cycles += occupancy
        return start + occupancy + self.latency

    def reserve_bandwidth(self, now: float, nbytes: int) -> float:
        """Occupy the pipe for a bulk transfer (context save/restore, page
        migration landing in GPU memory); returns completion time."""
        if self.chaos is not None:
            self._maybe_refresh(now)
        occupancy = nbytes / self.bytes_per_cycle
        start = max(now, self._next_free)
        self._next_free = start + occupancy
        self.stats.bytes_transferred += nbytes
        self.stats.busy_cycles += occupancy
        return start + occupancy + self.latency

    def flush(self) -> None:
        self._next_free = 0.0
