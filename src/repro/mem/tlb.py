"""TLB timing models and the page-walking fill unit.

Mirrors the paper's MMU (Figure 1): each SM has a private L1 TLB; a shared
L2 TLB sits behind them; attached to the L2 TLB is a *fill unit* with a pool
of page-table walkers that performs GPU page-table lookups on L2 TLB misses.
A walk that finds no valid GPU mapping is the point where a page fault is
detected.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.telemetry.events import EV_TLB_HIT, EV_TLB_MISS


@dataclass
class TlbStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    merged_walks: int = 0


class Tlb:
    """Set-associative, LRU TLB over virtual page numbers."""

    def __init__(self, name: str, entries: int, assoc: int, latency: int = 0) -> None:
        if entries % assoc:
            raise ValueError(f"{name}: entries not divisible by assoc")
        self.name = name
        self.assoc = assoc
        self.num_sets = entries // assoc
        self.latency = latency
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = TlbStats()

    def _set_of(self, vpn: int) -> OrderedDict:
        return self._sets[vpn % self.num_sets]

    def lookup(self, vpn: int) -> Optional[int]:
        self.stats.accesses += 1
        tset = self._set_of(vpn)
        ppn = tset.get(vpn)
        if ppn is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        tset.move_to_end(vpn)
        return ppn

    def insert(self, vpn: int, ppn: int) -> None:
        tset = self._set_of(vpn)
        if vpn in tset:
            tset.move_to_end(vpn)
            tset[vpn] = ppn
            return
        if len(tset) >= self.assoc:
            tset.popitem(last=False)
        tset[vpn] = ppn

    def invalidate(self, vpn: int) -> None:
        self._set_of(vpn).pop(vpn, None)

    def flush(self) -> None:
        for tset in self._sets:
            tset.clear()


class WalkerPool:
    """The fill unit's pool of page-table walkers (Table 1: 64 walkers,
    500-cycle walk latency)."""

    def __init__(self, num_walkers: int, walk_latency: int) -> None:
        self.num_walkers = num_walkers
        self.walk_latency = walk_latency
        self._busy: list = []  # heap of walker release times
        self.walks = 0
        self.stall_cycles = 0.0

    def walk(self, now: float) -> float:
        """Start a walk at the earliest opportunity; returns completion time."""
        busy = self._busy
        while busy and busy[0] <= now:
            heapq.heappop(busy)
        start = now
        if len(busy) >= self.num_walkers:
            start = heapq.heappop(busy)
            self.stall_cycles += start - now
        done = start + self.walk_latency
        heapq.heappush(busy, done)
        self.walks += 1
        return done

    def flush(self) -> None:
        self._busy.clear()


class TranslationResult:
    """Outcome of translating one page for one memory request."""

    __slots__ = ("vpn", "ppn", "done_time", "faulted")

    def __init__(self, vpn: int, ppn: Optional[int], done_time: float) -> None:
        self.vpn = vpn
        self.ppn = ppn
        self.done_time = done_time
        self.faulted = ppn is None


class Mmu:
    """Two-level TLB + fill unit, shared by all SMs at the L2/walker level.

    ``translate(sm_id, vpn, now)`` performs the full translation timing:
    L1 TLB (per SM) -> shared L2 TLB -> walker pool -> page table; concurrent
    walks for the same vpn are merged (one walker, shared completion).
    """

    def __init__(
        self,
        num_sms: int,
        l1_entries: int,
        l1_assoc: int,
        l2_entries: int,
        l2_assoc: int,
        l2_latency: int,
        num_walkers: int,
        walk_latency: int,
        translate_fn,
    ) -> None:
        """``translate_fn(vpn, time) -> ppn | None`` is the time-aware page
        table view (``None`` = fault at ``time``; a page whose fault is still
        being resolved stays unmapped until its resolution time)."""
        self.l1_tlbs = [
            Tlb(f"l1tlb[{i}]", l1_entries, l1_assoc) for i in range(num_sms)
        ]
        self.l2_tlb = Tlb("l2tlb", l2_entries, l2_assoc, latency=l2_latency)
        self.walkers = WalkerPool(num_walkers, walk_latency)
        self.translate_fn = translate_fn
        # vpn -> (done_time, ppn-or-None) for in-flight walks (walk merging)
        self._pending_walks: Dict[int, Tuple[float, Optional[int]]] = {}
        self.fault_detections = 0
        self.tel = None  # set by attach_telemetry
        self.chaos = None  # set by attach_chaos

    def attach_telemetry(self, telemetry) -> None:
        """Register TLB/walker gauges under ``gpu.tlb.*`` and enable
        hit/miss event emission (see docs/OBSERVABILITY.md).

        Gauges bind lazily to the existing stats objects, so the lookup
        hot path is unchanged when telemetry is disabled."""
        from repro.telemetry import active

        self.tel = active(telemetry)
        if self.tel is None:
            return
        reg = self.tel.counters
        for i, tlb in enumerate(self.l1_tlbs):
            reg.bind_stats(f"gpu.tlb.l1[{i}]", tlb.stats)
        reg.bind_stats("gpu.tlb.l2", self.l2_tlb.stats)
        reg.gauge("gpu.tlb.walker.walks", lambda: self.walkers.walks)
        reg.gauge(
            "gpu.tlb.walker.stall_cycles", lambda: self.walkers.stall_cycles
        )
        reg.gauge("gpu.tlb.fault_detections", lambda: self.fault_detections)
        # Aggregates over both levels (the ``gpu.tlb.hit`` / ``gpu.tlb.miss``
        # headline counters): an L1 hit resolves in the SM, an L2 *miss* is
        # what reaches the walkers.
        reg.gauge(
            "gpu.tlb.hit",
            lambda: sum(t.stats.hits for t in self.l1_tlbs)
            + self.l2_tlb.stats.hits,
        )
        reg.gauge("gpu.tlb.miss", lambda: self.l2_tlb.stats.misses)

    def attach_chaos(self, chaos) -> None:
        """Wire the injection hooks ``tlb.spurious_miss`` (a translation
        forced to miss both levels and take a full walk) and
        ``tlb.shootdown`` (every TLB entry invalidated) — see
        docs/ROBUSTNESS.md.  ``None`` when chaos is disabled, so the
        translation hot path is unchanged without it."""
        from repro.chaos import chaos_active

        self.chaos = chaos_active(chaos)

    def shootdown(self) -> None:
        """Invalidate every cached translation (L1s + L2), keeping
        in-flight walks and walker occupancy intact — the TLB-side effect
        of a host-initiated unmap, and the ``tlb.shootdown`` injection."""
        for tlb in self.l1_tlbs:
            tlb.flush()
        self.l2_tlb.flush()

    def translate(self, sm_id: int, vpn: int, now: float) -> TranslationResult:
        """Translate one page for SM ``sm_id``: L1 TLB -> L2 TLB -> walker
        pool; faults are detected at walk completion."""
        tel = self.tel
        chaos = self.chaos
        forced_miss = False
        if chaos is not None:
            if chaos.tlb_shootdown(now):
                self.shootdown()
            forced_miss = chaos.spurious_miss(now, vpn)
        # A walk in flight for this page: later lookups merge onto it and
        # observe its completion time — the entry is not visible in the
        # TLBs until the walker returns.
        pending = self._pending_walks.get(vpn)
        if pending is not None and pending[0] > now:
            self.l2_tlb.stats.merged_walks += 1
            done, walk_ppn = pending
            if walk_ppn is None:
                self.fault_detections += 1
            if tel is not None:
                tel.tracer.emit(
                    EV_TLB_MISS, now, "mmu",
                    {"vpn": vpn, "sm": sm_id, "merged": True},
                )
            return TranslationResult(vpn, walk_ppn, done)

        l1 = self.l1_tlbs[sm_id]
        if not forced_miss:
            ppn = l1.lookup(vpn)
            if ppn is not None:
                if tel is not None:
                    tel.tracer.emit(
                        EV_TLB_HIT, now, "mmu",
                        {"vpn": vpn, "sm": sm_id, "level": "l1"},
                    )
                return TranslationResult(vpn, ppn, now)

        t = now + self.l2_tlb.latency
        if not forced_miss:
            ppn = self.l2_tlb.lookup(vpn)
            if ppn is not None:
                l1.insert(vpn, ppn)
                if tel is not None:
                    tel.tracer.emit(
                        EV_TLB_HIT, t, "mmu",
                        {"vpn": vpn, "sm": sm_id, "level": "l2"},
                    )
                return TranslationResult(vpn, ppn, t)

        done = self.walkers.walk(t)
        walk_ppn = self.translate_fn(vpn, done)
        self._pending_walks[vpn] = (done, walk_ppn)
        if tel is not None:
            tel.tracer.emit_span(
                EV_TLB_MISS, t, done - t, "mmu",
                {"vpn": vpn, "sm": sm_id, "fault": walk_ppn is None},
            )
        if walk_ppn is None:
            self.fault_detections += 1
            return TranslationResult(vpn, None, done)
        self.l2_tlb.insert(vpn, walk_ppn)
        l1.insert(vpn, walk_ppn)
        return TranslationResult(vpn, walk_ppn, done)

    def install(self, vpn: int, ppn: int) -> None:
        """Called when a fault is resolved so future walks/lookups hit."""
        self._pending_walks.pop(vpn, None)

    def flush(self) -> None:
        for tlb in self.l1_tlbs:
            tlb.flush()
        self.l2_tlb.flush()
        self.walkers.flush()
        self._pending_walks.clear()
