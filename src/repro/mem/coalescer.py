"""Memory-access coalescing unit.

Part of the baseline SM (paper Figure 5): a warp memory instruction's 32 lane
addresses are coalesced into one memory request per unique cache line.  The
coalescer also reports the unique virtual pages, because one warp instruction
can touch (and fault on) several pages at once — which is why the *last* TLB
check is the earliest safe point to re-enable a disabled warp
(``wd-lastcheck``) or to release replay-queue source operands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.vm import CACHE_LINE_SIZE, PAGE_SHIFT


@dataclass(frozen=True)
class CoalescedAccess:
    """The coalescer's output for one warp memory instruction."""

    lines: Tuple[int, ...]  # unique cache-line indices, in first-touch order
    vpns: Tuple[int, ...]  # unique virtual page numbers, in first-touch order

    @property
    def num_requests(self) -> int:
        return len(self.lines)


def coalesce(
    addresses: Sequence[int], line_size: int = CACHE_LINE_SIZE
) -> CoalescedAccess:
    """Coalesce lane byte addresses into unique lines and pages."""
    lines: dict = {}
    vpns: dict = {}
    for addr in addresses:
        lines.setdefault(addr // line_size, None)
        vpns.setdefault(addr >> PAGE_SHIFT, None)
    return CoalescedAccess(lines=tuple(lines), vpns=tuple(vpns))
