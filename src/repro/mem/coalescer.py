"""Memory-access coalescing unit.

Part of the baseline SM (paper Figure 5): a warp memory instruction's 32 lane
addresses are coalesced into one memory request per unique cache line.  The
coalescer also reports the unique virtual pages, because one warp instruction
can touch (and fault on) several pages at once — which is why the *last* TLB
check is the earliest safe point to re-enable a disabled warp
(``wd-lastcheck``) or to release replay-queue source operands.

Coalescing is a pure function of the (immutable) lane addresses, yet the
timing simulator needs it at least twice per faulted instruction (translate +
replay) and once per run for every dynamic memory record.  ``coalesce_inst``
memoizes the result on the trace record itself, so repeated runs over the
same trace — and the replay path — pay a cache hit instead of re-bucketing
32 addresses (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from typing import NamedTuple, Sequence, Tuple

from repro.vm import CACHE_LINE_SIZE, PAGE_SHIFT


class CoalescedAccess(NamedTuple):
    """The coalescer's output for one warp memory instruction.

    A NamedTuple (not a frozen dataclass) because one is built per dynamic
    memory record on the simulation fast path — tuple construction runs in
    C, while a frozen dataclass pays three ``object.__setattr__`` calls."""

    lines: Tuple[int, ...]  # unique cache-line indices, in first-touch order
    vpns: Tuple[int, ...]  # unique virtual page numbers, in first-touch order
    #: virtual page of each entry of ``lines`` (same order); empty on
    #: hand-built instances — consumers fall back to computing from ``lines``
    line_vpns: Tuple[int, ...] = ()

    @property
    def num_requests(self) -> int:
        return len(self.lines)


def coalesce(
    addresses: Sequence[int], line_size: int = CACHE_LINE_SIZE
) -> CoalescedAccess:
    """Coalesce lane byte addresses into unique lines and pages.

    ``dict.fromkeys`` is the order-preserving dedupe (first-touch order,
    like the serial bucketing it replaced) with the loop run in C."""
    shift = line_size.bit_length() - 1
    if (1 << shift) == line_size and shift <= PAGE_SHIFT:
        # One/two-line fast path: ``a >> shift`` is monotone in ``a``, so
        # min/max (which run in C) bound the whole line set.  Unit-stride
        # warps land on one or two adjacent lines; the first lane's line
        # fixes the first-touch order of the pair.
        lo = min(addresses) >> shift
        hi = max(addresses) >> shift
        lp_shift = PAGE_SHIFT - shift
        if lo == hi:
            vpn = lo >> lp_shift
            return CoalescedAccess(lines=(lo,), vpns=(vpn,), line_vpns=(vpn,))
        if hi - lo == 1:
            first = addresses[0] >> shift
            line_tuple = (first, lo + hi - first)
            line_vpns = (line_tuple[0] >> lp_shift, line_tuple[1] >> lp_shift)
            vpns = (
                line_vpns
                if line_vpns[0] != line_vpns[1]
                else (line_vpns[0],)
            )
            return CoalescedAccess(
                lines=line_tuple, vpns=vpns, line_vpns=line_vpns
            )
        line_tuple = tuple(dict.fromkeys([a >> shift for a in addresses]))
        line_vpns = tuple([ln >> lp_shift for ln in line_tuple])
    else:
        line_tuple = tuple(dict.fromkeys([a // line_size for a in addresses]))
        line_vpns = tuple([(ln * line_size) >> PAGE_SHIFT for ln in line_tuple])
    # A page's first touch is always also a new line (each line lives on
    # exactly one page), so deduping the per-line pages preserves the
    # first-touch page order of the raw addresses — no third address scan.
    return CoalescedAccess(
        lines=line_tuple,
        vpns=tuple(dict.fromkeys(line_vpns)),
        line_vpns=line_vpns,
    )


def coalesce_inst(tinst, line_size: int = CACHE_LINE_SIZE) -> CoalescedAccess:
    """Memoizing :func:`coalesce` for a trace record (``tinst.addresses``).

    Safe because trace addresses are immutable after generation; the cache
    is keyed by line size so a config change cannot serve stale data.
    """
    try:
        cached_size, cached = tinst._coal
        if cached_size == line_size:
            return cached
    except AttributeError:
        pass
    access = coalesce(tinst.addresses, line_size)
    tinst._coal = (line_size, access)
    return access
