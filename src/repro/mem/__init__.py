"""Timing models of the GPU memory hierarchy (caches, TLBs, DRAM, MMU)."""

from .cache import Cache, CacheStats, Dram, DramStats
from .coalescer import CoalescedAccess, coalesce, coalesce_inst
from .hierarchy import AccessResult, FaultInfo, MemorySubsystem
from .tlb import Mmu, Tlb, TlbStats, TranslationResult, WalkerPool

__all__ = [
    "Cache",
    "CacheStats",
    "Dram",
    "DramStats",
    "CoalescedAccess",
    "coalesce",
    "coalesce_inst",
    "AccessResult",
    "FaultInfo",
    "MemorySubsystem",
    "Mmu",
    "Tlb",
    "TlbStats",
    "TranslationResult",
    "WalkerPool",
]
