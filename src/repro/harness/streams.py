"""The ``streams`` experiment: serial vs overlapped multi-kernel runs.

For each stream scenario (:mod:`repro.workloads.multi`) this runs the same
kernel set twice on identically configured devices:

``serial``
    each kernel launched synchronously, back to back, on one device —
    total cost is the *sum* of the per-launch cycle counts;
``overlapped``
    one stream per kernel, a single :meth:`GpuDevice.synchronize` — all
    kernels resident concurrently on the shared GPU, contending on the
    global pending-fault queue and interconnect; total cost is the
    *makespan* of the merged run.

For fault-bound kernels the overlapped makespan lands strictly below the
serial sum: a kernel parked on migrate faults leaves its SM partition's
issue slots idle, and the co-resident kernel soaks them up — even though
its own faults now queue behind the neighbour's (visible in the per-kernel
fault tallies).  That is the paper's multi-tenant motivation measured.

Determinism: both runs are pure functions of the scenario, so the whole
experiment is bit-reproducible — ``verify_reproducible=True`` replays the
overlapped run and asserts the end-state digests match, recording the
digest in the table notes.

CLI: ``python -m repro.harness streams`` (see ``--help``); the table is
pasted into EXPERIMENTS.md ("Multi-stream contention").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict, Optional, Sequence

from repro.runtime import GpuDevice
from repro.workloads import STREAM_SCENARIO_NAMES, get_stream_scenario

from .experiments import DEFAULT_TIME_SCALE
from .results import ExperimentTable

STREAM_COLUMNS = [
    "serial", "overlapped", "speedup", "faults-ser", "faults-ovl",
]


def _make_device(scheme, interconnect, time_scale, block_switching):
    return GpuDevice(
        scheme=scheme,
        interconnect=interconnect,
        block_switching=block_switching,
        time_scale=time_scale,
    )


def overlap_digest(result) -> str:
    """A sha256 over the overlapped run's observable end state: makespan,
    per-kernel completions and fault tallies, fault stats, per-SM stats.
    Two runs of the same scenario must produce the same digest
    (docs/CONCURRENCY.md determinism contract)."""
    payload = {
        "cycles": result.cycles,
        "stolen": result.stolen_blocks,
        "kernels": [
            [k.kernel_name, k.stream, k.cycles, k.faults_raised,
             k.fault_groups]
            for k in result.kernels
        ],
        "faults": asdict(result.fault_stats),
        "sms": [asdict(s) for s in result.sm_stats],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def run_streams_scenario(
    name: str,
    scheme: str = "replay-queue",
    interconnect: str = "nvlink",
    time_scale: float = DEFAULT_TIME_SCALE,
    policy: str = "partition",
    block_switching: bool = False,
    verify_reproducible: bool = True,
) -> Dict:
    """Run one scenario serial and overlapped; returns the raw numbers
    (``rows`` per kernel + ``totals``) for :func:`run_streams` to tabulate."""
    scenario = get_stream_scenario(name)

    # -- serial: synchronous launches, one after the other ---------------
    dev = _make_device(scheme, interconnect, time_scale, block_switching)
    specs = scenario.build(dev)
    serial_rows = []
    for spec in specs:
        res = dev.launch(spec.kernel, grid=spec.grid, block=spec.block,
                         args=spec.args)
        # Each synchronous launch runs on a fresh fault controller, so the
        # fault stats are already per launch.
        serial_rows.append(
            {"cycles": res.cycles,
             "faults": res.sim.fault_stats.faults_raised}
        )
    serial_sum = sum(r["cycles"] for r in serial_rows)

    # -- overlapped: one stream per kernel, one synchronize --------------
    dev2 = _make_device(scheme, interconnect, time_scale, block_switching)
    specs2 = scenario.build(dev2)
    for spec in specs2:
        stream = dev2.create_stream()
        dev2.launch(spec.kernel, grid=spec.grid, block=spec.block,
                    args=spec.args, stream=stream)
    overlap = dev2.synchronize(policy=policy)
    digest = overlap_digest(overlap)

    if verify_reproducible:
        dev3 = _make_device(scheme, interconnect, time_scale,
                            block_switching)
        specs3 = scenario.build(dev3)
        for spec in specs3:
            dev3.launch(spec.kernel, grid=spec.grid, block=spec.block,
                        args=spec.args, stream=dev3.create_stream())
        replay = dev3.synchronize(policy=policy)
        if overlap_digest(replay) != digest:
            raise AssertionError(
                f"streams:{name}: overlapped run is not bit-reproducible"
            )

    rows = []
    for serial, kres in zip(serial_rows, overlap.kernels):
        rows.append({
            "label": f"{name}/s{kres.stream}:{kres.kernel_name}",
            "serial": serial["cycles"],
            "overlapped": kres.cycles,
            "faults_serial": serial["faults"],
            "faults_overlap": kres.faults_raised,
        })
    return {
        "scenario": name,
        "description": scenario.description,
        "rows": rows,
        "serial_sum": serial_sum,
        "makespan": overlap.cycles,
        "stolen": overlap.stolen_blocks,
        "digest": digest,
    }


def run_streams(
    scenarios: Optional[Sequence[str]] = None,
    scheme: str = "replay-queue",
    interconnect: str = "nvlink",
    time_scale: float = DEFAULT_TIME_SCALE,
    policy: str = "partition",
    block_switching: bool = False,
    verify_reproducible: bool = True,
) -> ExperimentTable:
    """The ``streams`` experiment: a serial-vs-overlapped table across the
    stream scenarios (default: all).  Per-kernel rows show each kernel's
    standalone cycles vs its completion cycle inside the merged run; each
    scenario's TOTAL row compares the serial sum to the overlapped
    makespan (``speedup`` > 1 means overlapping won)."""
    names = list(scenarios) if scenarios else list(STREAM_SCENARIO_NAMES)
    table = ExperimentTable(
        name="streams",
        description=(
            "multi-stream contention: serial sum vs overlapped makespan "
            f"(cycles, scheme={scheme}, policy={policy})"
        ),
        columns=list(STREAM_COLUMNS),
        show_geomean=False,
    )
    for name in names:
        data = run_streams_scenario(
            name,
            scheme=scheme,
            interconnect=interconnect,
            time_scale=time_scale,
            policy=policy,
            block_switching=block_switching,
            verify_reproducible=verify_reproducible,
        )
        for row in data["rows"]:
            table.add_row(row["label"], [
                row["serial"],
                row["overlapped"],
                row["serial"] / row["overlapped"] if row["overlapped"] else 0,
                row["faults_serial"],
                row["faults_overlap"],
            ])
        table.add_row(f"{name}/TOTAL", [
            data["serial_sum"],
            data["makespan"],
            (data["serial_sum"] / data["makespan"]
             if data["makespan"] else 0.0),
            sum(r["faults_serial"] for r in data["rows"]),
            sum(r["faults_overlap"] for r in data["rows"]),
        ])
        note = (
            f"{name}: {data['description']}; stolen blocks: "
            f"{data['stolen']}; overlap digest {data['digest'][:16]}"
        )
        if verify_reproducible:
            note += " (replayed: bit-identical)"
        table.notes.append(note)
    table.notes.append(
        "per-kernel 'overlapped' is the completion cycle inside the merged "
        "run; TOTAL compares serial sum vs overlapped makespan"
    )
    return table
