"""The paper's published numbers, as structured data.

Every quantitative claim of the evaluation section that this reproduction
targets, in one place — used by EXPERIMENTS.md, the benchmark assertions
and the comparison helper below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .results import ExperimentTable

#: Figure 10 geomeans (normalized performance, no faults)
FIG10_GEOMEANS = {
    "wd-commit": 0.84,
    "wd-lastcheck": 0.90,
    "replay-queue": 0.94,
}
#: the lbm outlier under the replay queue
FIG10_LBM_REPLAY_QUEUE = 0.60

#: Figure 11 geomeans (operand log, normalized performance)
FIG11_GEOMEANS = {"log-8KB": 0.966, "log-16KB": 0.992}
#: lbm with a 16KB log ("improves the performance from 60% to 97%")
FIG11_LBM_16KB = 0.97

#: Table 2 rows: log KB -> (SM area %, GPU area %, SM power %, GPU power %)
TABLE2 = {
    8: (1.04, 0.47, 1.82, 1.28),
    16: (1.47, 0.67, 2.34, 1.64),
    20: (1.67, 0.76, 2.61, 1.83),
    32: (2.36, 1.08, 3.38, 2.37),
}

#: Figure 12 NVLink speedups the text calls out
FIG12_NVLINK = {"sgemm": 1.13, "stencil": 1.07, "histo": 1.11,
                "mri-gridding": 0.85}
#: best PCIe improvement ("histo is the highest with 5%")
FIG12_PCIE_HISTO = 1.05

#: Figure 13 geomeans (local handling of heap faults)
FIG13_GEOMEANS = {"nvlink": 1.56, "pcie": 1.75}

#: Figure 14 geomeans (local handling of output-page faults)
FIG14_GEOMEANS = {"nvlink": 1.05, "pcie": 1.08}

#: measured fault costs (cycles at 1 GHz): (migrate, alloc-only)
FAULT_COSTS = {"nvlink": (12_000, 10_000), "pcie": (25_000, 12_000)}
#: handler latency estimates (cycles)
HANDLER_LATENCY = {"cpu": 2_000, "gpu": 20_000}


@dataclass
class Comparison:
    """Paper-vs-measured for one series."""

    name: str
    paper: float
    measured: float

    @property
    def ratio(self) -> float:
        return self.measured / self.paper if self.paper else float("inf")

    @property
    def within(self) -> float:
        """Absolute deviation from the paper's value."""
        return abs(self.measured - self.paper)


def compare_geomeans(
    table: ExperimentTable, paper: Dict[str, float]
) -> Dict[str, Comparison]:
    """Match a measured table's geomeans against the paper's, by column."""
    out: Dict[str, Comparison] = {}
    geomeans = dict(zip(table.columns, table.geomeans()))
    for column, expected in paper.items():
        if column in geomeans:
            out[column] = Comparison(
                name=column, paper=expected, measured=geomeans[column]
            )
    return out


def format_comparison(comps: Dict[str, Comparison]) -> str:
    lines = [f"{'series':>14s} {'paper':>8s} {'measured':>9s} {'delta':>7s}"]
    for comp in comps.values():
        lines.append(
            f"{comp.name:>14s} {comp.paper:8.3f} {comp.measured:9.3f} "
            f"{comp.measured - comp.paper:+7.3f}"
        )
    return "\n".join(lines)
