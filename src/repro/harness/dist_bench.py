"""Distributed-campaign scaling benchmark (``dist-bench`` subcommand).

The headline claims of the distributed layer (docs/ROBUSTNESS.md) are
recorded in the committed ``BENCH_dist.json`` and re-checked by
``benchmarks/test_bench_dist.py`` in CI:

1. **Determinism** — on the full 35-cell chaos matrix (5
   microbenchmark workloads x 7 seeds, 2 schemes per cell), a loopback
   fleet of 2 worker processes produces ``tables.json`` and
   ``counters.json`` byte-identical to the serial runner's.
2. **Scaling** — on a partitionable matrix of at least 32 cells, a
   fleet of 2 workers completes the campaign at least 1.6x faster than
   a fleet of 1.

Methodology.  The scaling half is timed on a *sleep-calibrated*
synthetic matrix: every cell blocks for a fixed wall-clock duration
(:func:`run_dist_bench_cell`), standing in for a cell's compute time on
its own machine.  This isolates exactly the layer under test — lease
round-trips, heartbeats, checkpoint uploads, the merge — from host CPU
parallelism, which a loopback fleet cannot demonstrate honestly: CI
runners (including the box that produced the committed record) may have
a single core, where two CPU-bound workers merely timeshare.  A real
fleet gives each worker its own machine; blocking cells model that on
loopback.  Wall-clock (never CPU time) is measured from coordinator
start to matrix completion, worker spawn cost included, best of
``--repeats``.  The speedup compares fleets of 1 and 2 workers — same
protocol overhead on both sides of the ratio — with the serial runner's
time recorded alongside as the distribution-overhead baseline.  The
determinism half runs the *real* chaos matrix (no sleeps) through the
serial runner and a 2-worker fleet and asserts the artifacts match
bytewise; the synthetic runs are identity-checked on every repeat too.

Regenerate the committed record (from the repo root)::

    PYTHONPATH=src python -m repro.harness dist-bench --update

``--smoke`` runs a small chaos matrix (serial vs 2-worker fleet),
asserts byte-identity and clean worker exits, and skips the timing
gate — CI machines are too noisy for wall-clock assertions outside the
dedicated perf-guard job.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional

from .dist import CampaignCoordinator, spawn_worker
from .results import ExperimentTable

#: relative tolerance of the CI gate on the committed speedup
GATE_TOLERANCE = 0.25

#: documented minimum 2-worker-over-1-worker speedup (the gate floor)
MIN_SPEEDUP = 1.6

#: the timed matrix: 35 sleep-calibrated cells (>= the 32-cell floor
#: the acceptance contract names), 300ms of blocking work each — long
#: enough that per-cell overhead (fork, lease and upload round-trips)
#: stays well under the work it schedules
CASE = {
    "kind": "sleep-calibrated",
    "cells": 35,
    "work_ms": 300.0,
}

#: the determinism matrix: 5 microbenchmark workloads x 7 seeds = 35
#: chaos cells, each a 2-scheme fault-injection campaign (real compute)
IDENTITY_CASE = {
    "workloads": [
        "divergence-tree", "mshr-storm", "saxpy", "stream-sum",
        "tlb-thrash",
    ],
    "seeds": [0, 1, 2, 3, 4, 5, 6],
    "schemes": ["wd-commit", "replay-queue"],
}

#: the CI smoke matrix: small enough for every PR, still multi-cell
SMOKE_CASE = {
    "workloads": ["saxpy", "tlb-thrash"],
    "seeds": [0, 1],
    "schemes": ["wd-commit"],
}

#: the artifacts whose bytes define campaign determinism
IDENTITY_ARTIFACTS = ("tables.json", "counters.json")


def run_dist_bench_cell(cell_id: str, work_ms: float) -> ExperimentTable:
    """One sleep-calibrated benchmark cell: block for ``work_ms`` of
    wall-clock (a stand-in for compute on the worker's own machine) and
    return a deterministic one-row table."""
    time.sleep(work_ms / 1000.0)
    table = ExperimentTable(
        name="dist-bench",
        description="sleep-calibrated distribution-layer benchmark",
        columns=["work-ms"],
        show_geomean=False,
    )
    table.add_row(cell_id, [work_ms])
    return table


def build_synthetic_cells(case: Optional[Dict] = None):
    """The timed matrix as campaign cells (keys fix canonical order)."""
    from .runner import CampaignCell

    case = case or CASE
    return [
        CampaignCell(
            key=f"bench/{i:03d}",
            fn=run_dist_bench_cell,
            kwargs=dict(cell_id=f"cell-{i:03d}",
                        work_ms=float(case["work_ms"])),
            group="dist-bench",
        )
        for i in range(int(case["cells"]))
    ]


def build_chaos_cells_for(case: Dict):
    """A chaos matrix (real compute) as campaign cells."""
    from .chaos_campaign import build_chaos_cells

    return build_chaos_cells(
        list(case["workloads"]),
        seeds=tuple(case["seeds"]),
        schemes=tuple(case["schemes"]),
    )


def artifact_bytes(out_dir: str) -> Dict[str, bytes]:
    """The deterministic artifacts of a finished campaign directory."""
    blobs = {}
    for name in IDENTITY_ARTIFACTS:
        with open(os.path.join(out_dir, name), "rb") as fh:
            blobs[name] = fh.read()
    return blobs


def run_serial(cells, out_dir: str) -> float:
    """Time the local serial runner (workers=1) on the matrix."""
    from .runner import CampaignRunner

    runner = CampaignRunner(
        cells, out_dir=out_dir, workers=1, echo=lambda _m: None,
    )
    t0 = time.monotonic()
    result = runner.run()
    elapsed = time.monotonic() - t0
    if not result.ok:
        raise RuntimeError(
            f"serial benchmark run failed: {result.failed}"
        )
    return elapsed


def run_dist(cells, out_dir: str, n_workers: int,
             lease_seconds: float = 15.0) -> float:
    """Time a loopback fleet of ``n_workers`` worker processes on the
    matrix: coordinator start to matrix completion, spawn included.
    Asserts every worker observes completion and exits 0."""
    coord = CampaignCoordinator(
        cells, out_dir=out_dir, lease_seconds=lease_seconds,
        echo=lambda _m: None,
    )
    t0 = time.monotonic()
    url = coord.start()
    procs = [
        spawn_worker(url, workers=1, name=f"bench-w{i}")
        for i in range(n_workers)
    ]
    try:
        if not coord.wait(600.0):
            raise RuntimeError("distributed benchmark run timed out")
        elapsed = time.monotonic() - t0
        # Let the fleet observe completion (next lease poll) and exit
        # cleanly before the coordinator goes away.
        for proc in procs:
            proc.wait(timeout=60.0)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        coord.stop()
    result = coord.collect()
    if not result.ok:
        raise RuntimeError(
            f"distributed benchmark run failed: {result.failed}"
        )
    codes = [proc.returncode for proc in procs]
    if any(code != 0 for code in codes):
        raise RuntimeError(f"worker exit codes {codes}; expected all 0")
    return elapsed


def check_identity(dirs: Dict[str, str]) -> None:
    """Assert the deterministic artifacts match bytewise across run
    modes; raises with the offending mode/artifact otherwise."""
    items = sorted(dirs.items())
    ref_mode, ref_dir = items[0]
    ref = artifact_bytes(ref_dir)
    for mode, out_dir in items[1:]:
        got = artifact_bytes(out_dir)
        for name in IDENTITY_ARTIFACTS:
            if got[name] != ref[name]:
                raise RuntimeError(
                    f"determinism violation: {name} differs between "
                    f"{ref_mode!r} and {mode!r}"
                )


def _fresh_dirs(base: str, tag: str, modes) -> Dict[str, str]:
    dirs = {mode: os.path.join(base, f"{tag}-{mode}") for mode in modes}
    for path in dirs.values():
        shutil.rmtree(path, ignore_errors=True)
    return dirs


def check_chaos_identity(case: Optional[Dict] = None,
                         work_dir: Optional[str] = None,
                         echo=print) -> Dict:
    """The determinism half: serial runner vs 2-worker fleet on the
    real chaos matrix, artifacts asserted byte-identical."""
    case = case or IDENTITY_CASE
    cells = build_chaos_cells_for(case)
    base = work_dir or tempfile.mkdtemp(prefix="dist-bench-")
    dirs = _fresh_dirs(base, "identity", ("serial", "dist2"))
    echo(f"[dist-bench] identity: {len(cells)} chaos cells, serial vs "
         "2-worker fleet")
    run_serial(cells, dirs["serial"])
    run_dist(cells, dirs["dist2"], 2)
    check_identity(dirs)
    echo("[dist-bench] identity: tables.json and counters.json "
         "byte-identical")
    return {**case, "cells": len(cells), "identical": True}


def measure(repeats: int = 1, case: Optional[Dict] = None,
            work_dir: Optional[str] = None, echo=print,
            skip_identity: bool = False) -> Dict:
    """Best-of-``repeats`` wall-clock measurement of all three modes on
    the sleep-calibrated matrix (byte-identity asserted on every
    repeat), plus the chaos-matrix identity check."""
    case = case or CASE
    base = work_dir or tempfile.mkdtemp(prefix="dist-bench-")
    identity: Optional[Dict] = None
    if not skip_identity:
        identity = check_chaos_identity(work_dir=base, echo=echo)
    cells = build_synthetic_cells(case)
    times: Dict[str, List[float]] = {"serial": [], "dist1": [], "dist2": []}
    for rep in range(max(1, repeats)):
        dirs = _fresh_dirs(base, f"rep{rep}",
                           ("serial", "dist1", "dist2"))
        echo(f"[dist-bench] repeat {rep + 1}/{max(1, repeats)}: "
             f"{len(cells)} sleep-calibrated cells "
             f"({case['work_ms']:.0f}ms each)")
        times["serial"].append(run_serial(cells, dirs["serial"]))
        times["dist1"].append(run_dist(cells, dirs["dist1"], 1))
        times["dist2"].append(run_dist(cells, dirs["dist2"], 2))
        check_identity(dirs)
    best = {mode: min(vals) for mode, vals in times.items()}
    record = {
        "case": {**case},
        "serial": {"seconds": round(best["serial"], 3)},
        "dist1": {"workers": 1, "seconds": round(best["dist1"], 3)},
        "dist2": {"workers": 2, "seconds": round(best["dist2"], 3)},
        "speedup": round(best["dist1"] / best["dist2"], 2),
        "overhead_vs_serial": round(
            best["dist1"] / best["serial"], 2
        ),
        "repeats": max(1, repeats),
    }
    if identity is not None:
        record["identity"] = identity
    return record


def smoke(out_dir: Optional[str] = None, echo=print) -> int:
    """The CI smoke: serial vs 2-worker fleet on a small chaos matrix,
    byte-identity and clean exits asserted, no timing gate."""
    cells = build_chaos_cells_for(SMOKE_CASE)
    base = out_dir or tempfile.mkdtemp(prefix="dist-smoke-")
    os.makedirs(base, exist_ok=True)
    dirs = _fresh_dirs(base, "smoke", ("serial", "dist2"))
    echo(f"[dist-smoke] {len(cells)} cells, serial vs 2-worker fleet "
         f"(artifacts under {base})")
    serial_s = run_serial(cells, dirs["serial"])
    dist_s = run_dist(cells, dirs["dist2"], 2)
    check_identity(dirs)
    echo(f"[dist-smoke] serial {serial_s:.2f}s, 2-worker fleet "
         f"{dist_s:.2f}s; tables.json and counters.json byte-identical")
    return 0


def bench_path() -> str:
    """Committed location of the benchmark record (repo root)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "BENCH_dist.json")


def load_record(path: Optional[str] = None) -> Dict:
    """Read the committed benchmark record."""
    with open(path or bench_path()) as fh:
        return json.load(fh)


def save_record(record: Dict, path: Optional[str] = None) -> str:
    """Write the benchmark record (sorted keys, trailing newline)."""
    path = path or bench_path()
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None) -> int:
    """The ``dist-bench`` subcommand: measure, print, optionally update."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness dist-bench",
        description=(
            "Distributed-campaign benchmark: byte-identity of the "
            "35-cell chaos matrix across serial and 2-worker runs, and "
            "wall-clock scaling of a sleep-calibrated matrix on fleets "
            "of 1 and 2 workers; gates the committed BENCH_dist.json."
        ),
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the small CI matrix (serial vs 2 workers, identity "
             "asserted, no timing gate) and exit",
    )
    parser.add_argument(
        "--out", metavar="DIR",
        help="base directory for the run artifacts (default: a temp "
             "directory); the CI smoke job uploads it",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement as BENCH_dist.json",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the measurement (plus the committed record, "
             "when present) to FILE — used by the nightly CI artifact",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(args.out)

    rec = measure(args.repeats, work_dir=args.out)
    print(
        f"dist-bench [{rec['case']['cells']} x "
        f"{rec['case']['work_ms']:.0f}ms cells]: "
        f"serial={rec['serial']['seconds']}s "
        f"1-worker={rec['dist1']['seconds']}s "
        f"2-worker={rec['dist2']['seconds']}s"
    )
    print(f"speedup 2 workers vs 1: {rec['speedup']:.2f}x "
          f"(gate floor {MIN_SPEEDUP}x); "
          f"1-worker overhead vs serial: {rec['overhead_vs_serial']:.2f}x")
    if rec.get("identity"):
        print(f"identity: {rec['identity']['cells']} chaos cells "
              "byte-identical across serial and 2-worker runs")
    if args.update:
        record = {"schema": 1, **rec}
        path = save_record(record)
        print(f"updated {path}")
    if args.json:
        try:
            committed = load_record()
        except FileNotFoundError:
            committed = None
        with open(args.json, "w") as fh:
            json.dump({"committed": committed, "measured": rec}, fh,
                      indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
