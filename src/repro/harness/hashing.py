"""Canonical content hashing shared by checkpoints and the serve cache.

One hashing convention, used everywhere a result must be addressed by
the inputs that produced it:

- the campaign runner's checkpoint identity
  (:meth:`repro.harness.runner.CampaignCell.config_hash`), where a
  checkpoint is valid for ``--resume`` only while the cell's hash still
  matches;
- the serving layer's content-addressed result cache
  (:class:`repro.serve.cache.ResultCache`), where two identical
  submissions must map to the same entry.

The hash is SHA-256 over the canonical JSON encoding of the payload
(sorted keys, ``repr`` fallback for non-JSON values), truncated to 16
hex characters — collision-safe at campaign/cache scale while keeping
filenames and log lines readable.
"""

from __future__ import annotations

import hashlib
import json

#: hex digits kept from the SHA-256 digest (64 bits)
HASH_WIDTH = 16


def canonical_blob(payload) -> str:
    """The canonical JSON encoding hashed by :func:`content_hash`."""
    return json.dumps(payload, sort_keys=True, default=repr)


def content_hash(payload) -> str:
    """Deterministic 16-hex-char content address of ``payload``.

    Equal payloads (up to JSON canonicalization) hash equal; any change
    to a value that survives the encoding changes the hash.
    """
    blob = canonical_blob(payload)
    return hashlib.sha256(blob.encode()).hexdigest()[:HASH_WIDTH]
