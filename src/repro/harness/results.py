"""Result tables for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of the positive entries of ``values`` (0.0 if none).

    Uses :func:`math.fsum` so the result depends only on the *multiset*
    of values, never their order: campaign row order may legally differ
    between a freshly computed table and one rehydrated from a
    checkpoint (serialization sorts row labels), and the byte-identical
    merge contract requires the geomean to agree to the last bit anyway.
    """
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(math.fsum(math.log(v) for v in vals) / len(vals))


@dataclass
class ExperimentTable:
    """A named table of per-benchmark series (one column per variant)."""

    name: str
    description: str
    columns: List[str]
    rows: Dict[str, List[float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: files written alongside the table (telemetry traces, counter dumps)
    artifacts: Dict[str, str] = field(default_factory=dict)
    #: False for tables whose rows are raw tallies (event histograms),
    #: where a geomean row would be meaningless
    show_geomean: bool = True

    def add_row(self, label: str, values: Sequence[float]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.name}: row {label!r} has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows[label] = list(values)

    def column(self, name: str) -> List[float]:
        idx = self.columns.index(name)
        return [vals[idx] for vals in self.rows.values()]

    def geomeans(self) -> List[float]:
        return [geomean(self.column(c)) for c in self.columns]

    def render(self, fmt: str = "{:.3f}", label_width: int = 14) -> str:
        col_w = max(9, max(len(c) for c in self.columns) + 1)
        out = [f"== {self.name}: {self.description} =="]
        header = " " * label_width + "".join(f"{c:>{col_w}}" for c in self.columns)
        out.append(header)
        for label, vals in self.rows.items():
            cells = "".join(f"{fmt.format(v):>{col_w}}" for v in vals)
            out.append(f"{label:<{label_width}}{cells}")
        if self.show_geomean:
            gm = self.geomeans()
            cells = "".join(f"{fmt.format(v):>{col_w}}" for v in gm)
            out.append(f"{'GEOMEAN':<{label_width}}{cells}")
        for note in self.notes:
            out.append(f"  note: {note}")
        for kind, path in self.artifacts.items():
            out.append(f"  artifact: {kind} -> {path}")
        return "\n".join(out)

    def render_bars(self, column: str, width: int = 40,
                    reference: float = 1.0) -> str:
        """Render one column as a horizontal bar chart (figure-like view).

        ``reference`` draws a marker at the normalization point (1.0 for
        the paper's normalized-performance figures).
        """
        values = self.column(column)
        vmax = max(list(values) + [reference]) or 1.0
        out = [f"== {self.name} / {column} =="]
        ref_pos = int(round(width * reference / vmax))
        for label, value in zip(self.rows, values):
            length = int(round(width * value / vmax))
            bar = list("#" * length + " " * (width - length))
            if 0 <= ref_pos < len(bar) and bar[ref_pos] == " ":
                bar[ref_pos] = "|"
            out.append(f"{label:<14}{''.join(bar)} {value:.3f}")
        gm = geomean(values)
        out.append(f"{'GEOMEAN':<14}{'':<{width}} {gm:.3f}")
        return "\n".join(out)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "description": self.description,
            "columns": self.columns,
            "rows": self.rows,
            "geomeans": self.geomeans(),
            "notes": self.notes,
            "artifacts": self.artifacts,
            "show_geomean": self.show_geomean,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentTable":
        """Rebuild a table from :meth:`to_dict` output (the campaign
        runner's checkpoint format); geomeans are recomputed, not read."""
        table = cls(
            name=data["name"],
            description=data["description"],
            columns=list(data["columns"]),
            notes=list(data.get("notes", [])),
            artifacts=dict(data.get("artifacts", {})),
            show_geomean=bool(data.get("show_geomean", True)),
        )
        for label, values in data["rows"].items():
            table.add_row(label, values)
        return table

    def with_row_prefix(self, prefix: str) -> "ExperimentTable":
        """A copy whose row labels carry ``prefix`` — how campaign shards
        that would otherwise collide (e.g. per-workload chaos tables all
        keyed by scheme) stay distinct when merged."""
        if not prefix:
            return self
        data = self.to_dict()
        data["rows"] = {
            f"{prefix}{label}": values
            for label, values in self.rows.items()
        }
        return type(self).from_dict(data)


def merge_tables(shards: Sequence[ExperimentTable]) -> ExperimentTable:
    """Merge shard tables of one experiment into a single table.

    Rows are concatenated **in shard order** (the caller fixes that order
    by cell key, never by completion order, so a parallel campaign merges
    deterministically); columns must agree; notes are deduplicated
    preserving first occurrence; artifacts merge with first-writer-wins.
    Duplicate row labels are an error — shards must partition the rows.
    """
    if not shards:
        raise ValueError("merge_tables needs at least one shard")
    first = shards[0]
    merged = ExperimentTable(
        name=first.name,
        description=first.description,
        columns=list(first.columns),
        show_geomean=first.show_geomean,
    )
    for shard in shards:
        if shard.columns != first.columns:
            raise ValueError(
                f"{first.name}: shard {shard.name!r} columns "
                f"{shard.columns} != {first.columns}"
            )
        for label, values in shard.rows.items():
            if label in merged.rows:
                raise ValueError(
                    f"{first.name}: duplicate row {label!r} across shards"
                )
            merged.add_row(label, values)
        for note in shard.notes:
            if note not in merged.notes:
                merged.notes.append(note)
        for kind, path in shard.artifacts.items():
            merged.artifacts.setdefault(kind, path)
    return merged
