"""Wire protocol between the campaign coordinator and its workers.

The protocol is deliberately dumb: JSON request/response bodies over
plain HTTP (stdlib only — ``urllib`` on the worker side,
``http.server`` on the coordinator side), four endpoints, no sessions,
no streaming.  Everything stateful lives in the coordinator's campaign
directory, which is exactly the local runner's checkpoint store, so the
protocol only has to move *work* and *checkpoints*:

``GET /campaign``
    handshake: protocol version, execution policy (timeout, retry
    knobs), lease duration.  Workers refuse to start on a version
    mismatch instead of corrupting a campaign.
``POST /lease``
    claim the next cell in canonical order.  The response carries the
    cell in wire form (below), its lease duration and the coordinator's
    adaptive-timeout hint.  ``{"wait": true}`` means everything is
    leased but not finished (the worker backs off and retries);
    ``{"done": true}`` means the matrix is complete (the worker exits).
``POST /heartbeat``
    extend the worker's leases; the response lists the keys the worker
    *still* holds — a key missing from it was stolen (lease expired)
    and the worker cancels that in-flight cell.
``POST /upload``
    deliver one finished cell as the exact checkpoint payload the local
    runner would have written (:func:`repro.harness.store.build_checkpoint`).
    The coordinator validates before persisting; duplicate uploads after
    a lease steal are deduplicated by result hash.

Cells cross the wire as their *construction recipe*, not as pickles: the
experiment function is named by ``module`` + ``qualname`` (every
campaign cell function is an importable module-level callable — the
same constraint the crash-isolation ``spawn`` path already imposes) and
the declared ``config_hash`` is recomputed after reconstruction, so a
worker can never silently run a different computation than the
coordinator hashed.  Consequence of the import-by-name design: a worker
executes whatever importable callable the coordinator names, so workers
must only be pointed at *trusted* coordinators (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import gzip
import importlib
import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

#: bumped on any incompatible wire change; both sides refuse mismatches
PROTOCOL_VERSION = 1

#: request bodies above this many bytes are gzip-compressed (checkpoint
#: uploads carry whole result tables; lease/heartbeat bodies stay tiny)
COMPRESS_THRESHOLD = 1024


class ProtocolError(Exception):
    """A malformed, unexpected or version-mismatched protocol payload."""


def cell_to_wire(cell) -> Dict:
    """The cell's construction recipe (see module docstring)."""
    return {
        "key": cell.key,
        "fn": {
            "module": cell.fn.__module__,
            "qualname": cell.fn.__qualname__,
        },
        "kwargs": cell.kwargs,
        "group": cell.group,
        "row_prefix": cell.row_prefix,
        "config_hash": cell.config_hash(),
    }


def cell_from_wire(data: Dict):
    """Reconstruct a :class:`repro.harness.runner.CampaignCell` from its
    wire form; raises :class:`ProtocolError` when the function cannot be
    imported or the recomputed config hash disagrees with the declared
    one (the worker must never run a cell it cannot re-derive)."""
    from .runner import CampaignCell

    try:
        fn_ref = data["fn"]
        module = importlib.import_module(fn_ref["module"])
        fn = module
        for part in fn_ref["qualname"].split("."):
            fn = getattr(fn, part)
    except (KeyError, TypeError, ImportError, AttributeError) as exc:
        raise ProtocolError(f"cannot resolve cell function: {exc}")
    try:
        cell = CampaignCell(
            key=data["key"],
            fn=fn,
            kwargs=dict(data.get("kwargs") or {}),
            group=data.get("group", ""),
            row_prefix=data.get("row_prefix", ""),
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed wire cell: {exc}")
    declared = data.get("config_hash")
    if cell.config_hash() != declared:
        raise ProtocolError(
            f"cell {cell.key!r}: reconstructed config hash "
            f"{cell.config_hash()} != declared {declared!r}"
        )
    return cell


def check_version(payload: Dict, side: str) -> None:
    """Refuse to interoperate across protocol versions."""
    version = payload.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{side} speaks protocol {version!r}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )


# ---------------------------------------------------------------------------
# HTTP helpers (worker side)
# ---------------------------------------------------------------------------

def _decode_response(resp) -> Dict:
    blob = resp.read()
    if resp.headers.get("Content-Encoding") == "gzip":
        blob = gzip.decompress(blob)
    try:
        return json.loads(blob.decode())
    except ValueError as exc:
        raise ProtocolError(f"non-JSON response body: {exc}")


def get_json(url: str, timeout: float = 10.0) -> Dict:
    """GET ``url``; returns the decoded JSON body.  Raises ``OSError``
    (connection problems) or :class:`ProtocolError` (bad payload)."""
    req = urllib.request.Request(url, method="GET")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return _decode_response(resp)


def post_json(
    url: str, payload: Dict, timeout: float = 10.0
) -> Tuple[int, Dict]:
    """POST ``payload`` as JSON to ``url``; returns ``(status, body)``.
    Large bodies (checkpoint uploads) are gzip-compressed with a
    ``Content-Encoding`` header.  HTTP error statuses are returned, not
    raised — the caller decides whether 409 (conflict) or 400 (rejected)
    is fatal; only transport failures raise ``OSError``."""
    blob = json.dumps(payload, sort_keys=True).encode()
    headers = {"Content-Type": "application/json"}
    if len(blob) > COMPRESS_THRESHOLD:
        blob = gzip.compress(blob, mtime=0)
        headers["Content-Encoding"] = "gzip"
    req = urllib.request.Request(url, data=blob, headers=headers,
                                 method="POST")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, _decode_response(resp)
    except urllib.error.HTTPError as exc:
        try:
            body = _decode_response(exc)
        except (ProtocolError, OSError):
            body = {"error": f"HTTP {exc.code}"}
        return exc.code, body


def read_request_json(handler) -> Optional[Dict]:
    """Decode a request body on the coordinator side (gzip-sniffed via
    the ``Content-Encoding`` header); ``None`` when malformed."""
    try:
        length = int(handler.headers.get("Content-Length", "0"))
        blob = handler.rfile.read(length)
        if handler.headers.get("Content-Encoding") == "gzip":
            blob = gzip.decompress(blob)
        data = json.loads(blob.decode())
    except (ValueError, OSError):
        return None
    return data if isinstance(data, dict) else None
