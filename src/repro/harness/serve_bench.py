"""Serving benchmark: throughput, latency percentiles, containment.

``python -m repro.harness serve-bench`` measures the multi-tenant
serving layer (:mod:`repro.serve`, docs/ROBUSTNESS.md "Serving") and
maintains the committed ``BENCH_serve.json``.  Two sections:

**throughput** — wall-clock-free kernels-per-spin through the real
asyncio :class:`~repro.serve.service.GpuService`: three tenants drain a
seeded open-loop schedule concurrently (in-process execution, so CPU
time is attributable), normalized against the same pure-Python
calibration spin the hot-loop and campaign benchmarks use and gated in
CI at :data:`GATE_TOLERANCE`.  The raw kernels/sec is recorded for
humans but never gated — it depends on the machine.

**containment** — the deterministic virtual-time experiment
(:func:`repro.serve.loadgen.containment_experiment`): the same seeded
arrival schedule twice, storm tenant clean vs. under ``fault.storm``
chaos + injected hangs.  Committed criteria: the storm tenant ends
quarantined by its circuit breaker with structured rejections, and
every steady tenant's p99 latency stays within ``p99_bound`` x its
no-chaos baseline.  Every number in this section is bit-reproducible
from the seed — the CI gate asserts digest equality, not tolerance.

Regenerate the committed record (from the repo root)::

    PYTHONPATH=src python -m repro.harness serve-bench --update
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Dict, Optional

from .hotloop_bench import calibration_spin

#: relative tolerance of the CI gate on the normalized throughput
GATE_TOLERANCE = 0.25

#: the throughput case: three tenants draining seeded open-loop
#: schedules through the asyncio service concurrently
THROUGHPUT_CASE = {
    "tenants": 3,
    "requests_per_tenant": 20,
    "seed_pool": 8,
    "repeat_rate": 0.35,
    "max_streams": 2,
    "seed": 0,
}

#: the containment case (see repro.serve.loadgen for the experiment)
CONTAINMENT_CASE = {
    "seed": 0,
    "p99_bound": 1.5,
}


def _throughput_submissions(case: Dict):
    """The seeded request list (tenant, spec) for one throughput run."""
    from repro.serve.loadgen import open_loop_arrivals, steady_menu

    submissions = []
    for i in range(case["tenants"]):
        name = f"bench-{i}"
        arrivals = open_loop_arrivals(
            case["seed"],
            name,
            steady_menu(
                seed_pool=case["seed_pool"], base_seed=1000 * (i + 1)
            ),
            case["requests_per_tenant"],
            mean_gap_cycles=10_000.0,
            repeat_rate=case["repeat_rate"],
        )
        submissions.extend((name, a.spec) for a in arrivals)
    return submissions


async def _drain_service(case: Dict):
    """One cold service draining the whole schedule; returns (service,
    results)."""
    from repro.serve import GpuService, TenantPolicy

    service = GpuService(isolated=False, max_attempts=2)
    policy = TenantPolicy(
        max_streams=case["max_streams"],
        # the throughput run floods the service in one burst and every
        # kernel faults by design (demand paging); admission shedding
        # and budgets are the containment experiment's story, not this
        # one
        max_queue_depth=10_000,
        fault_budget=10**9,
    )
    for i in range(case["tenants"]):
        service.register_tenant(f"bench-{i}", policy)
    results = await service.drain(_throughput_submissions(case))
    return service, results


def measure_throughput(
    repeats: int = 3, case: Optional[Dict] = None
) -> Dict:
    """Best-of-``repeats`` normalized throughput measurement.

    Every repeat uses a fresh (cold-cache) service so cache warmup
    cannot flatter later runs; spins and drains alternate so a load
    shift biases both halves of the ratio the same way.
    """
    from repro.serve.core import ServeRejection

    case = dict(THROUGHPUT_CASE, **(case or {}))
    runs = []
    spins = []
    walls = []
    executed = hits = failed = 0
    for _ in range(max(1, repeats)):
        spins.append(calibration_spin())
        w0 = time.time()
        t0 = time.process_time()
        service, results = asyncio.run(_drain_service(case))
        runs.append(time.process_time() - t0)
        walls.append(time.time() - w0)
        executed = sum(
            1 for r in results
            if not isinstance(r, ServeRejection) and not r.cached and r.ok
        )
        hits = sum(
            1 for r in results
            if not isinstance(r, ServeRejection) and r.cached
        )
        failed = sum(
            1 for r in results
            if not isinstance(r, ServeRejection) and not r.ok
        )
    best_run = min(runs)
    best_spin = min(spins)
    best_wall = min(walls)
    requests = case["tenants"] * case["requests_per_tenant"]
    return {
        "case": dict(case),
        "requests": requests,
        "executed_kernels": executed,
        "cache_hits": hits,
        "failed": failed,
        "raw_seconds": round(best_run, 4),
        "spin_seconds": round(best_spin, 4),
        "normalized": round(best_run / best_spin, 4),
        "kernels_per_spin": round(executed / (best_run / best_spin), 1),
        "kernels_per_sec_wall": round(executed / best_wall, 1),
        "repeats": max(1, repeats),
    }


def measure_containment(case: Optional[Dict] = None) -> Dict:
    """The committed containment section: deterministic, so recorded
    exactly (digests included) rather than within a tolerance."""
    from repro.serve import containment_experiment

    case = dict(CONTAINMENT_CASE, **(case or {}))
    rep = containment_experiment(
        case.pop("seed"), p99_bound=case.pop("p99_bound"), **case
    )
    chaotic = rep["chaotic"]
    baseline = rep["baseline"]
    return {
        "seed": rep["seed"],
        "p99_bound": rep["p99_bound"],
        "contained": rep["contained"],
        "steady": rep["steady"],
        "storm_quarantines": rep["storm_quarantines"],
        "storm_breaker": rep["storm_breaker"],
        "storm_rejections": rep["storm_rejections"],
        "latency_cycles": {
            name: {
                "p50": t["p50_cycles"],
                "p99": t["p99_cycles"],
            }
            for name, t in sorted(chaotic["tenants"].items())
        },
        "cache_hit_rate": round(chaotic["cache"]["hit_rate"], 4),
        "slo": chaotic["slo"],
        "makespan_cycles": chaotic["makespan_cycles"],
        "baseline_digest": baseline["digest"],
        "chaotic_digest": chaotic["digest"],
    }


def measure(repeats: int = 3, quick: bool = False) -> Dict:
    """Measure both sections and fold the record."""
    tcase = {"requests_per_tenant": 8} if quick else None
    ccase = (
        {"requests_per_tenant": 40, "storm_requests": 20} if quick else None
    )
    return {
        "throughput": measure_throughput(repeats, tcase),
        "containment": measure_containment(ccase),
    }


def bench_path() -> str:
    """Committed location of the benchmark record (repo root)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "BENCH_serve.json")


def load_record(path: Optional[str] = None) -> Dict:
    """Read the committed benchmark record."""
    with open(path or bench_path()) as fh:
        return json.load(fh)


def save_record(record: Dict, path: Optional[str] = None) -> str:
    """Write the benchmark record (sorted keys, trailing newline)."""
    path = path or bench_path()
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None) -> int:
    """The ``serve-bench`` subcommand: measure, print, maybe update."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness serve-bench",
        description=(
            "Multi-tenant serving benchmark: normalized throughput "
            "through the asyncio service plus the deterministic "
            "fault-containment experiment; gates the committed "
            "BENCH_serve.json."
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller schedules (CI smoke); never use with --update",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement as BENCH_serve.json",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the measurement (plus the committed record, "
             "when present) to FILE — used by the CI artifact",
    )
    args = parser.parse_args(argv)
    if args.update and args.quick:
        parser.error("--update records the full case; drop --quick")

    rec = measure(args.repeats, quick=args.quick)
    t = rec["throughput"]
    print(
        f"serve throughput [{t['requests']} requests, "
        f"{t['executed_kernels']} executed, {t['cache_hits']} cached]: "
        f"raw={t['raw_seconds']}s spin={t['spin_seconds']}s "
        f"normalized={t['normalized']} "
        f"kernels/spin={t['kernels_per_spin']} "
        f"kernels/sec(wall)={t['kernels_per_sec_wall']}"
    )
    c = rec["containment"]
    print(
        f"serve containment [seed {c['seed']}]: "
        f"contained={c['contained']} "
        f"storm={c['storm_breaker']}/{c['storm_quarantines']} trips "
        f"rejections={c['storm_rejections']} "
        f"cache_hit_rate={c['cache_hit_rate']}"
    )
    for name, s in sorted(c["steady"].items()):
        print(
            f"  {name}: p99 {s['chaotic_p99_cycles']:.0f} vs baseline "
            f"{s['baseline_p99_cycles']:.0f} cycles "
            f"(ratio {s['ratio']:.2f}, bound {c['p99_bound']})"
        )
    if args.update:
        record = {"schema": 1, **rec}
        path = save_record(record)
        print(f"updated {path}")
    if args.json:
        try:
            committed = load_record()
        except FileNotFoundError:
            committed = None
        with open(args.json, "w") as fh:
            json.dump({"committed": committed, "measured": rec}, fh,
                      indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
