"""Serving benchmark: throughput, containment, weighted-fair isolation.

``python -m repro.harness serve-bench`` measures the multi-tenant
serving layer (:mod:`repro.serve`, docs/SERVING.md) and maintains the
committed ``BENCH_serve.json``.  Three committed sections:

**throughput** — wall-clock-free kernels-per-spin through the real
asyncio :class:`~repro.serve.service.GpuService`: three tenants drain a
seeded open-loop schedule concurrently (in-process execution, so CPU
time is attributable), normalized against the same pure-Python
calibration spin the hot-loop and campaign benchmarks use and gated in
CI at :data:`GATE_TOLERANCE`.  The raw kernels/sec is recorded for
humans but never gated — it depends on the machine.

**containment** — the deterministic virtual-time experiment
(:func:`repro.serve.loadgen.containment_experiment`): the same seeded
arrival schedule twice, storm tenant clean vs. under ``fault.storm``
chaos + injected hangs.  Committed criteria: the storm tenant ends
quarantined by its circuit breaker with structured rejections, and
every steady tenant's p99 latency stays within ``p99_bound`` x its
no-chaos baseline.  Every number in this section is bit-reproducible
from the seed — the CI gate asserts digest equality, not tolerance.

**fairness** — the deterministic closed-loop experiment
(:func:`repro.serve.loadgen.fairness_experiment`): weight-2 steady
tenants with think time vs. a weight-1 zero-think storm tenant
flooding unique specs, three runs from one seed (no storm / storm
under weighted-fair grants / storm under the legacy FIFO
counterfactual).  Committed criteria: under DRR every steady tenant's
p99 stays within ``p99_bound`` x its no-storm baseline, steady cache
partitions take **zero** storm-induced evictions, and the storm tenant
still completes work.  Bit-reproducible, digest-gated like
containment; the FIFO ratios are recorded for contrast, never gated.

``--wire`` adds an *uncommitted* wall-clock section: the same
fairness-shaped closed-loop load driven through the real NDJSON socket
daemon (:mod:`repro.serve.wire`) by per-client threads — two phases
(steady alone, then steady + storm) so the storm-induced p99 inflation
over the wire is visible.  Wall-clock numbers are machine-dependent,
so this section is printed and exported via ``--json`` but never
recorded or gated.

Regenerate the committed record (from the repo root)::

    PYTHONPATH=src python -m repro.harness serve-bench --update
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Dict, List, Optional

from .hotloop_bench import calibration_spin

#: relative tolerance of the CI gate on the normalized throughput
GATE_TOLERANCE = 0.25

#: the throughput case: three tenants draining seeded open-loop
#: schedules through the asyncio service concurrently
THROUGHPUT_CASE = {
    "tenants": 3,
    "requests_per_tenant": 20,
    "seed_pool": 8,
    "repeat_rate": 0.35,
    "max_streams": 2,
    "seed": 0,
}

#: the containment case (see repro.serve.loadgen for the experiment)
CONTAINMENT_CASE = {
    "seed": 0,
    "p99_bound": 1.5,
}

#: the fairness case (see repro.serve.loadgen for the experiment)
FAIRNESS_CASE = {
    "seed": 0,
    "p99_bound": 1.5,
}

#: the --wire case: fairness-shaped closed-loop load over the socket
#: daemon (wall clock, never committed)
WIRE_CASE = {
    "steady_tenants": 2,
    "clients_per_tenant": 2,
    "requests_per_client": 6,
    "think_mean_seconds": 0.002,
    "storm_clients": 2,
    "storm_requests_per_client": 10,
    "gpu_slots": 2,
    "seed": 0,
}


def _throughput_submissions(case: Dict):
    """The seeded request list (tenant, spec) for one throughput run."""
    from repro.serve.loadgen import open_loop_arrivals, steady_menu

    submissions = []
    for i in range(case["tenants"]):
        name = f"bench-{i}"
        arrivals = open_loop_arrivals(
            case["seed"],
            name,
            steady_menu(
                seed_pool=case["seed_pool"], base_seed=1000 * (i + 1)
            ),
            case["requests_per_tenant"],
            mean_gap_cycles=10_000.0,
            repeat_rate=case["repeat_rate"],
        )
        submissions.extend((name, a.spec) for a in arrivals)
    return submissions


async def _drain_service(case: Dict):
    """One cold service draining the whole schedule; returns (service,
    results)."""
    from repro.serve import GpuService, TenantPolicy

    service = GpuService(isolated=False, max_attempts=2)
    policy = TenantPolicy(
        max_streams=case["max_streams"],
        # the throughput run floods the service in one burst and every
        # kernel faults by design (demand paging); admission shedding
        # and budgets are the containment experiment's story, not this
        # one
        max_queue_depth=10_000,
        fault_budget=10**9,
    )
    for i in range(case["tenants"]):
        service.register_tenant(f"bench-{i}", policy)
    results = await service.drain(_throughput_submissions(case))
    return service, results


def measure_throughput(
    repeats: int = 3, case: Optional[Dict] = None
) -> Dict:
    """Best-of-``repeats`` normalized throughput measurement.

    Every repeat uses a fresh (cold-cache) service so cache warmup
    cannot flatter later runs; spins and drains alternate so a load
    shift biases both halves of the ratio the same way.
    """
    from repro.serve.core import ServeRejection

    case = dict(THROUGHPUT_CASE, **(case or {}))
    runs = []
    spins = []
    walls = []
    executed = hits = failed = 0
    for _ in range(max(1, repeats)):
        spins.append(calibration_spin())
        w0 = time.time()
        t0 = time.process_time()
        service, results = asyncio.run(_drain_service(case))
        runs.append(time.process_time() - t0)
        walls.append(time.time() - w0)
        executed = sum(
            1 for r in results
            if not isinstance(r, ServeRejection) and not r.cached and r.ok
        )
        hits = sum(
            1 for r in results
            if not isinstance(r, ServeRejection) and r.cached
        )
        failed = sum(
            1 for r in results
            if not isinstance(r, ServeRejection) and not r.ok
        )
    best_run = min(runs)
    best_spin = min(spins)
    best_wall = min(walls)
    requests = case["tenants"] * case["requests_per_tenant"]
    return {
        "case": dict(case),
        "requests": requests,
        "executed_kernels": executed,
        "cache_hits": hits,
        "failed": failed,
        "raw_seconds": round(best_run, 4),
        "spin_seconds": round(best_spin, 4),
        "normalized": round(best_run / best_spin, 4),
        "kernels_per_spin": round(executed / (best_run / best_spin), 1),
        "kernels_per_sec_wall": round(executed / best_wall, 1),
        "repeats": max(1, repeats),
    }


def measure_containment(case: Optional[Dict] = None) -> Dict:
    """The committed containment section: deterministic, so recorded
    exactly (digests included) rather than within a tolerance."""
    from repro.serve import containment_experiment

    case = dict(CONTAINMENT_CASE, **(case or {}))
    rep = containment_experiment(
        case.pop("seed"), p99_bound=case.pop("p99_bound"), **case
    )
    chaotic = rep["chaotic"]
    baseline = rep["baseline"]
    return {
        "seed": rep["seed"],
        "p99_bound": rep["p99_bound"],
        "contained": rep["contained"],
        "steady": rep["steady"],
        "storm_quarantines": rep["storm_quarantines"],
        "storm_breaker": rep["storm_breaker"],
        "storm_rejections": rep["storm_rejections"],
        "latency_cycles": {
            name: {
                "p50": t["p50_cycles"],
                "p99": t["p99_cycles"],
            }
            for name, t in sorted(chaotic["tenants"].items())
        },
        "cache_hit_rate": round(chaotic["cache"]["hit_rate"], 4),
        "slo": chaotic["slo"],
        "makespan_cycles": chaotic["makespan_cycles"],
        "baseline_digest": baseline["digest"],
        "chaotic_digest": chaotic["digest"],
    }


def measure_fairness(case: Optional[Dict] = None) -> Dict:
    """The committed fairness section: deterministic closed-loop runs,
    recorded exactly (digests included) rather than within a
    tolerance."""
    from repro.serve import fairness_experiment

    case = dict(FAIRNESS_CASE, **(case or {}))
    rep = fairness_experiment(
        case.pop("seed"), p99_bound=case.pop("p99_bound"), **case
    )
    contended = rep["contended"]
    return {
        "seed": rep["seed"],
        "p99_bound": rep["p99_bound"],
        "fair_contained": rep["fair_contained"],
        "storm_completions": rep["storm_completions"],
        "steady": rep["fair"],
        "cache_hit_rate": round(contended["cache"]["hit_rate"], 4),
        "makespan_cycles": contended["makespan_cycles"],
        "baseline_digest": rep["baseline"]["digest"],
        "contended_digest": contended["digest"],
        "fifo_digest": rep["fifo"]["digest"],
    }


def _wire_percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0 if empty)."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def _wire_client_loop(
    address, tenant: str, client_id: int, menu: List[Dict],
    requests: int, think_mean_s: float, seed: int, out: List,
):
    """One closed-loop wire client on its own thread: think, submit,
    block for the result, repeat.  Appends (tenant, latencies_s,
    completed, rejected) to ``out``."""
    import random

    from repro.serve import ServeClient
    from repro.serve.core import ServeRejection

    rng = random.Random(f"{seed}/{tenant}/{client_id}")
    latencies: List[float] = []
    completed = rejected = 0
    with ServeClient(address) as client:
        for i in range(requests):
            if think_mean_s > 0:
                time.sleep(min(0.05, rng.expovariate(1.0 / think_mean_s)))
            spec = dict(menu[i % len(menu)])
            t0 = time.perf_counter()
            try:
                client.request(tenant, spec, wait=60.0)
                latencies.append(time.perf_counter() - t0)
                completed += 1
            except ServeRejection:
                rejected += 1
    out.append((tenant, latencies, completed, rejected))


def _wire_phase(case: Dict, storm: bool) -> Dict:
    """One wall-clock phase over the wire: fresh daemon on a temp unix
    socket, per-client threads, per-tenant latency stats."""
    import tempfile
    import threading

    from repro.serve import GpuService, ServeClient, ServeDaemon
    from repro.serve.loadgen import steady_menu, storm_flood_menu

    with tempfile.TemporaryDirectory() as tmp:
        service = GpuService(
            isolated=False, gpu_slots=case["gpu_slots"]
        )
        with ServeDaemon(service, path=f"{tmp}/serve.sock") as daemon:
            with ServeClient(daemon.address) as admin:
                for i in range(case["steady_tenants"]):
                    admin.register(
                        f"steady-{i}", weight=2, max_streams=2,
                        max_queue_depth=32, fault_budget=10**9,
                    )
                if storm:
                    admin.register(
                        "storm", weight=1, max_streams=4,
                        max_queue_depth=64, fault_budget=10**9,
                    )
            out: List = []
            threads = []
            for i in range(case["steady_tenants"]):
                menu = steady_menu(base_seed=100 * (i + 1))
                for c in range(case["clients_per_tenant"]):
                    threads.append(threading.Thread(
                        target=_wire_client_loop,
                        args=(daemon.address, f"steady-{i}", c, menu,
                              case["requests_per_client"],
                              case["think_mean_seconds"],
                              case["seed"], out),
                    ))
            if storm:
                for c in range(case["storm_clients"]):
                    threads.append(threading.Thread(
                        target=_wire_client_loop,
                        args=(daemon.address, "storm", c,
                              storm_flood_menu(c),
                              case["storm_requests_per_client"],
                              0.0, case["seed"], out),
                    ))
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            with ServeClient(daemon.address) as admin:
                stats = admin.stats()
    tenants: Dict[str, Dict] = {}
    for tenant, latencies, completed, rejected in out:
        agg = tenants.setdefault(
            tenant, {"latencies": [], "completed": 0, "rejected": 0}
        )
        agg["latencies"].extend(latencies)
        agg["completed"] += completed
        agg["rejected"] += rejected
    report = {}
    for tenant, agg in sorted(tenants.items()):
        lat = sorted(agg["latencies"])
        report[tenant] = {
            "completed": agg["completed"],
            "rejected": agg["rejected"],
            "p50_ms": round(_wire_percentile(lat, 0.50) * 1e3, 2),
            "p99_ms": round(_wire_percentile(lat, 0.99) * 1e3, 2),
        }
    return {
        "tenants": report,
        "wall_seconds": round(wall, 3),
        "wire_frames": {
            "in": stats["wire"]["frames_in"],
            "out": stats["wire"]["frames_out"],
        },
    }


def measure_wire(case: Optional[Dict] = None) -> Dict:
    """The ``--wire`` section: the fairness shape driven through the
    real socket daemon, wall clock.  Never committed or gated — the
    point is exercising the wire path end to end and showing the
    storm's p99 effect on a live daemon."""
    case = dict(WIRE_CASE, **(case or {}))
    baseline = _wire_phase(case, storm=False)
    contended = _wire_phase(case, storm=True)
    steady = {}
    completed_all = True
    expect = case["clients_per_tenant"] * case["requests_per_client"]
    for name, stats in contended["tenants"].items():
        if name == "storm":
            continue
        base_p99 = baseline["tenants"][name]["p99_ms"]
        ratio = stats["p99_ms"] / base_p99 if base_p99 else 0.0
        completed_all = completed_all and stats["completed"] == expect
        steady[name] = {
            "baseline_p99_ms": base_p99,
            "storm_p99_ms": stats["p99_ms"],
            "ratio": round(ratio, 3),
            "completed": stats["completed"],
        }
    return {
        "case": dict(case),
        "steady": steady,
        "steady_completed_all": completed_all,
        "storm_completed": contended["tenants"]
        .get("storm", {}).get("completed", 0),
        "baseline": baseline,
        "contended": contended,
    }


def measure(repeats: int = 3, quick: bool = False) -> Dict:
    """Measure the committed sections and fold the record."""
    tcase = {"requests_per_tenant": 8} if quick else None
    ccase = (
        {"requests_per_tenant": 40, "storm_requests": 20} if quick else None
    )
    fcase = (
        {"clients_per_tenant": 2, "requests_per_client": 10,
         "storm_clients": 2, "storm_requests_per_client": 12}
        if quick else None
    )
    return {
        "throughput": measure_throughput(repeats, tcase),
        "containment": measure_containment(ccase),
        "fairness": measure_fairness(fcase),
    }


def bench_path() -> str:
    """Committed location of the benchmark record (repo root)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "BENCH_serve.json")


def load_record(path: Optional[str] = None) -> Dict:
    """Read the committed benchmark record."""
    with open(path or bench_path()) as fh:
        return json.load(fh)


def save_record(record: Dict, path: Optional[str] = None) -> str:
    """Write the benchmark record (sorted keys, trailing newline)."""
    path = path or bench_path()
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None) -> int:
    """The ``serve-bench`` subcommand: measure, print, maybe update."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness serve-bench",
        description=(
            "Multi-tenant serving benchmark: normalized throughput "
            "through the asyncio service plus the deterministic "
            "fault-containment experiment; gates the committed "
            "BENCH_serve.json."
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller schedules (CI smoke); never use with --update",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement as BENCH_serve.json",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the measurement (plus the committed record, "
             "when present) to FILE — used by the CI artifact",
    )
    parser.add_argument(
        "--wire", action="store_true",
        help="also drive the fairness-shaped closed-loop load through "
             "the real socket daemon (wall clock; printed and exported "
             "via --json, never committed or gated)",
    )
    args = parser.parse_args(argv)
    if args.update and args.quick:
        parser.error("--update records the full case; drop --quick")

    rec = measure(args.repeats, quick=args.quick)
    t = rec["throughput"]
    print(
        f"serve throughput [{t['requests']} requests, "
        f"{t['executed_kernels']} executed, {t['cache_hits']} cached]: "
        f"raw={t['raw_seconds']}s spin={t['spin_seconds']}s "
        f"normalized={t['normalized']} "
        f"kernels/spin={t['kernels_per_spin']} "
        f"kernels/sec(wall)={t['kernels_per_sec_wall']}"
    )
    c = rec["containment"]
    print(
        f"serve containment [seed {c['seed']}]: "
        f"contained={c['contained']} "
        f"storm={c['storm_breaker']}/{c['storm_quarantines']} trips "
        f"rejections={c['storm_rejections']} "
        f"cache_hit_rate={c['cache_hit_rate']}"
    )
    for name, s in sorted(c["steady"].items()):
        print(
            f"  {name}: p99 {s['chaotic_p99_cycles']:.0f} vs baseline "
            f"{s['baseline_p99_cycles']:.0f} cycles "
            f"(ratio {s['ratio']:.2f}, bound {c['p99_bound']})"
        )
    f = rec["fairness"]
    print(
        f"serve fairness [seed {f['seed']}]: "
        f"contained={f['fair_contained']} "
        f"storm_completions={f['storm_completions']} "
        f"cache_hit_rate={f['cache_hit_rate']}"
    )
    for name, s in sorted(f["steady"].items()):
        print(
            f"  {name}: p99 {s['storm_p99_cycles']:.0f} vs baseline "
            f"{s['baseline_p99_cycles']:.0f} cycles "
            f"(fair ratio {s['ratio']:.2f}, fifo ratio "
            f"{s['fifo_ratio']:.2f}, bound {f['p99_bound']}) "
            f"induced_evictions={s['storm_induced_evictions']}"
        )
    wire = None
    if args.wire:
        wire = measure_wire(
            {"requests_per_client": 4, "storm_requests_per_client": 6}
            if args.quick else None
        )
        print(
            f"serve wire [wall clock, uncommitted]: "
            f"steady_completed_all={wire['steady_completed_all']} "
            f"storm_completed={wire['storm_completed']} "
            f"contended_wall={wire['contended']['wall_seconds']}s"
        )
        for name, s in sorted(wire["steady"].items()):
            print(
                f"  {name}: p99 {s['storm_p99_ms']}ms vs baseline "
                f"{s['baseline_p99_ms']}ms (ratio {s['ratio']})"
            )
    if args.update:
        record = {"schema": 2, **rec}
        path = save_record(record)
        print(f"updated {path}")
    if args.json:
        try:
            committed = load_record()
        except FileNotFoundError:
            committed = None
        measured = dict(rec)
        if wire is not None:
            measured["wire"] = wire
        with open(args.json, "w") as fh:
            json.dump({"committed": committed, "measured": measured},
                      fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
