"""Distributed campaign execution: work-stealing coordinator + workers.

The PR 3 campaign runner shards a matrix across local supervisor
threads; this module generalizes the same supervisor/checkpoint
protocol across *machines* while keeping every determinism guarantee:

**Coordinator** (:class:`CampaignCoordinator`).  A dumb HTTP server
(stdlib ``http.server``, JSON bodies — :mod:`repro.harness.distproto`)
that owns the cell matrix and the campaign directory.  It runs no cells
itself; it leases cells to workers **in canonical cell order**, extends
leases on heartbeats, re-leases (steals) cells whose lease expired — a
wedged or dead worker delays only its own cells — and persists
validated checkpoint uploads through the same
:mod:`repro.harness.store` layer the local runner writes through.  The
campaign directory *is* the local runner's checkpoint store, so
``--resume`` restores a half-finished distributed campaign (same torn-
write corroboration), a serial run can finish a campaign a fleet
started, and vice versa.

**Worker** (:class:`DistWorker`, ``python -m repro.harness worker
--coordinator URL``).  N of today's supervisors pointed at a remote
queue: each supervisor leases a cell, reconstructs it from the wire
recipe (import-by-name, config hash re-verified), runs it through the
exact :func:`repro.harness.runner.execute_cell` retry/backoff/reseed
loop the local runner uses, and uploads the exact checkpoint payload
the local runner would have written.  A shared heartbeat thread extends
leases; a cell missing from the heartbeat response was stolen and its
in-flight child is terminated via the crash-isolation cancel event.
When the coordinator stays unreachable past the miss budget the worker
cancels everything and exits with code 3 — losing the coordinator can
never wedge a fleet.

**Determinism.**  Cells are keyed by the existing config hash; uploads
are validated with the same :func:`repro.harness.store.validate_checkpoint`
the local resume path trusts; duplicate uploads after a lease steal are
deduplicated by :func:`repro.harness.store.result_hash` (status+table
only — durations legitimately differ), and a *mismatched* duplicate is
a determinism violation: counted (``harness.dist.upload_conflicts``),
rejected with 409, first write wins.  The merged ``tables.json`` and
``counters.json`` are assembled by the shared
:func:`repro.harness.runner.merge_outcomes` in canonical cell order, so
any worker count on any number of machines is byte-identical to the
serial runner (``ops_counters.json`` carries the run-shape
``harness.campaign.*``/``harness.dist.*`` counters that legitimately
differ).  See docs/ROBUSTNESS.md for the protocol and failure modes.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence

from repro.telemetry.counters import CounterRegistry, merge_dumps

from . import store
from .distproto import (
    PROTOCOL_VERSION,
    ProtocolError,
    cell_from_wire,
    cell_to_wire,
    check_version,
    get_json,
    post_json,
    read_request_json,
)
from .isolation import ExperimentFailure
from .results import ExperimentTable
from .runner import (
    CampaignCell,
    CampaignResult,
    CellOutcome,
    ExecutionPolicy,
    TimeoutHistory,
    _default_echo,
    derive_adaptive_timeouts,
    dispatch_backend,
    execute_cell,
    load_timeout_history,
    merge_outcomes,
    restore_outcome,
)

#: default lease duration; a worker heartbeats at a third of this, so a
#: dead worker's cells are re-leased after at most one lease period
DEFAULT_LEASE_S = 15.0

#: consecutive failed heartbeats before a worker declares the
#: coordinator lost, cancels its in-flight cells and exits (code 3)
HEARTBEAT_MISS_BUDGET = 3

#: worker exit codes (the coordinator-crash test asserts these)
EXIT_OK = 0
EXIT_PROTOCOL = 2
EXIT_COORDINATOR_LOST = 3

#: every ``harness.dist.*`` rollup the coordinator maintains
#: (docs/OBSERVABILITY.md documents each)
DIST_COUNTER_LEAVES = (
    "leases", "steals", "lease_expiries", "uploads", "upload_retries",
    "upload_dedup", "upload_conflicts", "upload_rejected", "heartbeats",
    "workers",
)


def outcome_from_checkpoint(cell: CampaignCell, data: Dict) -> CellOutcome:
    """Rehydrate a validated checkpoint payload (an upload, or a file
    restored from disk) into the outcome the local runner would have
    produced."""
    if data["status"] == "ok":
        table: Optional[ExperimentTable] = (
            ExperimentTable.from_dict(data["table"])
        )
        failure: Optional[ExperimentFailure] = None
    else:
        table = None
        rec = data["failure"]
        failure = ExperimentFailure(
            name=cell.key,
            kind=rec.get("kind", "Unknown"),
            message=rec.get("message", ""),
            traceback_text=rec.get("traceback", "") or "",
            attempts=int(rec.get("attempts", 1)),
            kwargs=dict(cell.kwargs),
        )
    return CellOutcome(
        cell=cell,
        table=table,
        failure=failure,
        ledger=list(data.get("ledger", [])),
        duration_s=float(data.get("duration_s", 0.0)),
    )


class _CellState:
    """Coordinator-side bookkeeping for one cell."""

    __slots__ = ("cell", "status", "worker", "expiry", "result_hash")

    def __init__(self, cell: CampaignCell) -> None:
        self.cell = cell
        self.status = "pending"  # pending | leased | done
        self.worker: Optional[str] = None
        self.expiry: Optional[float] = None
        self.result_hash: Optional[str] = None


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter; all campaign logic lives on the coordinator."""

    protocol_version = "HTTP/1.1"

    @property
    def coord(self) -> "CampaignCoordinator":
        return self.server.coordinator  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: D102 - silence stderr spam
        pass

    def _reply(self, status: int, payload: Dict) -> None:
        blob = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path == "/campaign":
            self._reply(200, self.coord.describe())
        elif self.path == "/status":
            self._reply(200, self.coord.status())
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self):  # noqa: N802 - http.server API
        body = read_request_json(self)
        if body is None:
            self._reply(400, {"error": "malformed JSON request body"})
            return
        if self.path == "/lease":
            self._reply(200, self.coord.lease(str(body.get("worker"))))
        elif self.path == "/heartbeat":
            self._reply(200, self.coord.heartbeat(
                str(body.get("worker")), list(body.get("keys") or [])
            ))
        elif self.path == "/upload":
            status, payload = self.coord.upload(
                str(body.get("worker")),
                body.get("checkpoint"),
                int(body.get("upload_attempt", 1)),
            )
            self._reply(status, payload)
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})


class CampaignCoordinator:
    """Owns a campaign matrix and serves it to workers (module
    docstring).  ``run()`` blocks until the matrix completes and returns
    the same :class:`CampaignResult` the local runner would."""

    def __init__(
        self,
        cells: Sequence[CampaignCell],
        *,
        out_dir: str,
        resume: bool = False,
        timeout: Optional[float] = None,
        adaptive_timeout: bool = True,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        lease_seconds: float = DEFAULT_LEASE_S,
        host: str = "127.0.0.1",
        port: int = 0,
        echo: Callable[[str], None] = _default_echo,
    ) -> None:
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate cell keys: {dupes}")
        if out_dir is None:
            raise ValueError(
                "the coordinator requires an out_dir: the campaign "
                "directory is the checkpoint store workers upload into"
            )
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        self.cells = list(cells)
        self.out_dir = out_dir
        self.resume = resume
        self.timeout = timeout
        self.adaptive_timeout = adaptive_timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.lease_seconds = lease_seconds
        self.host = host
        self.port = port
        self._echo = echo
        self._lock = threading.Lock()
        self._complete = threading.Event()
        self._states: Dict[str, _CellState] = {
            cell.key: _CellState(cell) for cell in self.cells
        }
        self._outcomes: Dict[str, CellOutcome] = {}
        self._workers: set = set()
        #: workers that have been *told* the matrix is done (via /lease
        #: or /heartbeat) — run() keeps serving until this covers
        #: _workers, so fleet workers exit 0 instead of mistaking the
        #: natural end of the campaign for a coordinator crash
        self._done_acked: set = set()
        self._history = TimeoutHistory()
        self._cell_timeouts: Dict[str, float] = {}
        self._server: Optional[ThreadingHTTPServer] = None
        self.url: Optional[str] = None
        self.counters = CounterRegistry()
        self.counters.metadata.update(
            campaign="harness", workers="dist", resume=resume,
            backend="scalar",
        )
        for leaf in (
            "cells", "completed", "skipped", "failed", "attempts",
            "retries", "backoff_seconds", "degraded", "vectorized",
            "fallback", "torn", "adaptive_timeouts",
        ):
            self.counters.counter(f"harness.campaign.{leaf}")
        for leaf in DIST_COUNTER_LEAVES:
            self.counters.counter(f"harness.dist.{leaf}")

    # -- request handlers (called from server threads) ---------------------

    def describe(self) -> Dict:
        """``GET /campaign``: the handshake payload."""
        with self._lock:
            return {
                "protocol": PROTOCOL_VERSION,
                "lease_seconds": self.lease_seconds,
                "policy": {
                    "timeout": self.timeout,
                    "max_attempts": self.max_attempts,
                    "backoff_base": self.backoff_base,
                    "backoff_cap": self.backoff_cap,
                },
                "cells": len(self.cells),
                "done": len(self._outcomes),
            }

    def status(self) -> Dict:
        """``GET /status``: progress snapshot."""
        with self._lock:
            by_status: Dict[str, int] = {
                "pending": 0, "leased": 0, "done": 0
            }
            for state in self._states.values():
                by_status[state.status] += 1
            return {
                "protocol": PROTOCOL_VERSION,
                "complete": self._complete.is_set(),
                **by_status,
            }

    def lease(self, worker: str) -> Dict:
        """``POST /lease``: hand out the next cell in canonical order —
        first pending cell, else the first leased cell whose lease
        expired (a steal)."""
        now = time.monotonic()
        with self._lock:
            if worker not in self._workers:
                self._workers.add(worker)
                self.counters.counter("harness.dist.workers").add(1)
            pending: Optional[_CellState] = None
            expired: Optional[_CellState] = None
            for cell in self.cells:
                state = self._states[cell.key]
                if state.status == "pending":
                    pending = state
                    break
                if (
                    state.status == "leased"
                    and state.expiry is not None
                    and now >= state.expiry
                    and expired is None
                ):
                    expired = state
                    # keep scanning: a pending cell still wins, so the
                    # steal is the *fallback* in canonical order
            chosen = pending if pending is not None else expired
            stolen = pending is None and expired is not None
            if chosen is None:
                if all(
                    s.status == "done" for s in self._states.values()
                ):
                    self._done_acked.add(worker)
                    return {"done": True}
                return {"wait": True, "retry_after": 0.5}
            if stolen:
                self.counters.counter("harness.dist.steals").add(1)
                self.counters.counter("harness.dist.lease_expiries").add(1)
                self._echo(
                    f"[dist] {chosen.cell.key}: lease expired on "
                    f"{chosen.worker!r}, re-leased to {worker!r}"
                )
            chosen.status = "leased"
            chosen.worker = worker
            chosen.expiry = now + self.lease_seconds
            self.counters.counter("harness.dist.leases").add(1)
            response = {
                "cell": cell_to_wire(chosen.cell),
                "lease_seconds": self.lease_seconds,
            }
            hint = self._cell_timeouts.get(chosen.cell.key)
            if hint is not None:
                response["adaptive_timeout"] = hint
            return response

    def heartbeat(self, worker: str, keys: List[str]) -> Dict:
        """``POST /heartbeat``: extend the worker's live leases; the
        response lists the keys it still holds (a missing key was
        stolen — the worker cancels that cell)."""
        now = time.monotonic()
        held: List[str] = []
        with self._lock:
            self.counters.counter("harness.dist.heartbeats").add(1)
            for key in keys:
                state = self._states.get(key)
                if (
                    state is not None
                    and state.status == "leased"
                    and state.worker == worker
                ):
                    state.expiry = now + self.lease_seconds
                    held.append(key)
            done = self._complete.is_set()
            if done:
                self._done_acked.add(worker)
            return {"keys": held, "done": done}

    def upload(self, worker, data, upload_attempt: int = 1):
        """``POST /upload``: validate and persist one finished cell;
        returns ``(http_status, payload)``.  Duplicates after a steal
        dedupe by result hash; mismatched duplicates are determinism
        violations (409, first write wins)."""
        if not isinstance(data, dict) or "key" not in data:
            with self._lock:
                self.counters.counter("harness.dist.upload_rejected").add(1)
            return 400, {"error": "malformed checkpoint payload"}
        key = data.get("key")
        state = self._states.get(key)
        if state is None:
            with self._lock:
                self.counters.counter("harness.dist.upload_rejected").add(1)
            return 400, {"error": f"unknown cell {key!r}"}
        cell = state.cell
        problem = store.validate_checkpoint(data, cell.key,
                                            cell.config_hash())
        if problem is not None:
            with self._lock:
                self.counters.counter("harness.dist.upload_rejected").add(1)
            self._echo(f"[dist] {key}: rejected upload from "
                       f"{worker!r} ({problem})")
            return 400, {"error": problem}
        rhash = store.result_hash(data)
        with self._lock:
            self.counters.counter("harness.dist.uploads").add(1)
            self.counters.counter("harness.dist.upload_retries").add(
                max(0, upload_attempt - 1)
            )
            if state.status == "done":
                if state.result_hash == rhash:
                    self.counters.counter("harness.dist.upload_dedup").add(1)
                    self._echo(
                        f"[dist] {key}: duplicate upload from {worker!r} "
                        "deduplicated (result hashes match)"
                    )
                    return 200, {"ok": True, "dedup": True}
                self.counters.counter(
                    "harness.dist.upload_conflicts"
                ).add(1)
                self._echo(
                    f"[dist] {key}: CONFLICTING duplicate upload from "
                    f"{worker!r} — determinism violation (kept the "
                    "first result)"
                )
                return 409, {"error": "result hash conflict",
                             "kept": state.result_hash, "got": rhash}
            outcome = outcome_from_checkpoint(cell, data)
            # Persist the upload verbatim through the shared store: the
            # file is byte-compatible with a locally written checkpoint
            # (resume works across machines and run modes).
            store.write_json(
                store.checkpoint_path(self.out_dir, cell.key,
                                      cell.config_hash()),
                data, compress=True,
            )
            state.status = "done"
            state.worker = worker
            state.result_hash = rhash
            self._outcomes[cell.key] = outcome
            self._book(outcome)
            if outcome.ok:
                self._history.record(cell, outcome.duration_s)
            self._write_manifest_locked()
            remaining = sum(
                1 for s in self._states.values() if s.status != "done"
            )
            self._echo(
                f"[dist] {key}: "
                + ("ok" if outcome.ok else
                   f"FAILED ({outcome.failure.kind})")
                + f" from {worker!r} ({remaining} cell(s) remaining)"
            )
            if remaining == 0:
                self._complete.set()
        return 200, {"ok": True, "dedup": False}

    def _book(self, outcome: CellOutcome) -> None:
        """Mirror the local runner's campaign counters (lock held)."""
        ctr = self.counters.counter
        ctr("harness.campaign.attempts").add(len(outcome.ledger))
        ctr("harness.campaign.retries").add(
            max(0, len(outcome.ledger) - 1)
        )
        ctr("harness.campaign.backoff_seconds").add(
            sum(e.get("backoff_s", 0.0) for e in outcome.ledger)
        )
        if outcome.restored:
            ctr("harness.campaign.skipped").add(1)
        elif outcome.ok:
            ctr("harness.campaign.completed").add(1)
        else:
            ctr("harness.campaign.failed").add(1)

    def _write_manifest_locked(self) -> Optional[str]:
        payload = store.manifest_payload(
            self.cells, self._outcomes, out_dir=self.out_dir,
            workers=f"dist:{len(self._workers)}", degraded=False,
            resume=self.resume,
            extra={"coordinator": {"url": self.url,
                                   "protocol": PROTOCOL_VERSION}},
        )
        path = store.manifest_path(self.out_dir)
        store.write_json(path, payload)
        return path

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> str:
        """Bind the server, restore checkpoints (``resume``), write
        ``coordinator.json`` and start serving in background threads;
        returns the coordinator URL."""
        self.counters.counter("harness.campaign.cells").add(len(self.cells))
        if self.adaptive_timeout:
            self._cell_timeouts = derive_adaptive_timeouts(
                self.cells, load_timeout_history(self.out_dir),
                timeout=self.timeout,
            )
            if self._cell_timeouts:
                self.counters.counter(
                    "harness.campaign.adaptive_timeouts"
                ).add(len(self._cell_timeouts))
        if self.resume:
            manifest = store.load_manifest_entries(self.out_dir)
            for cell in self.cells:
                outcome, torn = restore_outcome(
                    cell, self.out_dir, manifest
                )
                if torn:
                    self.counters.counter("harness.campaign.torn").add(1)
                    self._echo(
                        f"[dist] {cell.key}: checkpoint not corroborated "
                        "by the manifest (torn write); re-running"
                    )
                if outcome is None:
                    continue
                state = self._states[cell.key]
                state.status = "done"
                state.result_hash = store.result_hash(
                    store.build_checkpoint(outcome)
                )
                self._outcomes[cell.key] = outcome
                self._book(outcome)
                self._echo(f"[dist] {cell.key}: restored from checkpoint")
            if len(self._outcomes) == len(self.cells):
                self._complete.set()
        server = ThreadingHTTPServer((self.host, self.port), _Handler)
        server.coordinator = self  # type: ignore[attr-defined]
        server.daemon_threads = True
        self._server = server
        self.port = server.server_address[1]
        self.url = f"http://{self.host}:{self.port}"
        store.write_json(
            os.path.join(self.out_dir, "coordinator.json"),
            {"url": self.url, "pid": os.getpid(),
             "protocol": PROTOCOL_VERSION,
             "lease_seconds": self.lease_seconds},
        )
        with self._lock:
            self._write_manifest_locked()
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.1},
            name="dist-coordinator", daemon=True,
        )
        thread.start()
        self._echo(
            f"[dist] coordinator serving {len(self.cells)} cell(s) at "
            f"{self.url} ({len(self._outcomes)} restored)"
        )
        return self.url

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the matrix completes (True) or ``timeout``."""
        return self._complete.wait(timeout)

    def linger(self, timeout: Optional[float] = None) -> None:
        """After completion, keep serving until every worker that ever
        leased has been told the matrix is done (``/lease`` or
        ``/heartbeat`` carries the ack), so workers exit 0 instead of
        mistaking the natural end of the campaign for a coordinator
        crash.  Capped at ``timeout`` (default: one lease duration) in
        case a worker died and will never ask again."""
        if timeout is None:
            timeout = self.lease_seconds
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._workers <= self._done_acked:
                    return
            time.sleep(0.05)

    def stop(self) -> None:
        """Shut the HTTP server down (idempotent)."""
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()

    def collect(self) -> CampaignResult:
        """Assemble the final result exactly like the local runner's
        ``_collect`` — shared merge, shared artifact writer — so the
        deterministic artifacts are byte-identical to a serial run."""
        with self._lock:
            outcomes = dict(self._outcomes)
            manifest_path = self._write_manifest_locked()
            ops_dump = self.counters.to_dict()
        merged = merge_outcomes(self.cells, outcomes)
        cell_dumps = merged["cell_dumps"]
        counters = merge_dumps([ops_dump] + cell_dumps)
        self._history.flush(self.out_dir)
        paths = store.write_merge_artifacts(
            self.out_dir, merged["tables"], cell_dumps, [ops_dump]
        )
        return CampaignResult(
            tables=merged["tables"],
            failures=merged["failures"],
            completed=merged["completed"],
            skipped=merged["skipped"],
            failed=merged["failed"],
            not_run=merged["not_run"],
            group_seconds=merged["group_seconds"],
            degraded=False,
            counters=counters,
            failed_groups=merged["failed_groups"],
            manifest_path=manifest_path,
            counters_path=paths["counters"],
            ops_counters_path=paths["ops_counters"],
            tables_path=paths["tables"],
        )

    def run(self, wait_timeout: Optional[float] = None) -> CampaignResult:
        """Serve until the matrix completes, then merge and return."""
        self.start()
        try:
            if self.wait(wait_timeout):
                self.linger()
            else:
                self._echo(
                    f"[dist] coordinator timed out after {wait_timeout}s "
                    "with the matrix incomplete"
                )
        finally:
            self.stop()
        return self.collect()


class DistWorker:
    """N supervisors pointed at a remote queue (module docstring)."""

    def __init__(
        self,
        coordinator: str,
        *,
        workers: int = 1,
        name: Optional[str] = None,
        backend: str = "scalar",
        poll_interval: float = 0.25,
        echo: Callable[[str], None] = _default_echo,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in ("scalar", "vectorized"):
            raise ValueError(f"unknown backend {backend!r}")
        self.url = coordinator.rstrip("/")
        self.workers = workers
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.backend = backend
        self.poll_interval = poll_interval
        self._echo = echo
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._done = False
        self._lost = False
        #: key -> cancel event of the in-flight cell (heartbeat thread
        #: fires the event when the coordinator reports the lease gone)
        self._held: Dict[str, threading.Event] = {}
        self._policy: Dict = {}
        self.lease_seconds = DEFAULT_LEASE_S

    # -- plumbing ----------------------------------------------------------

    def _finish(self) -> None:
        """The matrix is done: stop every thread and cancel any
        in-flight cell (globally complete, so a local run still going
        is a stale duplicate).  One supervisor observing the ack is
        enough — the rest must not need their own round-trip, because
        the coordinator only lingers briefly after completion."""
        with self._lock:
            if self._done:
                return
            self._done = True
            held = list(self._held.values())
        for event in held:
            event.set()
        self._stop.set()

    def _coordinator_lost(self, why: str) -> None:
        with self._lock:
            # A vanished coordinator after the done ack is the natural
            # end of the campaign, not a crash.
            if self._lost or self._done:
                return
            self._lost = True
            held = list(self._held.values())
        self._echo(
            f"[worker {self.name}] coordinator lost ({why}); cancelling "
            f"{len(held)} in-flight cell(s) and exiting"
        )
        for event in held:
            event.set()
        self._stop.set()

    def _heartbeat_loop(self, interval: float) -> None:
        misses = 0
        while not self._stop.wait(interval):
            with self._lock:
                keys = list(self._held)
            try:
                status, body = post_json(
                    f"{self.url}/heartbeat",
                    {"worker": self.name, "keys": keys},
                    timeout=min(10.0, self.lease_seconds),
                )
            except OSError as exc:
                misses += 1
                if misses >= HEARTBEAT_MISS_BUDGET:
                    self._coordinator_lost(
                        f"{misses} consecutive heartbeat failures: {exc}"
                    )
                    return
                continue
            misses = 0
            if status != 200:
                continue
            if body.get("done"):
                self._finish()
                return
            still_held = set(body.get("keys") or [])
            with self._lock:
                lost = [
                    (key, event) for key, event in self._held.items()
                    if key not in still_held
                ]
            for key, event in lost:
                self._echo(
                    f"[worker {self.name}] lease on {key} lost "
                    "(stolen after expiry); cancelling the in-flight run"
                )
                event.set()

    def _execute(self, cell: CampaignCell, adaptive: Optional[float],
                 cancel: threading.Event) -> CellOutcome:
        kwargs = dict(cell.kwargs)
        if self.backend == "vectorized":
            kwargs, _leaf = dispatch_backend(cell, kwargs, self._echo)
        policy = ExecutionPolicy(
            timeout=self._policy.get("timeout"),
            adaptive_timeout=adaptive,
            max_attempts=int(self._policy.get("max_attempts", 3)),
            backoff_base=float(self._policy.get("backoff_base", 0.5)),
            backoff_cap=float(self._policy.get("backoff_cap", 30.0)),
            cancel=cancel,
        )
        return execute_cell(cell, policy, kwargs)

    def _upload(self, outcome: CellOutcome) -> bool:
        payload = {
            "worker": self.name,
            "checkpoint": store.build_checkpoint(outcome),
        }
        delay = 0.2
        for attempt in range(1, 4):
            payload["upload_attempt"] = attempt
            try:
                status, body = post_json(
                    f"{self.url}/upload", payload, timeout=30.0
                )
            except OSError as exc:
                if attempt == 3:
                    self._coordinator_lost(f"upload failed 3x: {exc}")
                    return False
                time.sleep(delay)
                delay *= 2
                continue
            if status == 200:
                return True
            # 400 (rejected) and 409 (conflict) are never retryable: the
            # coordinator logged why and kept its canonical result.
            self._echo(
                f"[worker {self.name}] upload of {outcome.cell.key} "
                f"refused ({status}: {body.get('error')})"
            )
            return False
        return False

    def _supervisor(self) -> None:
        while not self._stop.is_set():
            try:
                status, body = post_json(
                    f"{self.url}/lease", {"worker": self.name},
                    timeout=10.0,
                )
            except OSError:
                # Transient: the heartbeat loop owns loss detection.
                if self._stop.wait(self.poll_interval):
                    return
                continue
            if status != 200:
                if self._stop.wait(self.poll_interval):
                    return
                continue
            if body.get("done"):
                self._finish()
                return
            if body.get("wait"):
                if self._stop.wait(
                    float(body.get("retry_after", self.poll_interval))
                ):
                    return
                continue
            try:
                cell = cell_from_wire(body.get("cell") or {})
            except ProtocolError as exc:
                self._echo(f"[worker {self.name}] bad lease: {exc}")
                if self._stop.wait(self.poll_interval):
                    return
                continue
            cancel = threading.Event()
            with self._lock:
                self._held[cell.key] = cancel
            try:
                outcome = self._execute(
                    cell, body.get("adaptive_timeout"), cancel
                )
            finally:
                with self._lock:
                    self._held.pop(cell.key, None)
            if outcome.cancelled:
                self._echo(
                    f"[worker {self.name}] {cell.key}: cancelled "
                    "(not uploaded)"
                )
                continue
            self._upload(outcome)

    def run(self) -> int:
        """Work the queue until the coordinator reports the matrix done
        (exit 0) or becomes unreachable (exit 3)."""
        delay = 0.2
        handshake = None
        for attempt in range(8):  # the coordinator may still be binding
            try:
                handshake = get_json(f"{self.url}/campaign", timeout=10.0)
                break
            except OSError:
                time.sleep(delay)
                delay = min(2.0, delay * 2)
        if handshake is None:
            self._echo(
                f"[worker {self.name}] no coordinator at {self.url}"
            )
            return EXIT_COORDINATOR_LOST
        try:
            check_version(handshake, "coordinator")
        except ProtocolError as exc:
            self._echo(f"[worker {self.name}] {exc}")
            return EXIT_PROTOCOL
        self._policy = dict(handshake.get("policy") or {})
        self.lease_seconds = float(
            handshake.get("lease_seconds", DEFAULT_LEASE_S)
        )
        interval = max(0.2, self.lease_seconds / 3.0)
        self._echo(
            f"[worker {self.name}] joined {self.url}: "
            f"{handshake.get('cells')} cell(s), "
            f"{self.workers} supervisor(s), lease {self.lease_seconds}s"
        )
        heart = threading.Thread(
            target=self._heartbeat_loop, args=(interval,),
            name="dist-heartbeat", daemon=True,
        )
        heart.start()
        threads = [
            threading.Thread(target=self._supervisor,
                             name=f"dist-supervisor-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self._stop.set()
        heart.join(timeout=5.0)
        return EXIT_COORDINATOR_LOST if self._lost else EXIT_OK


def worker_env() -> Dict[str, str]:
    """A subprocess environment whose ``PYTHONPATH`` can import this
    package (workers are plain ``python -m repro.harness worker``
    processes)."""
    env = dict(os.environ)
    src = os.path.dirname(  # src/repro/harness -> src
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                     if p and p != src]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def spawn_worker(
    url: str,
    *,
    workers: int = 1,
    name: Optional[str] = None,
    extra_args: Sequence[str] = (),
) -> subprocess.Popen:
    """Launch one worker process against ``url`` (loopback fleets: the
    dist benchmark, the CI smoke job, the tests)."""
    cmd = [
        sys.executable, "-m", "repro.harness", "worker",
        "--coordinator", url, "--workers", str(workers),
    ]
    if name:
        cmd += ["--name", name]
    cmd += list(extra_args)
    return subprocess.Popen(cmd, env=worker_env())
