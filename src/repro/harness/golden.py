"""Golden end-state digests: the timing simulator's bit-identity contract.

Performance work on the timing hot loop (ready-list scheduling, decode and
coalesce memoization, batched event dispatch — see docs/PERFORMANCE.md) is
only admissible when it is *provably bit-identical* to the model it
replaces.  This module pins that contract as data: a digest of everything a
simulation run architecturally produces —

* the cycle count and dynamic instruction count,
* every per-SM :class:`~repro.timing.sm.SmStats` field (issue, commit,
  sleep-entry, block-switch and handler counters),
* every :class:`~repro.system.faults.FaultStats` field,
* the final GPU page table (``vpn -> ppn`` plus dirty bits).

The committed fixture ``tests/golden_digests.json`` holds the digest of a
curated workload x scheme x paging matrix, generated *before* an
optimization lands.  ``tests/test_golden_digests.py`` recomputes the fast
subset on every tier-1 run (and the full matrix under
``REPRO_GOLDEN_FULL=1``), so a change that perturbs timing by even one
cycle — or miscounts one stall — fails loudly without rerunning the full
paper sweep.

Regenerate (only when an *intentional* model change lands, never to make a
perf PR pass) with::

    PYTHONPATH=src python -m repro.harness golden --update

Unlike :func:`repro.harness.chaos_campaign.architectural_digest` (which
tolerates timing perturbation by design), this digest is exact: two runs
match iff they are bit-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict, List, Optional

from repro.core import make_scheme
from repro.system import GPUConfig, GpuSimulator
from repro.workloads import MICRO_NAMES, get_workload

#: time scale matching the paper sweep (see repro.harness.experiments)
GOLDEN_TIME_SCALE = 8.0


def state_digest(sim: GpuSimulator, result) -> Dict:
    """Exact digest of one finished run (see module docstring).

    Returns a JSON-able record whose ``digest`` field is the sha256 of the
    canonical payload; the payload itself is kept alongside so a mismatch
    can be diagnosed field by field rather than hash against hash.
    """
    page_state = sim.address_space.page_state
    pages = [
        [vpn, entry.ppn, 1 if entry.dirty else 0]
        for vpn, entry in sorted(page_state.gpu_table.items())
    ]
    page_blob = json.dumps(pages, separators=(",", ":"))
    payload = {
        "kernel": result.kernel_name,
        "scheme": result.scheme,
        "cycles": result.cycles,
        "dynamic_instructions": result.dynamic_instructions,
        "blocks": result.blocks,
        "occupancy_blocks": result.occupancy_blocks,
        "sm_stats": [asdict(s) for s in result.sm_stats],
        "fault_stats": (
            asdict(result.fault_stats) if result.fault_stats else None
        ),
        "gpu_pages": hashlib.sha256(page_blob.encode()).hexdigest(),
        "gpu_pages_mapped": len(pages),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    payload["digest"] = hashlib.sha256(blob.encode()).hexdigest()
    return payload


def run_case(case: Dict, telemetry: bool = False) -> Dict:
    """Execute one golden case spec and return its digest record."""
    wl = get_workload(case["workload"])
    cfg = GPUConfig().time_scaled(case.get("time_scale", GOLDEN_TIME_SCALE))
    tel = None
    if telemetry:
        from repro.telemetry import Telemetry

        tel = Telemetry()
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        config=cfg,
        scheme=make_scheme(case["scheme"], **case.get("scheme_kwargs", {})),
        paging=case.get("paging", "demand"),
        local_handling=case.get("local_handling", False),
        block_switching=case.get("block_switching", False),
        telemetry=tel,
    )
    result = sim.run()
    return state_digest(sim, result)


def _micro_matrix() -> List[Dict]:
    """Fast cases: every micro workload x scheme x paging mode."""
    cases = []
    for wl in MICRO_NAMES:
        for scheme in ("baseline", "wd-commit", "wd-lastcheck",
                       "replay-queue", "operand-log"):
            for paging in ("premapped", "demand"):
                cases.append(
                    {"workload": wl, "scheme": scheme, "paging": paging}
                )
    return cases


def _slow_matrix() -> List[Dict]:
    """Full-contract cases: parboil rows of the paper sweep plus the
    preemption machinery (block switching squashes and replays in-flight
    faulted instructions; local handling runs warp-level handlers)."""
    cases = []
    for scheme in ("baseline", "wd-commit", "replay-queue", "operand-log"):
        cases.append({"workload": "lbm", "scheme": scheme, "paging": "demand"})
    for wl in ("sgemm", "histo", "spmv"):
        cases.append({"workload": wl, "scheme": "baseline", "paging": "demand"})
        cases.append(
            {"workload": wl, "scheme": "replay-queue", "paging": "demand"}
        )
    return cases


def _preemption_matrix() -> List[Dict]:
    """Cases exercising squash/replay + context switching (use cases 1/2)."""
    cases = []
    for wl in ("tlb-thrash", "saxpy"):
        cases.append(
            {"workload": wl, "scheme": "wd-commit", "paging": "demand",
             "block_switching": True}
        )
        cases.append(
            {"workload": wl, "scheme": "replay-queue", "paging": "demand",
             "local_handling": True}
        )
    cases.append(
        {"workload": "tlb-thrash", "scheme": "operand-log",
         "paging": "demand", "block_switching": True}
    )
    return cases


def case_key(case: Dict) -> str:
    """Stable fixture key for one case spec."""
    parts = [case["workload"], case["scheme"], case.get("paging", "demand")]
    if case.get("block_switching"):
        parts.append("switch")
    if case.get("local_handling"):
        parts.append("local")
    if case.get("scheme_kwargs"):
        parts.append(
            ",".join(f"{k}={v}" for k, v in sorted(case["scheme_kwargs"].items()))
        )
    return "|".join(parts)


def golden_cases(full: bool = True) -> List[Dict]:
    """The contract matrix; ``full=False`` returns only the fast subset
    tier-1 recomputes on every run."""
    cases = _micro_matrix() + _preemption_matrix()
    if full:
        cases += _slow_matrix()
    return cases


def generate(full: bool = True, telemetry_probe: bool = True) -> Dict:
    """Compute the fixture content for :func:`golden_cases`.

    ``telemetry_probe`` additionally re-runs one case per workload family
    with telemetry enabled and asserts the digest is unchanged — pinning
    the "bit-identical with telemetry on or off" half of the contract at
    generation time.
    """
    fixture: Dict = {"schema": 1, "time_scale": GOLDEN_TIME_SCALE, "cases": {}}
    for case in golden_cases(full):
        record = run_case(case)
        key = case_key(case)
        fixture["cases"][key] = {"spec": case, **record}
    if telemetry_probe:
        for case in (
            {"workload": "saxpy", "scheme": "replay-queue", "paging": "demand"},
            {"workload": "tlb-thrash", "scheme": "wd-commit",
             "paging": "demand", "block_switching": True},
        ):
            plain = fixture["cases"][case_key(case)]["digest"]
            with_tel = run_case(case, telemetry=True)["digest"]
            if with_tel != plain:
                raise AssertionError(
                    f"telemetry changed timing for {case_key(case)}: "
                    f"{plain} != {with_tel}"
                )
    return fixture


def verify(fixture: Dict, full: bool = False) -> List[str]:
    """Recompute digests against ``fixture``; returns mismatch messages."""
    problems = []
    for case in golden_cases(full):
        key = case_key(case)
        want = fixture["cases"].get(key)
        if want is None:
            problems.append(f"{key}: missing from fixture")
            continue
        got = run_case(case)
        if got["digest"] != want["digest"]:
            detail = [
                f"  {f}: fixture={want.get(f)!r} run={got.get(f)!r}"
                for f in ("cycles", "dynamic_instructions", "sm_stats",
                          "fault_stats", "gpu_pages")
                if want.get(f) != got.get(f)
            ]
            problems.append(
                f"{key}: digest mismatch\n" + "\n".join(detail)
            )
    return problems


def fixture_path() -> str:
    """Default fixture location (tests/golden_digests.json at repo root)."""
    import os

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "golden_digests.json")


def load_fixture(path: Optional[str] = None) -> Dict:
    with open(path or fixture_path()) as fh:
        return json.load(fh)


def save_fixture(fixture: Dict, path: Optional[str] = None) -> str:
    path = path or fixture_path()
    with open(path, "w") as fh:
        json.dump(fixture, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
