"""Traced runs: one simulation with full telemetry, written to disk.

The harness side of the observability story (docs/OBSERVABILITY.md): build
a simulator for any workload/scheme/paging combination with an enabled
:class:`repro.telemetry.Telemetry`, run it, and write two artifacts next to
the experiment output —

``<out>/<workload>-<scheme>.trace.json``
    a Chrome ``trace_event`` file; open it in ``chrome://tracing`` or
    https://ui.perfetto.dev to see per-SM issue/commit activity, fault
    raise/resolve spans, squash/replay points and block switches;
``<out>/<workload>-<scheme>.counters.json``
    the hierarchical counter dump (flat values, rollup tree, sampled
    time series).

Exposed on the CLI as ``python -m repro.harness trace <workload>``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import make_scheme
from repro.system import GPUConfig, GpuSimulator, INTERCONNECTS, SimResult
from repro.telemetry import Telemetry
from repro.workloads import get_workload

from .experiments import DEFAULT_TIME_SCALE
from .results import ExperimentTable


@dataclass
class TracedRun:
    """Everything a traced simulation produced, in one place."""

    workload: str
    scheme: str
    result: SimResult
    telemetry: Telemetry
    paths: Dict[str, str]

    def table(self) -> ExperimentTable:
        """A one-column summary table (the harness's common currency) with
        the written files attached as artifacts."""
        tracer = self.telemetry.tracer
        hist = tracer.names()
        table = ExperimentTable(
            name="trace",
            description=(
                f"{self.workload} under {self.scheme}: telemetry summary"
            ),
            columns=["value"],
            artifacts=dict(self.paths),
            show_geomean=False,
        )
        table.add_row("cycles", [self.result.cycles])
        table.add_row("dynamic_insts", [self.result.dynamic_instructions])
        table.add_row("events_recorded", [tracer.recorded])
        table.add_row("events_dropped", [tracer.dropped])
        for name in sorted(hist):
            table.add_row(f"ev:{name}", [hist[name]])
        return table


def run_traced(
    workload: str,
    scheme: str = "replay-queue",
    paging: str = "demand",
    interconnect: str = "nvlink",
    local_handling: bool = False,
    block_switching: bool = False,
    ideal_switch: bool = False,
    time_scale: float = DEFAULT_TIME_SCALE,
    out_dir: str = "traces",
    capacity: int = 1 << 16,
    sample_interval: float = 1000.0,
    config: Optional[GPUConfig] = None,
) -> TracedRun:
    """Run ``workload`` under ``scheme`` with telemetry enabled and write
    the Chrome trace + counter dump into ``out_dir``; returns the
    :class:`TracedRun` (telemetry object included, for programmatic use)."""
    wl = get_workload(workload)
    cfg = (config or GPUConfig()).time_scaled(time_scale)
    ic = INTERCONNECTS[interconnect].scaled(time_scale)
    scheme_obj = make_scheme(scheme)
    tel = Telemetry(capacity=capacity, sample_interval=sample_interval)
    tel.annotate(workload=workload, interconnect=interconnect,
                 time_scale=time_scale)
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        config=cfg,
        scheme=scheme_obj,
        interconnect=ic,
        paging=paging,
        local_handling=local_handling,
        block_switching=block_switching,
        ideal_switch=ideal_switch,
        telemetry=tel,
    )
    result = sim.run()
    os.makedirs(out_dir, exist_ok=True)
    stem = os.path.join(out_dir, f"{workload}-{scheme_obj.name}")
    paths = tel.write(stem)
    return TracedRun(
        workload=workload,
        scheme=scheme_obj.name,
        result=result,
        telemetry=tel,
        paths=paths,
    )
