"""Fault-tolerant parallel campaign runner.

``python -m repro.harness all`` is a *campaign*: a cross-product of
independent experiment shards (one simulation sweep per workload per
figure).  This module executes such a campaign the way a production
fleet would — sharded, checkpointed, retried, and degradable — instead
of as one long serial loop that loses everything on the first wedge:

**Sharding.**  :func:`build_all_cells` cuts every experiment along its
workload axis (see :func:`repro.harness.experiments.experiment_workloads`)
into :class:`CampaignCell`\\ s, and :class:`CampaignRunner` executes them
on ``workers`` supervisor threads.  Each cell still runs through PR 2's
crash-isolated machinery (:func:`repro.harness.isolation.run_experiment_isolated`:
child process, wall-clock timeout, structured failures), so the "pool"
is really N threads each baby-sitting one killable child at a time —
unlike a ``ProcessPoolExecutor``, a hung cell can be terminated without
tearing the whole pool down.

**Retry with backoff.**  Transient failure kinds (``Timeout``,
``SimulationHang``, ``ChildCrash`` — see ``TRANSIENT_KINDS``) are
retried up to ``max_attempts`` with exponential backoff
(``backoff_base * 2**(attempt-1)``, capped at ``backoff_cap``); hangs
are additionally reseeded (``seed + 1000*attempt``, the chaos CLI's
convention) when the cell's kwargs carry a ``seed``.  Deterministic
failure kinds (crashes, invariant violations) fail fast.  Every attempt
lands in the cell's *attempt ledger*, persisted with the checkpoint.

**Checkpoints and resume.**  With an ``out_dir``, every finished cell
writes a content-addressed checkpoint (``cells/<key>.<config-hash>.json``
holding the result table, the attempt ledger and the cell's counter
dump) via atomic rename, plus a campaign ``manifest.json`` rewritten as
cells finish.  ``resume=True`` restores cells whose checkpoint matches
their current config hash and succeeded; failed, stale (hash-mismatched)
or truncated checkpoints are re-executed.  A campaign SIGKILLed mid-run
therefore resumes from its last completed cell.

**Deterministic merge.**  Shard tables merge per experiment group in
**cell order** — fixed by the spec, never by completion order — through
:func:`repro.harness.results.merge_tables`, so ``--workers N`` output is
bit-identical to the serial run for any N.  Per-cell counter dumps and
the campaign's own ``harness.campaign.*`` counters aggregate through
:func:`repro.telemetry.merge_dumps` into ``counters.json``.

**Graceful degradation.**  A platform without any multiprocessing start
method, or a worker-pool setup failure, degrades to the serial
single-supervisor path with a logged warning — the campaign completes
either way (``harness.campaign.degraded`` records that it happened).

**Backends.**  ``backend="vectorized"`` routes eligible cells to the
numpy batch engine (:mod:`repro.batch`): batch-sweep cells whose spec
passes :func:`repro.batch.spec.classify_cell` get ``backend`` injected
into their kwargs at dispatch time, everything else — chaos hooks,
unsupported schemes, cells that are not batch sweeps — falls back to
the scalar engine with a logged reason.  The injection is *local* to
the attempt: ``config_hash`` covers the cell's declared kwargs only, so
checkpoints are shared across backends — justified because the two
backends are digest-equivalent by contract (docs/VECTORIZATION.md).
``harness.campaign.vectorized``/``harness.campaign.fallback`` count the
routing decisions.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.counters import CounterRegistry, merge_dumps

from .experiments import (
    ALL_EXPERIMENTS,
    UNSHARDED_EXPERIMENTS,
    experiment_workloads,
)
from .hashing import content_hash
from .isolation import (
    ExperimentFailure,
    process_isolation_available,
    run_experiment_isolated,
)
from .results import ExperimentTable, merge_tables

#: failure kinds worth retrying: they depend on scheduling/load, not on
#: the cell's inputs (a crash or invariant violation is deterministic
#: under the same inputs and retrying it only burns time)
TRANSIENT_KINDS = frozenset({"Timeout", "SimulationHang", "ChildCrash"})

#: checkpoint/manifest schema version (bump on incompatible change)
CHECKPOINT_VERSION = 1

#: upper clamp of ``workers="auto"`` — each worker thread babysits one
#: crash-isolated child process, and the bundled campaigns stop scaling
#: well before the core counts of large CI machines
AUTO_WORKERS_CAP = 8

#: adaptive per-cell timeouts: a cell whose previous run took ``d``
#: seconds (same config hash, completed) gets ``max(FLOOR, d * MARGIN)``
#: this run, so one wedged shard is killed after ~4x its known-good
#: duration instead of wasting the whole campaign-level timeout; each
#: timeout retry doubles the allowance, capped at the campaign timeout
ADAPTIVE_TIMEOUT_FLOOR = 10.0
ADAPTIVE_TIMEOUT_MARGIN = 4.0


def _default_echo(message: str) -> None:
    """Default progress/warning sink: one line to stderr."""
    import sys

    print(message, file=sys.stderr)


def resolve_workers(
    workers: Union[int, str],
    echo: Callable[[str], None] = _default_echo,
) -> int:
    """Resolve a worker-count spec to a concrete count.

    An int passes through untouched; ``"auto"`` derives the count from
    ``os.cpu_count()`` clamped to ``[1, AUTO_WORKERS_CAP]`` and logs the
    decision (output is bit-identical for any worker count, so the
    resolution never affects results — only wall-clock)."""
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(
                f"workers must be an int or 'auto', not {workers!r}"
            )
        cpus = os.cpu_count() or 1
        resolved = max(1, min(AUTO_WORKERS_CAP, cpus))
        echo(
            f"[campaign] workers=auto -> {resolved} "
            f"(cpu_count={cpus}, cap={AUTO_WORKERS_CAP})"
        )
        return resolved
    return workers


@dataclass(frozen=True)
class CampaignCell:
    """One independent unit of campaign work.

    ``key`` doubles as identity and merge position: the runner merges
    shard tables in cell order, so two runs over the same spec produce
    identical output no matter which workers finish first.  ``fn`` must
    be an importable module-level callable (it crosses a process
    boundary) returning an :class:`ExperimentTable`.
    """

    key: str
    fn: Callable
    kwargs: Dict = field(default_factory=dict)
    #: experiment name the cell's table merges into (e.g. ``fig10``)
    group: str = ""
    #: prefix applied to the shard's row labels at merge time (keeps
    #: rows distinct when every shard uses the same labels)
    row_prefix: str = ""

    def config_hash(self) -> str:
        """Content hash of everything that determines this cell's result;
        a checkpoint is valid for resume only while this hash matches."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "key": self.key,
            "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "kwargs": self.kwargs,
            "group": self.group,
            "row_prefix": self.row_prefix,
        }
        return content_hash(payload)


@dataclass
class CellOutcome:
    """What one cell produced this campaign (fresh run or restored)."""

    cell: CampaignCell
    table: Optional[ExperimentTable]
    failure: Optional[ExperimentFailure]
    ledger: List[Dict]
    duration_s: float
    restored: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell has a result table."""
        return self.table is not None


@dataclass
class CampaignResult:
    """Everything a campaign run produced, merged deterministically."""

    #: group -> merged table (partial if some of the group's cells failed)
    tables: Dict[str, ExperimentTable]
    failures: List[ExperimentFailure]
    completed: List[str]  #: cell keys executed successfully this run
    skipped: List[str]  #: cell keys restored from checkpoints
    failed: List[str]  #: cell keys that exhausted their attempts
    not_run: List[str]  #: cells never started (stop-on-failure abort)
    group_seconds: Dict[str, float]
    degraded: bool
    counters: Dict
    #: groups with a failed or never-started cell, in cell order
    failed_groups: List[str] = field(default_factory=list)
    manifest_path: Optional[str] = None
    counters_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when every cell completed (fresh or restored)."""
        return not self.failures and not self.not_run


def build_all_cells(
    experiments: Optional[Dict[str, Callable]] = None,
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
) -> List[CampaignCell]:
    """The campaign spec behind ``python -m repro.harness all``: one cell
    per (experiment, workload) shard, in the exact row order the serial
    runners produce, so the merged tables are bit-identical to theirs.
    Experiments without a workload axis become a single cell."""
    experiments = ALL_EXPERIMENTS if experiments is None else experiments
    cells: List[CampaignCell] = []
    for name in sorted(experiments):
        fn = experiments[name]
        axis = experiment_workloads(name, quick=quick, workloads=workloads)
        if axis is None:
            kwargs: Dict = {}
            if name not in UNSHARDED_EXPERIMENTS:
                kwargs["quick"] = quick
                if workloads:
                    kwargs["workloads"] = list(workloads)
            cells.append(
                CampaignCell(key=name, fn=fn, kwargs=kwargs, group=name)
            )
        else:
            for wl in axis:
                cells.append(
                    CampaignCell(
                        key=f"{name}/{wl}",
                        fn=fn,
                        kwargs={"workloads": [wl]},
                        group=name,
                    )
                )
    return cells


class CampaignRunner:
    """Executes a list of :class:`CampaignCell`\\ s with sharding,
    checkpoints, retry/backoff and graceful degradation (module
    docstring has the full story).

    ``sleep`` is injectable so tests can assert the backoff schedule
    without waiting it out; ``echo`` receives progress/warning lines
    (default: stderr).
    """

    def __init__(
        self,
        cells: Sequence[CampaignCell],
        *,
        workers: Union[int, str] = 1,
        out_dir: Optional[str] = None,
        resume: bool = False,
        timeout: Optional[float] = None,
        adaptive_timeout: bool = True,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        keep_going: bool = True,
        backend: str = "scalar",
        sleep: Callable[[float], None] = time.sleep,
        echo: Callable[[str], None] = _default_echo,
    ) -> None:
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate cell keys: {dupes}")
        if resume and out_dir is None:
            raise ValueError("resume requires an out_dir to resume from")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        workers = resolve_workers(workers, echo)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in ("scalar", "vectorized"):
            raise ValueError(
                f"unknown backend {backend!r} (scalar or vectorized)"
            )
        self.backend = backend
        self.cells = list(cells)
        self.workers = workers
        self.out_dir = out_dir
        self.resume = resume
        self.timeout = timeout
        self.adaptive_timeout = adaptive_timeout
        #: cell key -> history-derived wall-clock timeout (seconds),
        #: seeded from the previous manifest in :meth:`run`
        self._cell_timeouts: Dict[str, float] = {}
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.keep_going = keep_going
        self._sleep = sleep
        self._echo = echo
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._outcomes: Dict[str, CellOutcome] = {}
        self._degraded = False
        self.counters = CounterRegistry()
        self.counters.metadata.update(
            campaign="harness", workers=workers, resume=resume,
            backend=backend,
        )
        for leaf in (
            "cells", "completed", "skipped", "failed", "attempts",
            "retries", "backoff_seconds", "degraded", "vectorized",
            "fallback", "torn", "adaptive_timeouts",
        ):
            self.counters.counter(f"harness.campaign.{leaf}")

    # ------------------------------------------------------------------
    # checkpoint plumbing
    # ------------------------------------------------------------------

    def _cells_dir(self) -> str:
        return os.path.join(self.out_dir, "cells")

    def _checkpoint_path(self, cell: CampaignCell) -> str:
        safe = cell.key.replace(os.sep, "__").replace("/", "__")
        return os.path.join(
            self._cells_dir(), f"{safe}.{cell.config_hash()}.json"
        )

    def _manifest_entries(self) -> Dict[str, Dict]:
        """The previous run's ``manifest.json`` cells keyed by cell key
        (empty when no readable manifest exists).  Used on resume to
        corroborate checkpoints: a checkpoint the manifest never
        acknowledged is a *torn* write — the driver died between the
        checkpoint write and the manifest rewrite."""
        path = os.path.join(self.out_dir, "manifest.json")
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        return {
            entry["key"]: entry
            for entry in data.get("cells", [])
            if isinstance(entry, dict) and "key" in entry
        }

    def _load_checkpoint(
        self, cell: CampaignCell, manifest: Dict[str, Dict]
    ) -> Optional[CellOutcome]:
        """Restore a cell from its checkpoint, or ``None`` when it must
        (re)run: no checkpoint, truncated/corrupt JSON, config-hash
        mismatch, a recorded failure (failures always re-execute), or a
        torn write — a valid checkpoint the manifest never corroborated
        (the driver died between the two writes), which is surfaced as
        stale-and-rerun instead of silently trusted."""
        path = self._checkpoint_path(cell)
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        if (
            data.get("version") != CHECKPOINT_VERSION
            or data.get("config_hash") != cell.config_hash()
            or data.get("status") != "ok"
            or not data.get("table")
        ):
            return None
        try:
            table = ExperimentTable.from_dict(data["table"])
        except (KeyError, TypeError, ValueError):
            return None
        entry = manifest.get(cell.key)
        if (
            entry is None
            or entry.get("status") not in ("ok", "restored")
            or entry.get("config_hash") != cell.config_hash()
        ):
            self.counters.counter("harness.campaign.torn").add(1)
            self._echo(
                f"[campaign] {cell.key}: checkpoint not corroborated by "
                "the manifest (torn write: driver died between checkpoint "
                "and manifest rewrite); treating as stale and re-running"
            )
            return None
        return CellOutcome(
            cell=cell,
            table=table,
            failure=None,
            ledger=list(data.get("ledger", [])),
            duration_s=float(data.get("duration_s", 0.0)),
            restored=True,
        )

    def _cell_counter_dump(self, outcome: CellOutcome) -> Dict:
        """The cell's own counter dump (aggregated across the campaign by
        :func:`repro.telemetry.merge_dumps` into ``counters.json``)."""
        reg = CounterRegistry()
        reg.metadata.update(
            cell=outcome.cell.key,
            group=outcome.cell.group,
            config_hash=outcome.cell.config_hash(),
        )
        reg.counter("harness.cell.attempts").add(len(outcome.ledger))
        reg.counter("harness.cell.retries").add(
            max(0, len(outcome.ledger) - 1)
        )
        reg.counter("harness.cell.failures").add(0 if outcome.ok else 1)
        backoff = sum(e.get("backoff_s", 0.0) for e in outcome.ledger)
        reg.counter("harness.cell.backoff_seconds").add(backoff)
        return reg.to_dict()

    def _write_checkpoint(self, outcome: CellOutcome) -> None:
        """Persist one finished cell atomically (tmp file + rename), so a
        SIGKILL mid-write can never leave a half-checkpoint that a later
        ``--resume`` would trust."""
        if self.out_dir is None:
            return
        cell = outcome.cell
        payload = {
            "version": CHECKPOINT_VERSION,
            "key": cell.key,
            "group": cell.group,
            "config_hash": cell.config_hash(),
            "status": "ok" if outcome.ok else "failed",
            "table": outcome.table.to_dict() if outcome.ok else None,
            "failure": (
                None
                if outcome.failure is None
                else {
                    "kind": outcome.failure.kind,
                    "message": outcome.failure.message,
                    "attempts": outcome.failure.attempts,
                    "traceback": outcome.failure.traceback_text,
                }
            ),
            "ledger": outcome.ledger,
            "counters": self._cell_counter_dump(outcome),
            "duration_s": outcome.duration_s,
        }
        path = self._checkpoint_path(cell)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{threading.get_ident()}"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)

    def _write_manifest(self) -> Optional[str]:
        """(Re)write ``manifest.json`` reflecting every cell's current
        status — called as cells finish, so a killed campaign leaves an
        honest partial manifest behind."""
        if self.out_dir is None:
            return None
        cells = []
        totals = {"cells": len(self.cells), "completed": 0, "skipped": 0,
                  "failed": 0, "not_run": 0}
        for cell in self.cells:
            outcome = self._outcomes.get(cell.key)
            if outcome is None:
                status = "not-run"
                totals["not_run"] += 1
            elif not outcome.ok:
                status = "failed"
                totals["failed"] += 1
            elif outcome.restored:
                status = "restored"
                totals["skipped"] += 1
            else:
                status = "ok"
                totals["completed"] += 1
            entry = {
                "key": cell.key,
                "group": cell.group,
                "config_hash": cell.config_hash(),
                "status": status,
                "checkpoint": os.path.relpath(
                    self._checkpoint_path(cell), self.out_dir
                ),
            }
            if outcome is not None:
                entry["attempts"] = len(outcome.ledger)
                entry["duration_s"] = round(outcome.duration_s, 3)
            cells.append(entry)
        manifest = {
            "version": CHECKPOINT_VERSION,
            "workers": self.workers,
            "degraded": self._degraded,
            "resume": self.resume,
            "totals": totals,
            "cells": cells,
        }
        path = os.path.join(self.out_dir, "manifest.json")
        os.makedirs(self.out_dir, exist_ok=True)
        tmp = f"{path}.tmp.{threading.get_ident()}"
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt + 1`` (exponential,
        capped)."""
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))

    def _dispatch_backend(self, cell: CampaignCell, kwargs: Dict) -> Dict:
        """Route one cell under ``backend="vectorized"``.

        Eligible batch-sweep cells get ``backend`` injected into their
        *local* kwargs (``config_hash`` is unchanged, so checkpoints stay
        shared across backends — the backends are digest-equivalent by
        contract); ineligible cells keep the scalar engine and the
        reason is echoed once, per docs/VECTORIZATION.md.
        """
        from repro.batch.spec import classify_cell

        ok, reason = classify_cell(cell.fn, kwargs)
        with self._lock:
            leaf = "vectorized" if ok else "fallback"
            self.counters.counter(f"harness.campaign.{leaf}").add(1)
        if ok:
            return {**kwargs, "backend": "vectorized"}
        self._echo(
            f"[campaign] {cell.key}: vectorized backend ineligible "
            f"({reason}); using scalar engine"
        )
        return kwargs

    def _run_cell(self, cell: CampaignCell) -> CellOutcome:
        """Run one cell to completion: crash-isolated attempts, transient
        retries with backoff, hang reseeding.  Returns the outcome with
        its full attempt ledger (never raises)."""
        ledger: List[Dict] = []
        kwargs = dict(cell.kwargs)
        if self.backend == "vectorized":
            kwargs = self._dispatch_backend(cell, kwargs)
        started = time.time()
        failure: Optional[ExperimentFailure] = None
        table: Optional[ExperimentTable] = None
        adaptive = self._cell_timeouts.get(cell.key)
        timeout = adaptive if adaptive is not None else self.timeout
        for attempt in range(1, self.max_attempts + 1):
            outcome = run_experiment_isolated(
                name=cell.key, fn=cell.fn, kwargs=kwargs,
                timeout=timeout,
            )
            if not isinstance(outcome, ExperimentFailure):
                ledger.append({"attempt": attempt, "status": "ok"})
                table = outcome
                failure = None
                break
            failure = outcome
            transient = outcome.kind in TRANSIENT_KINDS
            final = (attempt == self.max_attempts) or not transient
            delay = 0.0 if final else self._backoff(attempt)
            entry = {
                "attempt": attempt,
                "status": "failed",
                "kind": outcome.kind,
                "message": outcome.message,
                "backoff_s": delay,
            }
            if adaptive is not None:
                entry["timeout_s"] = round(timeout, 3)
            if (
                not final
                and outcome.kind == "Timeout"
                and adaptive is not None
            ):
                # An adaptive timeout that fired may simply have been too
                # tight (machine load, cold caches): double the allowance
                # for the retry, never past the campaign-level timeout.
                timeout = timeout * 2.0
                if self.timeout is not None:
                    timeout = min(timeout, self.timeout)
            if not final and outcome.kind == "SimulationHang" and isinstance(
                kwargs.get("seed"), int
            ):
                kwargs = {**kwargs, "seed": kwargs["seed"] + 1000 * attempt}
                entry["reseeded"] = kwargs["seed"]
            ledger.append(entry)
            if final:
                failure.attempts = attempt
                break
            if delay:
                self._sleep(delay)
        return CellOutcome(
            cell=cell,
            table=table,
            failure=failure,
            ledger=ledger,
            duration_s=time.time() - started,
        )

    def _record(self, outcome: CellOutcome) -> None:
        """Book one finished cell: shared state, counters, checkpoint,
        manifest, progress line (thread-safe)."""
        with self._lock:
            self._outcomes[outcome.cell.key] = outcome
            ctr = self.counters.counter
            ctr("harness.campaign.attempts").add(len(outcome.ledger))
            ctr("harness.campaign.retries").add(
                max(0, len(outcome.ledger) - 1)
            )
            ctr("harness.campaign.backoff_seconds").add(
                sum(e.get("backoff_s", 0.0) for e in outcome.ledger)
            )
            if outcome.restored:
                ctr("harness.campaign.skipped").add(1)
            elif outcome.ok:
                ctr("harness.campaign.completed").add(1)
            else:
                ctr("harness.campaign.failed").add(1)
            if not outcome.restored:
                self._write_checkpoint(outcome)
            self._write_manifest()
            if outcome.restored:
                self._echo(f"[campaign] {outcome.cell.key}: restored "
                           "from checkpoint")
            elif outcome.ok:
                self._echo(
                    f"[campaign] {outcome.cell.key}: ok "
                    f"({outcome.duration_s:.1f}s, "
                    f"{len(outcome.ledger)} attempt(s))"
                )
            else:
                self._echo(
                    f"[campaign] {outcome.cell.key}: FAILED "
                    f"({outcome.failure.kind}) after "
                    f"{len(outcome.ledger)} attempt(s)"
                )
        if not outcome.ok and not self.keep_going:
            self._stop.set()

    def _worker(self, queue: List[CampaignCell]) -> None:
        """Supervisor loop: pop the next pending cell, run it, record it;
        exits when the queue drains or stop-on-failure triggers."""
        while True:
            if self._stop.is_set():
                return
            with self._lock:
                if not queue:
                    return
                cell = queue.pop(0)
            self._record(self._run_cell(cell))

    def _degrade(self, reason: str) -> None:
        """Fall back to serial execution, loudly."""
        if not self._degraded:
            self._degraded = True
            self.counters.counter("harness.campaign.degraded").add(1)
            self._echo(f"[campaign] warning: {reason}; "
                       "falling back to serial execution")

    def _seed_adaptive_timeouts(self, manifest: Dict[str, Dict]) -> None:
        """Derive per-cell wall-clock timeouts from the previous
        manifest's durations: a cell that completed before (same config
        hash) gets ``max(ADAPTIVE_TIMEOUT_FLOOR, duration *
        ADAPTIVE_TIMEOUT_MARGIN)``, never above the campaign-level
        timeout.  Cells without usable history keep the global timeout."""
        if not self.adaptive_timeout:
            return
        derived = 0
        for cell in self.cells:
            entry = manifest.get(cell.key)
            if (
                entry is None
                or entry.get("status") not in ("ok", "restored")
                or entry.get("config_hash") != cell.config_hash()
            ):
                continue
            duration = entry.get("duration_s")
            if not isinstance(duration, (int, float)) or duration <= 0:
                continue
            timeout = max(
                ADAPTIVE_TIMEOUT_FLOOR, duration * ADAPTIVE_TIMEOUT_MARGIN
            )
            if self.timeout is not None:
                timeout = min(timeout, self.timeout)
            self._cell_timeouts[cell.key] = timeout
            derived += 1
        if derived:
            self.counters.counter(
                "harness.campaign.adaptive_timeouts"
            ).add(derived)
            self._echo(
                f"[campaign] adaptive timeouts derived for {derived} "
                "cell(s) from the previous manifest"
            )

    def run(self) -> CampaignResult:
        """Execute the campaign; returns the merged
        :class:`CampaignResult` (never raises for cell failures — they
        are data, reported in ``failures``)."""
        self.counters.counter("harness.campaign.cells").add(len(self.cells))
        history = (
            self._manifest_entries() if self.out_dir is not None else {}
        )
        self._seed_adaptive_timeouts(history)
        manifest = history if self.resume else {}
        pending: List[CampaignCell] = []
        for cell in self.cells:
            restored = (
                self._load_checkpoint(cell, manifest) if self.resume
                else None
            )
            if restored is not None:
                self._record(restored)
            else:
                pending.append(cell)

        workers = self.workers
        if workers > 1 and not process_isolation_available():
            self._degrade(
                "no multiprocessing start method on this platform"
            )
            workers = 1
        if workers > 1 and pending:
            threads: List[threading.Thread] = []
            try:
                for i in range(min(workers, len(pending))):
                    thread = threading.Thread(
                        target=self._worker,
                        args=(pending,),
                        name=f"campaign-worker-{i}",
                        daemon=True,
                    )
                    thread.start()
                    threads.append(thread)
            except (RuntimeError, OSError) as exc:
                self._degrade(f"worker pool setup failed ({exc})")
            # Drain alongside (or instead of) the pool: the shared queue
            # makes the serial fallback the same loop on the main thread.
            if self._degraded:
                self._worker(pending)
            for thread in threads:
                thread.join()
        else:
            self._worker(pending)

        return self._collect()

    # ------------------------------------------------------------------
    # merge + report
    # ------------------------------------------------------------------

    def _collect(self) -> CampaignResult:
        """Merge outcomes deterministically (cell order) and write the
        aggregated counter dump."""
        tables: Dict[str, ExperimentTable] = {}
        group_shards: Dict[str, List[ExperimentTable]] = {}
        group_seconds: Dict[str, float] = {}
        failures: List[ExperimentFailure] = []
        completed: List[str] = []
        skipped: List[str] = []
        failed: List[str] = []
        not_run: List[str] = []
        failed_groups: List[str] = []
        dumps: List[Dict] = [self.counters.to_dict()]
        for cell in self.cells:  # cell order == merge order
            outcome = self._outcomes.get(cell.key)
            if outcome is None:
                not_run.append(cell.key)
                if cell.group not in failed_groups:
                    failed_groups.append(cell.group)
                continue
            dumps.append(self._cell_counter_dump(outcome))
            group_seconds[cell.group] = (
                group_seconds.get(cell.group, 0.0) + outcome.duration_s
            )
            if outcome.ok:
                (skipped if outcome.restored else completed).append(cell.key)
                group_shards.setdefault(cell.group, []).append(
                    outcome.table.with_row_prefix(cell.row_prefix)
                )
            else:
                failed.append(cell.key)
                failures.append(outcome.failure)
                if cell.group not in failed_groups:
                    failed_groups.append(cell.group)
        for cell in self.cells:
            shards = group_shards.get(cell.group)
            if shards and cell.group not in tables:
                tables[cell.group] = merge_tables(shards)
        counters = merge_dumps(dumps)
        manifest_path = self._write_manifest()
        counters_path = None
        if self.out_dir is not None:
            counters_path = os.path.join(self.out_dir, "counters.json")
            tmp = f"{counters_path}.tmp.{threading.get_ident()}"
            with open(tmp, "w") as fh:
                json.dump(counters, fh, indent=1, sort_keys=True)
            os.replace(tmp, counters_path)
        return CampaignResult(
            tables=tables,
            failures=failures,
            completed=completed,
            skipped=skipped,
            failed=failed,
            not_run=not_run,
            group_seconds=group_seconds,
            degraded=self._degraded,
            counters=counters,
            failed_groups=failed_groups,
            manifest_path=manifest_path,
            counters_path=counters_path,
        )
