"""Fault-tolerant parallel campaign runner.

``python -m repro.harness all`` is a *campaign*: a cross-product of
independent experiment shards (one simulation sweep per workload per
figure).  This module executes such a campaign the way a production
fleet would — sharded, checkpointed, retried, and degradable — instead
of as one long serial loop that loses everything on the first wedge:

**Sharding.**  :func:`build_all_cells` cuts every experiment along its
workload axis (see :func:`repro.harness.experiments.experiment_workloads`)
into :class:`CampaignCell`\\ s, and :class:`CampaignRunner` executes them
on ``workers`` supervisor threads.  Each cell still runs through PR 2's
crash-isolated machinery (:func:`repro.harness.isolation.run_experiment_isolated`:
child process, wall-clock timeout, structured failures), so the "pool"
is really N threads each baby-sitting one killable child at a time —
unlike a ``ProcessPoolExecutor``, a hung cell can be terminated without
tearing the whole pool down.

**Retry with backoff.**  Transient failure kinds (``Timeout``,
``SimulationHang``, ``ChildCrash`` — see ``TRANSIENT_KINDS``) are
retried up to ``max_attempts`` with exponential backoff
(``backoff_base * 2**(attempt-1)``, capped at ``backoff_cap``); hangs
are additionally reseeded (``seed + 1000*attempt``, the chaos CLI's
convention) when the cell's kwargs carry a ``seed``.  Deterministic
failure kinds (crashes, invariant violations) fail fast.  Every attempt
lands in the cell's *attempt ledger*, persisted with the checkpoint.

**Checkpoints and resume.**  With an ``out_dir``, every finished cell
writes a content-addressed checkpoint (``cells/<key>.<config-hash>.json``
holding the result table, the attempt ledger and the cell's counter
dump) via atomic rename — gzip-compressed, magic-sniffed on read so
older plain-JSON campaign directories keep restoring — plus a campaign
``manifest.json`` rewritten as cells finish.  All checkpoint IO goes
through :mod:`repro.harness.store`, which the distributed coordinator
(:mod:`repro.harness.dist`) shares, so a checkpoint uploaded by a
remote worker is byte-compatible with a locally written one.
``resume=True`` restores cells whose checkpoint matches their current
config hash and succeeded; failed, stale (hash-mismatched) or truncated
checkpoints are re-executed.  A campaign SIGKILLed mid-run therefore
resumes from its last completed cell.

**Deterministic merge.**  Shard tables merge per experiment group in
**cell order** — fixed by the spec, never by completion order — through
:func:`repro.harness.results.merge_tables`, so ``--workers N`` output is
bit-identical to the serial run for any N (and, via
:mod:`repro.harness.dist`, for any number of worker *machines*).  The
merge artifacts split along the determinism contract: ``tables.json``
and ``counters.json`` (the per-cell counter dumps merged in cell order
through :func:`repro.telemetry.merge_dumps`) depend only on the matrix
and its results and are byte-identical across run shapes, while
``ops_counters.json`` additionally folds in the run-shape counters
(``harness.campaign.*``, ``harness.dist.*``) that legitimately vary
with worker count and placement.

**Graceful degradation.**  A platform without any multiprocessing start
method, or a worker-pool setup failure, degrades to the serial
single-supervisor path with a logged warning — the campaign completes
either way (``harness.campaign.degraded`` records that it happened).

**Backends.**  ``backend="vectorized"`` routes eligible cells to the
numpy batch engine (:mod:`repro.batch`): batch-sweep cells whose spec
passes :func:`repro.batch.spec.classify_cell` get ``backend`` injected
into their kwargs at dispatch time, everything else — chaos hooks,
unsupported schemes, cells that are not batch sweeps — falls back to
the scalar engine with a logged reason.  The injection is *local* to
the attempt: ``config_hash`` covers the cell's declared kwargs only, so
checkpoints are shared across backends — justified because the two
backends are digest-equivalent by contract (docs/VECTORIZATION.md).
``harness.campaign.vectorized``/``harness.campaign.fallback`` count the
routing decisions.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.counters import CounterRegistry, merge_dumps

from . import store
from .experiments import (
    ALL_EXPERIMENTS,
    UNSHARDED_EXPERIMENTS,
    experiment_workloads,
)
from .hashing import content_hash
from .isolation import (
    ExperimentFailure,
    process_isolation_available,
    run_experiment_isolated,
)
from .results import ExperimentTable, merge_tables
from .store import CHECKPOINT_VERSION, TimeoutHistory

#: failure kinds worth retrying: they depend on scheduling/load, not on
#: the cell's inputs (a crash or invariant violation is deterministic
#: under the same inputs and retrying it only burns time)
TRANSIENT_KINDS = frozenset({"Timeout", "SimulationHang", "ChildCrash"})

#: the failure kind of an attempt abandoned because the supervisor's
#: cancel event fired (distributed workers cancel in-flight cells when
#: their lease is lost or the coordinator disappears); never retried
#: and never checkpointed as a real failure
CANCELLED_KIND = "Cancelled"

#: upper clamp of ``workers="auto"`` — each worker thread babysits one
#: crash-isolated child process, and the bundled campaigns stop scaling
#: well before the core counts of large CI machines
AUTO_WORKERS_CAP = 8

#: adaptive per-cell timeouts: a cell whose previous run took ``d``
#: seconds (same config hash, completed) gets ``max(FLOOR, d * MARGIN)``
#: this run, so one wedged shard is killed after ~4x its known-good
#: duration instead of wasting the whole campaign-level timeout; each
#: timeout retry doubles the allowance, capped at the campaign timeout
ADAPTIVE_TIMEOUT_FLOOR = 10.0
ADAPTIVE_TIMEOUT_MARGIN = 4.0


def _default_echo(message: str) -> None:
    """Default progress/warning sink: one line to stderr."""
    import sys

    print(message, file=sys.stderr)


def resolve_workers(
    workers: Union[int, str],
    echo: Callable[[str], None] = _default_echo,
) -> int:
    """Resolve a worker-count spec to a concrete count.

    An int passes through untouched; ``"auto"`` derives the count from
    ``os.cpu_count()`` clamped to ``[1, AUTO_WORKERS_CAP]`` and logs the
    decision (output is bit-identical for any worker count, so the
    resolution never affects results — only wall-clock)."""
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(
                f"workers must be an int or 'auto', not {workers!r}"
            )
        cpus = os.cpu_count() or 1
        resolved = max(1, min(AUTO_WORKERS_CAP, cpus))
        echo(
            f"[campaign] workers=auto -> {resolved} "
            f"(cpu_count={cpus}, cap={AUTO_WORKERS_CAP})"
        )
        return resolved
    return workers


@dataclass(frozen=True)
class CampaignCell:
    """One independent unit of campaign work.

    ``key`` doubles as identity and merge position: the runner merges
    shard tables in cell order, so two runs over the same spec produce
    identical output no matter which workers finish first.  ``fn`` must
    be an importable module-level callable (it crosses a process
    boundary) returning an :class:`ExperimentTable`.
    """

    key: str
    fn: Callable
    kwargs: Dict = field(default_factory=dict)
    #: experiment name the cell's table merges into (e.g. ``fig10``)
    group: str = ""
    #: prefix applied to the shard's row labels at merge time (keeps
    #: rows distinct when every shard uses the same labels)
    row_prefix: str = ""

    def config_hash(self) -> str:
        """Content hash of everything that determines this cell's result;
        a checkpoint is valid for resume only while this hash matches."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "key": self.key,
            "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "kwargs": self.kwargs,
            "group": self.group,
            "row_prefix": self.row_prefix,
        }
        return content_hash(payload)


@dataclass
class CellOutcome:
    """What one cell produced this campaign (fresh run or restored)."""

    cell: CampaignCell
    table: Optional[ExperimentTable]
    failure: Optional[ExperimentFailure]
    ledger: List[Dict]
    duration_s: float
    restored: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell has a result table."""
        return self.table is not None

    @property
    def cancelled(self) -> bool:
        """True when the cell was abandoned mid-run (lease lost,
        shutdown) — neither a result nor a real failure."""
        return (
            self.failure is not None and self.failure.kind == CANCELLED_KIND
        )


@dataclass
class ExecutionPolicy:
    """Everything that governs how one cell is executed — the piece of
    the campaign runner a distributed worker reuses verbatim, so a cell
    run on a remote machine retries, reseeds and escalates exactly like
    a local one.

    ``timeout`` is the campaign-level wall-clock cap; ``adaptive_timeout``
    the history-derived starting allowance (doubled on each timeout
    retry, never past ``timeout``).  ``cancel``, when set, abandons the
    in-flight attempt (child terminated) and returns a
    ``CANCELLED_KIND`` outcome instead of retrying.
    """

    timeout: Optional[float] = None
    adaptive_timeout: Optional[float] = None
    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    sleep: Callable[[float], None] = time.sleep
    cancel: Optional[threading.Event] = None

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt + 1`` (exponential,
        capped)."""
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))


def execute_cell(
    cell: CampaignCell,
    policy: ExecutionPolicy,
    kwargs: Optional[Dict] = None,
) -> CellOutcome:
    """Run one cell to completion under ``policy``: crash-isolated
    attempts, transient retries with backoff, hang reseeding, adaptive
    timeout escalation.  Returns the outcome with its full attempt
    ledger (never raises).  ``kwargs`` overrides the cell's declared
    kwargs (the backend dispatcher injects ``backend`` this way without
    touching the cell's config hash)."""
    ledger: List[Dict] = []
    kwargs = dict(cell.kwargs) if kwargs is None else dict(kwargs)
    started = time.time()
    failure: Optional[ExperimentFailure] = None
    table: Optional[ExperimentTable] = None
    adaptive = policy.adaptive_timeout
    timeout = adaptive if adaptive is not None else policy.timeout
    for attempt in range(1, policy.max_attempts + 1):
        if policy.cancel is not None and policy.cancel.is_set():
            failure = ExperimentFailure(
                name=cell.key, kind=CANCELLED_KIND,
                message="cancelled before attempt", attempts=attempt - 1,
                kwargs=kwargs,
            )
            break
        outcome = run_experiment_isolated(
            name=cell.key, fn=cell.fn, kwargs=kwargs,
            timeout=timeout, cancel=policy.cancel,
        )
        if not isinstance(outcome, ExperimentFailure):
            ledger.append({"attempt": attempt, "status": "ok"})
            table = outcome
            failure = None
            break
        failure = outcome
        if outcome.kind == CANCELLED_KIND:
            break  # abandoned, not failed: no ledger entry, no retry
        transient = outcome.kind in TRANSIENT_KINDS
        final = (attempt == policy.max_attempts) or not transient
        delay = 0.0 if final else policy.backoff(attempt)
        entry = {
            "attempt": attempt,
            "status": "failed",
            "kind": outcome.kind,
            "message": outcome.message,
            "backoff_s": delay,
        }
        if adaptive is not None:
            entry["timeout_s"] = round(timeout, 3)
        if (
            not final
            and outcome.kind == "Timeout"
            and adaptive is not None
        ):
            # An adaptive timeout that fired may simply have been too
            # tight (machine load, cold caches): double the allowance
            # for the retry, never past the campaign-level timeout.
            timeout = timeout * 2.0
            if policy.timeout is not None:
                timeout = min(timeout, policy.timeout)
        if not final and outcome.kind == "SimulationHang" and isinstance(
            kwargs.get("seed"), int
        ):
            kwargs = {**kwargs, "seed": kwargs["seed"] + 1000 * attempt}
            entry["reseeded"] = kwargs["seed"]
        ledger.append(entry)
        if final:
            failure.attempts = attempt
            break
        if delay:
            policy.sleep(delay)
    return CellOutcome(
        cell=cell,
        table=table,
        failure=failure,
        ledger=ledger,
        duration_s=time.time() - started,
    )


def dispatch_backend(
    cell: CampaignCell,
    kwargs: Dict,
    echo: Callable[[str], None] = _default_echo,
) -> Tuple[Dict, str]:
    """Route one cell under ``backend="vectorized"``; returns the
    (possibly augmented) kwargs and the routing leaf (``"vectorized"``
    or ``"fallback"``) for the caller's counters.

    Eligible batch-sweep cells get ``backend`` injected into their
    *local* kwargs (``config_hash`` is unchanged, so checkpoints stay
    shared across backends — the backends are digest-equivalent by
    contract); ineligible cells keep the scalar engine and the reason
    is echoed once, per docs/VECTORIZATION.md.  The decision is a pure
    function of the cell, so distributed workers route identically to
    the serial runner.
    """
    from repro.batch.spec import classify_cell

    ok, reason = classify_cell(cell.fn, kwargs)
    if ok:
        return {**kwargs, "backend": "vectorized"}, "vectorized"
    echo(
        f"[campaign] {cell.key}: vectorized backend ineligible "
        f"({reason}); using scalar engine"
    )
    return kwargs, "fallback"


def render_dry_run(
    cells: Sequence[CampaignCell],
    out_dir: Optional[str] = None,
) -> str:
    """The ``--dry-run`` report: the cell matrix in canonical (merge)
    order with per-cell duration estimates from the shared timeout
    history under ``out_dir`` — nothing is executed."""
    entries = load_timeout_history(out_dir)
    lines: List[str] = []
    known = 0
    total = 0.0
    width = max([len(c.key) for c in cells] or [4])
    for cell in cells:
        estimate = TimeoutHistory.estimate(entries, cell)
        if estimate is None:
            est = "?"
        else:
            known += 1
            total += estimate
            est = f"{estimate:.1f}s"
        lines.append(
            f"  {cell.key:<{width}}  group={cell.group:<12} "
            f"hash={cell.config_hash()}  est={est}"
        )
    header = (
        f"[dry-run] {len(cells)} cell(s), {known} with history "
        "estimates"
    )
    if known:
        header += (
            f"; known cells total ~{total:.1f}s serial"
            + (" (others unestimated)" if known < len(cells) else "")
        )
    return "\n".join([header] + lines)


def derive_adaptive_timeouts(
    cells: Sequence[CampaignCell],
    history: Dict[str, Dict],
    *,
    timeout: Optional[float],
) -> Dict[str, float]:
    """Per-cell wall-clock timeouts from previous-run durations: a cell
    that completed before (same config hash) gets ``max(floor, duration
    * margin)``, never above the campaign-level ``timeout``.  Shared by
    the local runner and the distributed coordinator (which hands the
    derived allowance to workers with each lease)."""
    derived: Dict[str, float] = {}
    for cell in cells:
        entry = history.get(cell.key)
        if (
            entry is None
            or entry.get("status") not in ("ok", "restored")
            or entry.get("config_hash") != cell.config_hash()
        ):
            continue
        duration = entry.get("duration_s")
        if not isinstance(duration, (int, float)) or duration <= 0:
            continue
        allowance = max(
            ADAPTIVE_TIMEOUT_FLOOR, duration * ADAPTIVE_TIMEOUT_MARGIN
        )
        if timeout is not None:
            allowance = min(allowance, timeout)
        derived[cell.key] = allowance
    return derived


def load_timeout_history(
    out_dir: Optional[str],
) -> Dict[str, Dict]:
    """Combined duration history under ``out_dir``: the previous
    manifest's entries overlaid with the shared ``timeout_history.json``
    (which concurrent workers merge into, so it wins when both know a
    cell).  The result feeds :func:`derive_adaptive_timeouts` and
    ``--dry-run`` estimates — never checkpoint corroboration, which must
    use the manifest alone."""
    if out_dir is None:
        return {}
    history = dict(store.load_manifest_entries(out_dir))
    for key, entry in TimeoutHistory.load(out_dir).items():
        history[key] = {
            "status": "ok",
            "config_hash": entry.get("config_hash"),
            "duration_s": entry.get("duration_s"),
        }
    return history


def restore_outcome(
    cell: CampaignCell,
    out_dir: str,
    manifest: Dict[str, Dict],
) -> Tuple[Optional[CellOutcome], bool]:
    """Restore a cell from its checkpoint under ``out_dir``; returns
    ``(outcome, torn)``.  ``outcome`` is ``None`` when the cell must
    (re)run: no checkpoint, truncated/corrupt JSON, config-hash
    mismatch, or a recorded failure (failures always re-execute).
    ``torn`` is True for the special case of a *valid* checkpoint the
    manifest never corroborated — the driver died between the checkpoint
    write and the manifest rewrite — which callers surface loudly
    (counter + log line) instead of silently trusting.  Shared by the
    local runner and the distributed coordinator so resume semantics
    cannot drift between them."""
    path = store.checkpoint_path(out_dir, cell.key, cell.config_hash())
    try:
        data = store.read_json(path)
    except (OSError, ValueError):
        return None, False
    if store.validate_checkpoint(data, cell.key, cell.config_hash()):
        return None, False
    if data.get("status") != "ok":
        return None, False  # recorded failures always re-execute
    try:
        table = ExperimentTable.from_dict(data["table"])
    except (KeyError, TypeError, ValueError):
        return None, False
    entry = manifest.get(cell.key)
    if (
        entry is None
        or entry.get("status") not in ("ok", "restored")
        or entry.get("config_hash") != cell.config_hash()
    ):
        return None, True
    return CellOutcome(
        cell=cell,
        table=table,
        failure=None,
        ledger=list(data.get("ledger", [])),
        duration_s=float(data.get("duration_s", 0.0)),
        restored=True,
    ), False


def merge_outcomes(
    cells: Sequence[CampaignCell],
    outcomes: Dict[str, CellOutcome],
) -> Dict:
    """Deterministic merge of per-cell outcomes in canonical cell order
    — the result-assembly core shared by the local runner and the
    distributed coordinator, so N workers on M machines reduce to the
    same bytes as the serial loop.

    Returns a dict with ``tables`` (group -> merged
    :class:`ExperimentTable`), ``cell_dumps`` (per-cell counter dumps in
    cell order), ``group_seconds``, ``failures``, and the
    ``completed``/``skipped``/``failed``/``not_run``/``failed_groups``
    key lists."""
    tables: Dict[str, ExperimentTable] = {}
    group_shards: Dict[str, List[ExperimentTable]] = {}
    group_seconds: Dict[str, float] = {}
    failures: List[ExperimentFailure] = []
    completed: List[str] = []
    skipped: List[str] = []
    failed: List[str] = []
    not_run: List[str] = []
    failed_groups: List[str] = []
    cell_dumps: List[Dict] = []
    for cell in cells:  # cell order == merge order
        outcome = outcomes.get(cell.key)
        if outcome is None:
            not_run.append(cell.key)
            if cell.group not in failed_groups:
                failed_groups.append(cell.group)
            continue
        cell_dumps.append(store.cell_counter_dump(outcome))
        group_seconds[cell.group] = (
            group_seconds.get(cell.group, 0.0) + outcome.duration_s
        )
        if outcome.ok:
            (skipped if outcome.restored else completed).append(cell.key)
            group_shards.setdefault(cell.group, []).append(
                outcome.table.with_row_prefix(cell.row_prefix)
            )
        else:
            failed.append(cell.key)
            failures.append(outcome.failure)
            if cell.group not in failed_groups:
                failed_groups.append(cell.group)
    for cell in cells:
        shards = group_shards.get(cell.group)
        if shards and cell.group not in tables:
            tables[cell.group] = merge_tables(shards)
    return {
        "tables": tables,
        "cell_dumps": cell_dumps,
        "group_seconds": group_seconds,
        "failures": failures,
        "completed": completed,
        "skipped": skipped,
        "failed": failed,
        "not_run": not_run,
        "failed_groups": failed_groups,
    }


@dataclass
class CampaignResult:
    """Everything a campaign run produced, merged deterministically."""

    #: group -> merged table (partial if some of the group's cells failed)
    tables: Dict[str, ExperimentTable]
    failures: List[ExperimentFailure]
    completed: List[str]  #: cell keys executed successfully this run
    skipped: List[str]  #: cell keys restored from checkpoints
    failed: List[str]  #: cell keys that exhausted their attempts
    not_run: List[str]  #: cells never started (stop-on-failure abort)
    group_seconds: Dict[str, float]
    degraded: bool
    counters: Dict
    #: groups with a failed or never-started cell, in cell order
    failed_groups: List[str] = field(default_factory=list)
    manifest_path: Optional[str] = None
    #: deterministic per-cell counter merge (byte-identical across run
    #: shapes); the in-memory ``counters`` above is the *full* merge
    counters_path: Optional[str] = None
    #: run-shape counters (``harness.campaign.*`` + per-cell dumps)
    ops_counters_path: Optional[str] = None
    tables_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when every cell completed (fresh or restored)."""
        return not self.failures and not self.not_run


def build_all_cells(
    experiments: Optional[Dict[str, Callable]] = None,
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
) -> List[CampaignCell]:
    """The campaign spec behind ``python -m repro.harness all``: one cell
    per (experiment, workload) shard, in the exact row order the serial
    runners produce, so the merged tables are bit-identical to theirs.
    Experiments without a workload axis become a single cell."""
    experiments = ALL_EXPERIMENTS if experiments is None else experiments
    cells: List[CampaignCell] = []
    for name in sorted(experiments):
        fn = experiments[name]
        axis = experiment_workloads(name, quick=quick, workloads=workloads)
        if axis is None:
            kwargs: Dict = {}
            if name not in UNSHARDED_EXPERIMENTS:
                kwargs["quick"] = quick
                if workloads:
                    kwargs["workloads"] = list(workloads)
            cells.append(
                CampaignCell(key=name, fn=fn, kwargs=kwargs, group=name)
            )
        else:
            for wl in axis:
                cells.append(
                    CampaignCell(
                        key=f"{name}/{wl}",
                        fn=fn,
                        kwargs={"workloads": [wl]},
                        group=name,
                    )
                )
    return cells


class CampaignRunner:
    """Executes a list of :class:`CampaignCell`\\ s with sharding,
    checkpoints, retry/backoff and graceful degradation (module
    docstring has the full story).

    ``sleep`` is injectable so tests can assert the backoff schedule
    without waiting it out; ``echo`` receives progress/warning lines
    (default: stderr).
    """

    def __init__(
        self,
        cells: Sequence[CampaignCell],
        *,
        workers: Union[int, str] = 1,
        out_dir: Optional[str] = None,
        resume: bool = False,
        timeout: Optional[float] = None,
        adaptive_timeout: bool = True,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        keep_going: bool = True,
        backend: str = "scalar",
        sleep: Callable[[float], None] = time.sleep,
        echo: Callable[[str], None] = _default_echo,
    ) -> None:
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate cell keys: {dupes}")
        if resume and out_dir is None:
            raise ValueError("resume requires an out_dir to resume from")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        workers = resolve_workers(workers, echo)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in ("scalar", "vectorized"):
            raise ValueError(
                f"unknown backend {backend!r} (scalar or vectorized)"
            )
        self.backend = backend
        self.cells = list(cells)
        self.workers = workers
        self.out_dir = out_dir
        self.resume = resume
        self.timeout = timeout
        self.adaptive_timeout = adaptive_timeout
        #: cell key -> history-derived wall-clock timeout (seconds),
        #: seeded from the previous manifest in :meth:`run`
        self._cell_timeouts: Dict[str, float] = {}
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.keep_going = keep_going
        self._sleep = sleep
        self._echo = echo
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._outcomes: Dict[str, CellOutcome] = {}
        self._history = TimeoutHistory()
        self._degraded = False
        self.counters = CounterRegistry()
        self.counters.metadata.update(
            campaign="harness", workers=workers, resume=resume,
            backend=backend,
        )
        for leaf in (
            "cells", "completed", "skipped", "failed", "attempts",
            "retries", "backoff_seconds", "degraded", "vectorized",
            "fallback", "torn", "adaptive_timeouts",
        ):
            self.counters.counter(f"harness.campaign.{leaf}")

    # ------------------------------------------------------------------
    # checkpoint plumbing
    # ------------------------------------------------------------------

    def _checkpoint_path(self, cell: CampaignCell) -> str:
        return store.checkpoint_path(
            self.out_dir, cell.key, cell.config_hash()
        )

    def _load_checkpoint(
        self, cell: CampaignCell, manifest: Dict[str, Dict]
    ) -> Optional[CellOutcome]:
        """Restore a cell via the shared :func:`restore_outcome`; a torn
        write (valid checkpoint the manifest never corroborated) is
        surfaced as stale-and-rerun instead of silently trusted."""
        outcome, torn = restore_outcome(cell, self.out_dir, manifest)
        if torn:
            self.counters.counter("harness.campaign.torn").add(1)
            self._echo(
                f"[campaign] {cell.key}: checkpoint not corroborated by "
                "the manifest (torn write: driver died between checkpoint "
                "and manifest rewrite); treating as stale and re-running"
            )
        return outcome

    def _write_checkpoint(self, outcome: CellOutcome) -> None:
        """Persist one finished cell atomically (tmp file + rename,
        gzip-compressed), so a SIGKILL mid-write can never leave a
        half-checkpoint that a later ``--resume`` would trust."""
        if self.out_dir is None:
            return
        store.write_json(
            self._checkpoint_path(outcome.cell),
            store.build_checkpoint(outcome),
            compress=True,
        )

    def _write_manifest(self) -> Optional[str]:
        """(Re)write ``manifest.json`` reflecting every cell's current
        status — called as cells finish, so a killed campaign leaves an
        honest partial manifest behind."""
        if self.out_dir is None:
            return None
        payload = store.manifest_payload(
            self.cells, self._outcomes, out_dir=self.out_dir,
            workers=self.workers, degraded=self._degraded,
            resume=self.resume,
        )
        path = store.manifest_path(self.out_dir)
        store.write_json(path, payload)
        return path

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _run_cell(self, cell: CampaignCell) -> CellOutcome:
        """Run one cell via the shared :func:`execute_cell` loop (backend
        routing counted here; the loop itself is policy-driven so
        distributed workers reuse it verbatim)."""
        kwargs = dict(cell.kwargs)
        if self.backend == "vectorized":
            kwargs, leaf = dispatch_backend(cell, kwargs, self._echo)
            with self._lock:
                self.counters.counter(f"harness.campaign.{leaf}").add(1)
        policy = ExecutionPolicy(
            timeout=self.timeout,
            adaptive_timeout=self._cell_timeouts.get(cell.key),
            max_attempts=self.max_attempts,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            sleep=self._sleep,
        )
        return execute_cell(cell, policy, kwargs)

    def _record(self, outcome: CellOutcome) -> None:
        """Book one finished cell: shared state, counters, checkpoint,
        manifest, progress line (thread-safe)."""
        with self._lock:
            self._outcomes[outcome.cell.key] = outcome
            ctr = self.counters.counter
            ctr("harness.campaign.attempts").add(len(outcome.ledger))
            ctr("harness.campaign.retries").add(
                max(0, len(outcome.ledger) - 1)
            )
            ctr("harness.campaign.backoff_seconds").add(
                sum(e.get("backoff_s", 0.0) for e in outcome.ledger)
            )
            if outcome.restored:
                ctr("harness.campaign.skipped").add(1)
            elif outcome.ok:
                ctr("harness.campaign.completed").add(1)
            else:
                ctr("harness.campaign.failed").add(1)
            if not outcome.restored:
                self._write_checkpoint(outcome)
                if outcome.ok:
                    self._history.record(outcome.cell, outcome.duration_s)
            self._write_manifest()
            if outcome.restored:
                self._echo(f"[campaign] {outcome.cell.key}: restored "
                           "from checkpoint")
            elif outcome.ok:
                self._echo(
                    f"[campaign] {outcome.cell.key}: ok "
                    f"({outcome.duration_s:.1f}s, "
                    f"{len(outcome.ledger)} attempt(s))"
                )
            else:
                self._echo(
                    f"[campaign] {outcome.cell.key}: FAILED "
                    f"({outcome.failure.kind}) after "
                    f"{len(outcome.ledger)} attempt(s)"
                )
        if not outcome.ok and not self.keep_going:
            self._stop.set()

    def _worker(self, queue: List[CampaignCell]) -> None:
        """Supervisor loop: pop the next pending cell, run it, record it;
        exits when the queue drains or stop-on-failure triggers."""
        while True:
            if self._stop.is_set():
                return
            with self._lock:
                if not queue:
                    return
                cell = queue.pop(0)
            self._record(self._run_cell(cell))

    def _degrade(self, reason: str) -> None:
        """Fall back to serial execution, loudly."""
        if not self._degraded:
            self._degraded = True
            self.counters.counter("harness.campaign.degraded").add(1)
            self._echo(f"[campaign] warning: {reason}; "
                       "falling back to serial execution")

    def _seed_adaptive_timeouts(self, manifest: Dict[str, Dict]) -> None:
        """Derive per-cell wall-clock timeouts from the previous
        manifest's durations: a cell that completed before (same config
        hash) gets ``max(ADAPTIVE_TIMEOUT_FLOOR, duration *
        ADAPTIVE_TIMEOUT_MARGIN)``, never above the campaign-level
        timeout.  Cells without usable history keep the global timeout."""
        if not self.adaptive_timeout:
            return
        self._cell_timeouts = derive_adaptive_timeouts(
            self.cells, manifest, timeout=self.timeout
        )
        derived = len(self._cell_timeouts)
        if derived:
            self.counters.counter(
                "harness.campaign.adaptive_timeouts"
            ).add(derived)
            self._echo(
                f"[campaign] adaptive timeouts derived for {derived} "
                "cell(s) from the previous manifest"
            )

    def run(self) -> CampaignResult:
        """Execute the campaign; returns the merged
        :class:`CampaignResult` (never raises for cell failures — they
        are data, reported in ``failures``)."""
        self.counters.counter("harness.campaign.cells").add(len(self.cells))
        self._seed_adaptive_timeouts(load_timeout_history(self.out_dir))
        # Checkpoint corroboration on resume uses the manifest alone —
        # a synthesized timeout-history entry must never vouch for a
        # torn checkpoint.
        manifest = (
            store.load_manifest_entries(self.out_dir)
            if self.resume else {}
        )
        pending: List[CampaignCell] = []
        for cell in self.cells:
            restored = (
                self._load_checkpoint(cell, manifest) if self.resume
                else None
            )
            if restored is not None:
                self._record(restored)
            else:
                pending.append(cell)

        workers = self.workers
        if workers > 1 and not process_isolation_available():
            self._degrade(
                "no multiprocessing start method on this platform"
            )
            workers = 1
        if workers > 1 and pending:
            threads: List[threading.Thread] = []
            try:
                for i in range(min(workers, len(pending))):
                    thread = threading.Thread(
                        target=self._worker,
                        args=(pending,),
                        name=f"campaign-worker-{i}",
                        daemon=True,
                    )
                    thread.start()
                    threads.append(thread)
            except (RuntimeError, OSError) as exc:
                self._degrade(f"worker pool setup failed ({exc})")
            # Drain alongside (or instead of) the pool: the shared queue
            # makes the serial fallback the same loop on the main thread.
            if self._degraded:
                self._worker(pending)
            for thread in threads:
                thread.join()
        else:
            self._worker(pending)

        return self._collect()

    # ------------------------------------------------------------------
    # merge + report
    # ------------------------------------------------------------------

    def _collect(self) -> CampaignResult:
        """Merge outcomes deterministically via the shared
        :func:`merge_outcomes` and write the merge artifacts
        (``tables.json``/``counters.json`` deterministic,
        ``ops_counters.json`` run-shape — module docstring)."""
        merged = merge_outcomes(self.cells, self._outcomes)
        cell_dumps = merged["cell_dumps"]
        counters = merge_dumps([self.counters.to_dict()] + cell_dumps)
        manifest_path = self._write_manifest()
        counters_path = ops_counters_path = tables_path = None
        if self.out_dir is not None:
            self._history.flush(self.out_dir)
            paths = store.write_merge_artifacts(
                self.out_dir, merged["tables"], cell_dumps,
                [self.counters.to_dict()],
            )
            tables_path = paths["tables"]
            counters_path = paths["counters"]
            ops_counters_path = paths["ops_counters"]
        return CampaignResult(
            tables=merged["tables"],
            failures=merged["failures"],
            completed=merged["completed"],
            skipped=merged["skipped"],
            failed=merged["failed"],
            not_run=merged["not_run"],
            group_seconds=merged["group_seconds"],
            degraded=self._degraded,
            counters=counters,
            failed_groups=merged["failed_groups"],
            manifest_path=manifest_path,
            counters_path=counters_path,
            ops_counters_path=ops_counters_path,
            tables_path=tables_path,
        )
