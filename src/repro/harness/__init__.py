"""Experiment harness: one runner per paper table/figure + result tables,
plus crash isolation and seeded chaos campaigns (docs/ROBUSTNESS.md)."""

from .chaos_campaign import (
    DEFAULT_CAMPAIGN_SCHEMES,
    architectural_digest,
    run_chaos_campaign,
)
from .experiments import (
    ALL_EXPERIMENTS,
    DEFAULT_TIME_SCALE,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_scalability,
    run_table1,
    run_table2,
)
from .isolation import ExperimentFailure, run_experiment_isolated
from .results import ExperimentTable, geomean
from .tracing import TracedRun, run_traced

__all__ = [
    "TracedRun",
    "run_traced",
    "ALL_EXPERIMENTS",
    "DEFAULT_CAMPAIGN_SCHEMES",
    "DEFAULT_TIME_SCALE",
    "ExperimentFailure",
    "architectural_digest",
    "run_chaos_campaign",
    "run_experiment_isolated",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_scalability",
    "run_table1",
    "run_table2",
    "ExperimentTable",
    "geomean",
]
