"""Experiment harness: one runner per paper table/figure + result tables,
plus crash isolation, seeded chaos campaigns and a fault-tolerant
parallel campaign runner with resumable checkpoints
(docs/ROBUSTNESS.md)."""

from .chaos_campaign import (
    DEFAULT_CAMPAIGN_SCHEMES,
    architectural_digest,
    build_chaos_cells,
    run_chaos_campaign,
    run_stream_chaos_campaign,
)
from .experiments import (
    ALL_EXPERIMENTS,
    DEFAULT_TIME_SCALE,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_scalability,
    run_table1,
    run_table2,
)
from .isolation import (
    ExperimentFailure,
    process_isolation_available,
    run_experiment_isolated,
)
from .results import ExperimentTable, geomean, merge_tables
from .streams import overlap_digest, run_streams, run_streams_scenario
from .runner import (
    CampaignCell,
    CampaignResult,
    CampaignRunner,
    CellOutcome,
    TRANSIENT_KINDS,
    build_all_cells,
)
from .tracing import TracedRun, run_traced

__all__ = [
    "TracedRun",
    "run_traced",
    "ALL_EXPERIMENTS",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "CellOutcome",
    "DEFAULT_CAMPAIGN_SCHEMES",
    "DEFAULT_TIME_SCALE",
    "ExperimentFailure",
    "TRANSIENT_KINDS",
    "architectural_digest",
    "build_all_cells",
    "build_chaos_cells",
    "merge_tables",
    "process_isolation_available",
    "run_chaos_campaign",
    "run_stream_chaos_campaign",
    "run_experiment_isolated",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_scalability",
    "run_streams",
    "run_streams_scenario",
    "overlap_digest",
    "run_table1",
    "run_table2",
    "ExperimentTable",
    "geomean",
]
