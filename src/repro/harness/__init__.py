"""Experiment harness: one runner per paper table/figure + result tables."""

from .experiments import (
    ALL_EXPERIMENTS,
    DEFAULT_TIME_SCALE,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_scalability,
    run_table1,
    run_table2,
)
from .results import ExperimentTable, geomean
from .tracing import TracedRun, run_traced

__all__ = [
    "TracedRun",
    "run_traced",
    "ALL_EXPERIMENTS",
    "DEFAULT_TIME_SCALE",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_scalability",
    "run_table1",
    "run_table2",
    "ExperimentTable",
    "geomean",
]
