"""Crash isolation for harness experiments.

``python -m repro.harness all`` runs many independent simulations; one
wedged or crashing experiment must not take the whole campaign down.
:func:`run_experiment_isolated` executes one experiment function in a
forked child process with

- a **wall-clock timeout**: a child that outlives it is terminated and
  reported as a timeout instead of hanging the harness forever;
- **structured failure capture**: any exception in the child (including
  :class:`repro.chaos.SimulationHang` and
  :class:`repro.chaos.InvariantViolation`) comes back as a picklable
  :class:`ExperimentFailure` carrying the exception type, message and
  traceback text;
- **bounded retry with a fresh seed**: when the child failed with a
  watchdog trip (``SimulationHang``) and the caller supplied a
  ``reseed`` hook, the experiment is retried up to ``retries`` times
  with reseeded keyword arguments — the chaos campaign's escape hatch
  from a seed that genuinely wedges the simulation.

Results cross the process boundary over a ``multiprocessing`` pipe, so
experiment functions must return picklable values
(:class:`~repro.harness.results.ExperimentTable` is).  On platforms
without the ``fork`` start method the child uses ``spawn`` instead —
slower to start, but timeouts stay enforceable by killing the child
(the experiment function must then be an importable module-level
callable, which every harness experiment is).  Only when *neither*
start method exists does the experiment run in-process, where failures
are still captured but a timeout cannot be enforced.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

#: pipe-poll slice when a supervisor supplied a cancel event: the child
#: stays killable within this latency even mid-timeout
POLL_SLICE_S = 0.05


@dataclass
class ExperimentFailure:
    """A structured record of one failed experiment attempt."""

    name: str
    kind: str  #: exception type name, or "Timeout"
    message: str
    traceback_text: str = ""
    attempts: int = 1
    #: kwargs of the failing attempt (after any reseeding)
    kwargs: Dict = field(default_factory=dict)

    def render(self) -> str:
        """One-paragraph human-readable report."""
        out = [
            f"experiment {self.name!r} FAILED after "
            f"{self.attempts} attempt(s): {self.kind}: {self.message}"
        ]
        if self.traceback_text:
            out.append(self.traceback_text.rstrip())
        return "\n".join(out)


def _child_main(conn, fn, args, kwargs):
    """Child-process entry: run ``fn`` and ship the outcome up the pipe."""
    try:
        result = fn(*args, **kwargs)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        conn.send(
            ("error", type(exc).__name__, str(exc), traceback.format_exc())
        )
    finally:
        conn.close()


def _exec_context():
    """The best multiprocessing context for crash isolation: ``fork``
    where available (cheap, inherits loaded state), else ``spawn`` — so a
    wall-clock timeout is still enforceable by terminating the child.
    ``None`` only when the platform offers neither start method."""
    for method in ("fork", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return None  # pragma: no cover - no start method at all


def process_isolation_available() -> bool:
    """True when experiments can run in a killable child process (some
    multiprocessing start method exists).  The campaign runner degrades
    to serial in-process execution when this is False."""
    return _exec_context() is not None


def _run_once(
    fn: Callable,
    args: Tuple,
    kwargs: Dict,
    timeout: Optional[float],
    cancel: Optional[threading.Event] = None,
) -> Tuple[str, object, str, str]:
    """One attempt; returns ``(status, result, message, tb)`` where status
    is ``"ok"``, ``"error"``, ``"timeout"`` or ``"cancelled"`` (result
    holds the error's type name for ``"error"``)."""
    ctx = _exec_context()
    if ctx is None:  # pragma: no cover - no start method: in-process
        try:
            return ("ok", fn(*args, **kwargs), "", "")
        except BaseException as exc:  # noqa: BLE001
            return ("error", type(exc).__name__, str(exc),
                    traceback.format_exc())
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_main, args=(child_conn, fn, args, kwargs), daemon=True
    )
    proc.start()
    child_conn.close()
    if cancel is None:
        ready = parent_conn.poll(timeout)
    else:
        # Slice the wait so a fired cancel event (lease lost, worker
        # shutdown) terminates the child within ~POLL_SLICE_S instead of
        # riding out the full timeout.
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        ready = False
        while True:
            if cancel.is_set():
                proc.terminate()
                proc.join()
                parent_conn.close()
                return (
                    "cancelled", "Cancelled",
                    "cancelled by supervisor (lease lost or shutdown)", "",
                )
            remaining = (
                POLL_SLICE_S if deadline is None
                else min(POLL_SLICE_S, deadline - time.monotonic())
            )
            if remaining > 0 and parent_conn.poll(remaining):
                ready = True
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
    if not ready:
        proc.terminate()
        proc.join()
        parent_conn.close()
        return (
            "timeout", "Timeout",
            f"exceeded {timeout:g}s wall-clock timeout", "",
        )
    try:
        payload = parent_conn.recv()
    except EOFError:
        proc.join()
        parent_conn.close()
        code = proc.exitcode
        return (
            "error", "ChildCrash",
            f"experiment process died with exit code {code}", "",
        )
    proc.join()
    parent_conn.close()
    if payload[0] == "ok":
        return ("ok", payload[1], "", "")
    _, kind, message, tb = payload
    return ("error", kind, message, tb)


def run_experiment_isolated(
    name: str,
    fn: Callable,
    args: Tuple = (),
    kwargs: Optional[Dict] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    reseed: Optional[Callable[[int, Dict], Dict]] = None,
    cancel: Optional[threading.Event] = None,
):
    """Run ``fn(*args, **kwargs)`` crash-isolated; returns the result or
    an :class:`ExperimentFailure`.

    ``retries`` bounds *additional* attempts after a ``SimulationHang``
    failure; each retry's kwargs come from ``reseed(attempt, kwargs)``
    (typically bumping a ``seed`` argument).  Other failure kinds —
    crashes, invariant violations, timeouts — are never retried: they are
    deterministic under the same inputs or indicate a harness-level
    problem a fresh seed cannot fix.

    ``cancel``, when supplied, is polled while the child runs: a fired
    event terminates the child and returns a ``Cancelled`` failure
    immediately (distributed workers cancel in-flight cells whose lease
    was lost).  ``Cancelled`` is never retried.
    """
    kwargs = dict(kwargs or {})
    attempts = 0
    while True:
        attempts += 1
        status, result, message, tb = _run_once(
            fn, args, kwargs, timeout, cancel
        )
        if status == "ok":
            return result
        retryable = (
            status == "error"
            and result == "SimulationHang"
            and reseed is not None
            and attempts <= retries
        )
        if not retryable:
            if status == "error":
                kind = result
            elif status == "cancelled":
                kind = "Cancelled"
            else:
                kind = "Timeout"
            return ExperimentFailure(
                name=name,
                kind=kind,
                message=message,
                traceback_text=tb,
                attempts=attempts,
                kwargs=kwargs,
            )
        kwargs = reseed(attempts, kwargs)
