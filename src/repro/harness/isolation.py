"""Crash isolation for harness experiments.

``python -m repro.harness all`` runs many independent simulations; one
wedged or crashing experiment must not take the whole campaign down.
:func:`run_experiment_isolated` executes one experiment function in a
forked child process with

- a **wall-clock timeout**: a child that outlives it is terminated and
  reported as a timeout instead of hanging the harness forever;
- **structured failure capture**: any exception in the child (including
  :class:`repro.chaos.SimulationHang` and
  :class:`repro.chaos.InvariantViolation`) comes back as a picklable
  :class:`ExperimentFailure` carrying the exception type, message and
  traceback text;
- **bounded retry with a fresh seed**: when the child failed with a
  watchdog trip (``SimulationHang``) and the caller supplied a
  ``reseed`` hook, the experiment is retried up to ``retries`` times
  with reseeded keyword arguments — the chaos campaign's escape hatch
  from a seed that genuinely wedges the simulation.

Results cross the process boundary over a ``multiprocessing`` pipe, so
experiment functions must return picklable values
(:class:`~repro.harness.results.ExperimentTable` is).  On platforms
without the ``fork`` start method the child uses ``spawn`` instead —
slower to start, but timeouts stay enforceable by killing the child
(the experiment function must then be an importable module-level
callable, which every harness experiment is).  Only when *neither*
start method exists does the experiment run in-process, where failures
are still captured but a timeout cannot be enforced.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple


@dataclass
class ExperimentFailure:
    """A structured record of one failed experiment attempt."""

    name: str
    kind: str  #: exception type name, or "Timeout"
    message: str
    traceback_text: str = ""
    attempts: int = 1
    #: kwargs of the failing attempt (after any reseeding)
    kwargs: Dict = field(default_factory=dict)

    def render(self) -> str:
        """One-paragraph human-readable report."""
        out = [
            f"experiment {self.name!r} FAILED after "
            f"{self.attempts} attempt(s): {self.kind}: {self.message}"
        ]
        if self.traceback_text:
            out.append(self.traceback_text.rstrip())
        return "\n".join(out)


def _child_main(conn, fn, args, kwargs):
    """Child-process entry: run ``fn`` and ship the outcome up the pipe."""
    try:
        result = fn(*args, **kwargs)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        conn.send(
            ("error", type(exc).__name__, str(exc), traceback.format_exc())
        )
    finally:
        conn.close()


def _exec_context():
    """The best multiprocessing context for crash isolation: ``fork``
    where available (cheap, inherits loaded state), else ``spawn`` — so a
    wall-clock timeout is still enforceable by terminating the child.
    ``None`` only when the platform offers neither start method."""
    for method in ("fork", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return None  # pragma: no cover - no start method at all


def process_isolation_available() -> bool:
    """True when experiments can run in a killable child process (some
    multiprocessing start method exists).  The campaign runner degrades
    to serial in-process execution when this is False."""
    return _exec_context() is not None


def _run_once(
    fn: Callable,
    args: Tuple,
    kwargs: Dict,
    timeout: Optional[float],
) -> Tuple[str, object, str, str]:
    """One attempt; returns ``(status, result, message, tb)`` where status
    is ``"ok"``, ``"error"`` or ``"timeout"`` (result holds the error's
    type name for ``"error"``)."""
    ctx = _exec_context()
    if ctx is None:  # pragma: no cover - no start method: in-process
        try:
            return ("ok", fn(*args, **kwargs), "", "")
        except BaseException as exc:  # noqa: BLE001
            return ("error", type(exc).__name__, str(exc),
                    traceback.format_exc())
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_main, args=(child_conn, fn, args, kwargs), daemon=True
    )
    proc.start()
    child_conn.close()
    if not parent_conn.poll(timeout):
        proc.terminate()
        proc.join()
        parent_conn.close()
        return (
            "timeout", "Timeout",
            f"exceeded {timeout:g}s wall-clock timeout", "",
        )
    try:
        payload = parent_conn.recv()
    except EOFError:
        proc.join()
        parent_conn.close()
        code = proc.exitcode
        return (
            "error", "ChildCrash",
            f"experiment process died with exit code {code}", "",
        )
    proc.join()
    parent_conn.close()
    if payload[0] == "ok":
        return ("ok", payload[1], "", "")
    _, kind, message, tb = payload
    return ("error", kind, message, tb)


def run_experiment_isolated(
    name: str,
    fn: Callable,
    args: Tuple = (),
    kwargs: Optional[Dict] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    reseed: Optional[Callable[[int, Dict], Dict]] = None,
):
    """Run ``fn(*args, **kwargs)`` crash-isolated; returns the result or
    an :class:`ExperimentFailure`.

    ``retries`` bounds *additional* attempts after a ``SimulationHang``
    failure; each retry's kwargs come from ``reseed(attempt, kwargs)``
    (typically bumping a ``seed`` argument).  Other failure kinds —
    crashes, invariant violations, timeouts — are never retried: they are
    deterministic under the same inputs or indicate a harness-level
    problem a fresh seed cannot fix.
    """
    kwargs = dict(kwargs or {})
    attempts = 0
    while True:
        attempts += 1
        status, result, message, tb = _run_once(fn, args, kwargs, timeout)
        if status == "ok":
            return result
        retryable = (
            status == "error"
            and result == "SimulationHang"
            and reseed is not None
            and attempts <= retries
        )
        if not retryable:
            return ExperimentFailure(
                name=name,
                kind=result if status == "error" else "Timeout",
                message=message,
                traceback_text=tb,
                attempts=attempts,
                kwargs=kwargs,
            )
        kwargs = reseed(attempts, kwargs)
