"""Parameter-sweep utilities: vary one configuration knob across runs.

Used by the ablation benchmarks and handy for exploring the design space,
e.g. how the wd-commit penalty depends on the L1 MSHR count, or how block
switching responds to the threshold::

    from repro.harness.sweeps import sweep_config
    table = sweep_config(
        "lbm", scheme="wd-commit", field="l1_mshrs", values=[16, 32, 64]
    )
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import make_scheme
from repro.system import GPUConfig, GpuSimulator, INTERCONNECTS
from repro.workloads import get_workload

from .results import ExperimentTable


def sweep_config(
    workload: str,
    scheme: str,
    field: str,
    values: Sequence,
    paging: str = "premapped",
    interconnect: str = "nvlink",
    time_scale: float = 1.0,
    normalize: bool = True,
) -> ExperimentTable:
    """Simulate ``workload`` under ``scheme`` for each value of the
    :class:`~repro.system.config.GPUConfig` field ``field``.

    Returns a one-row table (columns = values).  With ``normalize`` the
    cycles are reported relative to the first value.
    """
    if not hasattr(GPUConfig(), field):
        raise ValueError(f"GPUConfig has no field {field!r}")
    wl = get_workload(workload)
    ic = INTERCONNECTS[interconnect].scaled(time_scale)
    cycles = []
    for value in values:
        config = GPUConfig().with_(**{field: value}).time_scaled(time_scale)
        sim = GpuSimulator(
            kernel=wl.kernel,
            trace=wl.trace(),
            address_space=wl.make_address_space(),
            config=config,
            scheme=make_scheme(scheme),
            paging=paging,
            interconnect=ic,
        )
        cycles.append(sim.run().cycles)
    table = ExperimentTable(
        name=f"sweep-{field}",
        description=f"{workload} / {scheme}: cycles vs {field}",
        columns=[str(v) for v in values],
    )
    if normalize and cycles and cycles[0]:
        table.add_row(workload, [cycles[0] / c for c in cycles])
        table.notes.append("values are speedups relative to the first point")
    else:
        table.add_row(workload, cycles)
    return table


def sweep_schemes(
    workload: str,
    schemes: Sequence[str] = (
        "baseline", "wd-commit", "wd-lastcheck", "replay-queue",
    ),
    paging: str = "premapped",
    config: Optional[GPUConfig] = None,
) -> ExperimentTable:
    """One row comparing every scheme on one workload (normalized to the
    first scheme)."""
    wl = get_workload(workload)
    cfg = config if config is not None else GPUConfig()
    cycles = []
    for name in schemes:
        sim = GpuSimulator(
            kernel=wl.kernel,
            trace=wl.trace(),
            address_space=wl.make_address_space(),
            config=cfg,
            scheme=make_scheme(name),
            paging=paging,
        )
        cycles.append(sim.run().cycles)
    table = ExperimentTable(
        name="sweep-schemes",
        description=f"{workload}: scheme comparison",
        columns=list(schemes),
    )
    table.add_row(workload, [cycles[0] / c for c in cycles])
    return table
